#include "check/program_gen.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "hp4/persona.h"
#include "util/bitvec.h"
#include "util/error.h"
#include "util/rng.h"

namespace hyper4::check {

namespace {

using p4::ActionArg;
using p4::ActionDef;
using p4::ActionParam;
using p4::ControlNode;
using p4::Expr;
using p4::FieldRef;
using p4::HeaderInstance;
using p4::HeaderType;
using p4::MatchType;
using p4::ParserCase;
using p4::ParserState;
using p4::Primitive;
using p4::PrimitiveCall;
using p4::Program;
using p4::TableDef;
using p4::TableKey;
using util::BitVec;
using util::Rng;

// --- generation model -------------------------------------------------------

struct GField {
  std::string name;
  std::size_t width = 0;
  // Shared value pool: rule keys and packet fills draw from the same pool
  // so generated rules actually hit.
  std::vector<BitVec> pool;
};

struct GHeader {
  std::string type_name;
  std::string inst;
  std::size_t bytes = 0;
  std::size_t offset = 0;  // byte offset on its parse path
  bool always = false;     // extracted on every accepting path
  int sel = -1;            // selector field index (-1: none)
  std::vector<GField> fields;
};

// One enumerated path through the generated parse graph.
struct GPath {
  std::vector<std::size_t> headers;  // indices into the header list
  // (header index, field index) → value forced on this path (selectors).
  std::vector<std::tuple<std::size_t, std::size_t, BitVec>> forced;
  bool drops = false;
  std::size_t total_bytes = 0;
};

enum class Mode { kSingle, kBranch, kChain };

struct MetaField {
  std::string name;
  std::size_t width = 0;
};

class Gen {
 public:
  Gen(const GenLimits& limits, std::uint64_t seed)
      : limits_(limits), rng_(seed * 0x9E3779B97F4A7C15ull + 0x48795034ull) {
    out_.seed = seed;
    out_.ports = limits.ports;
  }

  GenCase run() {
    build_headers();
    build_meta();
    decide_stateful();
    build_parser();
    build_tables_and_control();
    maybe_attach_stateful_prims();
    finish_program();
    build_rules();
    build_packets();
    return std::move(out_);
  }

 private:
  // --- small helpers --------------------------------------------------------

  std::size_t pick(std::initializer_list<std::size_t> xs) {
    std::vector<std::size_t> v(xs);
    return v[rng_.uniform(0, v.size() - 1)];
  }

  static std::string hex(const BitVec& v) { return "0x" + v.to_hex(); }

  BitVec pool_or_random(const GField& f) {
    if (!f.pool.empty() && rng_.coin(0.78))
      return f.pool[rng_.uniform(0, f.pool.size() - 1)];
    return rng_.bits(f.width);
  }

  // Partition `total_bits` into field widths; when `sel_width` is nonzero
  // the last field is the selector with exactly that width.
  std::vector<std::size_t> partition(std::size_t total_bits,
                                     std::size_t sel_width) {
    std::vector<std::size_t> widths;
    std::size_t remaining = total_bits - sel_width;
    const std::size_t menu[] = {4, 8, 12, 16, 24, 32, 48};
    while (remaining > 0) {
      std::vector<std::size_t> fits;
      for (std::size_t w : menu)
        if (w <= remaining) fits.push_back(w);
      const std::size_t w =
          fits.empty() ? remaining : fits[rng_.uniform(0, fits.size() - 1)];
      widths.push_back(w);
      remaining -= w;
    }
    if (sel_width > 0) widths.push_back(sel_width);
    return widths;
  }

  GHeader make_header(const std::string& base, std::size_t bytes,
                      std::size_t offset, bool always, bool with_selector) {
    GHeader h;
    h.type_name = base + "_t";
    h.inst = base;
    h.bytes = bytes;
    h.offset = offset;
    h.always = always;
    const std::size_t sel_w = with_selector ? pick({8, 16}) : 0;
    const auto widths = partition(8 * bytes, sel_w);
    for (std::size_t i = 0; i < widths.size(); ++i) {
      GField f;
      f.name = "f" + std::to_string(i);
      f.width = widths[i];
      const std::size_t n_pool = rng_.uniform(2, 4);
      for (std::size_t k = 0; k < n_pool; ++k) f.pool.push_back(rng_.bits(f.width));
      h.fields.push_back(std::move(f));
    }
    if (with_selector) {
      h.sel = static_cast<int>(h.fields.size() - 1);
      h.fields[h.sel].name = "sel";
    }
    return h;
  }

  // A fresh selector case value distinct from `taken`.
  BitVec fresh_value(std::size_t width, std::vector<BitVec>& taken) {
    for (int tries = 0; tries < 64; ++tries) {
      BitVec v = rng_.bits(width);
      if (std::find(taken.begin(), taken.end(), v) == taken.end()) {
        taken.push_back(v);
        return v;
      }
    }
    // Width >= 8 and |taken| tiny: unreachable in practice.
    taken.push_back(BitVec(width));
    return BitVec(width);
  }

  // --- headers & parser -----------------------------------------------------

  void build_headers() {
    mode_ = static_cast<Mode>(rng_.uniform(0, 2));
    headers_.push_back(
        make_header("h0", pick({6, 8, 10, 12}), 0, true, mode_ != Mode::kSingle));
    switch (mode_) {
      case Mode::kSingle:
        if (rng_.coin(0.55))
          headers_.push_back(make_header("h1", pick({4, 6, 8, 10}),
                                         headers_[0].bytes, true, false));
        break;
      case Mode::kBranch: {
        const std::size_t nb = rng_.uniform(2, 3);
        for (std::size_t i = 0; i < nb; ++i)
          headers_.push_back(make_header("h" + std::to_string(i + 1),
                                         pick({4, 6, 8, 10}), headers_[0].bytes,
                                         false, false));
        branch_default_drops_ = rng_.coin(0.35);
        break;
      }
      case Mode::kChain:
        headers_.push_back(make_header("h1", pick({6, 8, 10}),
                                       headers_[0].bytes, false, true));
        headers_.push_back(make_header("h2", pick({4, 6, 8}),
                                       headers_[0].bytes + headers_[1].bytes,
                                       false, false));
        break;
    }
  }

  void build_meta() {
    if (!rng_.coin(0.4)) return;
    const std::size_t n = rng_.uniform(1, 2);
    for (std::size_t i = 0; i < n; ++i) {
      MetaField f;
      f.name = "m" + std::to_string(i);
      f.width = pick({8, 16, 32});
      meta_.push_back(f);
    }
  }

  void decide_stateful() {
    if (limits_.allow_stateful && rng_.coin(limits_.p_stateful)) {
      out_.stateful = true;
      use_counter_ = rng_.coin(0.7);
      use_register_ = !use_counter_ || rng_.coin(0.5);
    }
  }

  // Selector pools get the case values so rules key on realistic values.
  void note_selector_values(GHeader& h, const std::vector<BitVec>& vals) {
    for (const BitVec& v : vals) h.fields[h.sel].pool.push_back(v);
  }

  void build_parser() {
    auto& ps = prog_.parser_states;
    switch (mode_) {
      case Mode::kSingle: {
        ParserState start;
        start.name = "start";
        for (const auto& h : headers_) start.extracts.push_back(h.inst);
        start.cases.push_back(
            ParserCase{BitVec(), std::nullopt, true, p4::kParserAccept});
        ps.push_back(std::move(start));
        GPath p;
        for (std::size_t i = 0; i < headers_.size(); ++i) p.headers.push_back(i);
        paths_.push_back(std::move(p));
        break;
      }
      case Mode::kBranch: {
        GHeader& h0 = headers_[0];
        const std::size_t sw = h0.fields[h0.sel].width;
        std::vector<BitVec> taken;
        ParserState start;
        start.name = "start";
        start.extracts.push_back(h0.inst);
        start.select.push_back(
            p4::SelectKey{false, FieldRef{h0.inst, "sel"}, 0, 0});
        for (std::size_t b = 1; b < headers_.size(); ++b) {
          const BitVec v = fresh_value(sw, taken);
          start.cases.push_back(
              ParserCase{v, std::nullopt, false, "p_" + headers_[b].inst});
          ParserState st;
          st.name = "p_" + headers_[b].inst;
          st.extracts.push_back(headers_[b].inst);
          st.cases.push_back(
              ParserCase{BitVec(), std::nullopt, true, p4::kParserAccept});
          ps_extra_.push_back(std::move(st));
          GPath p;
          p.headers = {0, b};
          p.forced.emplace_back(0, static_cast<std::size_t>(h0.sel), v);
          paths_.push_back(std::move(p));
        }
        const BitVec filler = fresh_value(sw, taken);
        start.cases.push_back(ParserCase{
            BitVec(), std::nullopt, true,
            branch_default_drops_ ? p4::kParserDrop : p4::kParserAccept});
        GPath dflt;
        dflt.headers = {0};
        dflt.forced.emplace_back(0, static_cast<std::size_t>(h0.sel), filler);
        dflt.drops = branch_default_drops_;
        paths_.push_back(std::move(dflt));
        note_selector_values(h0, taken);
        ps.push_back(std::move(start));
        for (auto& st : ps_extra_) ps.push_back(std::move(st));
        ps_extra_.clear();
        break;
      }
      case Mode::kChain: {
        GHeader& h0 = headers_[0];
        GHeader& h1 = headers_[1];
        const std::size_t sw0 = h0.fields[h0.sel].width;
        const std::size_t sw1 = h1.fields[h1.sel].width;
        std::vector<BitVec> taken0, taken1;
        const BitVec v1 = fresh_value(sw0, taken0);
        const BitVec filler0 = fresh_value(sw0, taken0);
        const BitVec v2 = fresh_value(sw1, taken1);
        const BitVec filler1 = fresh_value(sw1, taken1);
        note_selector_values(h0, taken0);
        note_selector_values(h1, taken1);

        ParserState start;
        start.name = "start";
        start.extracts.push_back(h0.inst);
        start.select.push_back(
            p4::SelectKey{false, FieldRef{h0.inst, "sel"}, 0, 0});
        start.cases.push_back(ParserCase{v1, std::nullopt, false, "p_h1"});
        start.cases.push_back(
            ParserCase{BitVec(), std::nullopt, true, p4::kParserAccept});
        ps.push_back(std::move(start));

        ParserState s1;
        s1.name = "p_h1";
        s1.extracts.push_back(h1.inst);
        s1.select.push_back(
            p4::SelectKey{false, FieldRef{h1.inst, "sel"}, 0, 0});
        s1.cases.push_back(ParserCase{v2, std::nullopt, false, "p_h2"});
        s1.cases.push_back(
            ParserCase{BitVec(), std::nullopt, true, p4::kParserAccept});
        ps.push_back(std::move(s1));

        ParserState s2;
        s2.name = "p_h2";
        s2.extracts.push_back(headers_[2].inst);
        s2.cases.push_back(
            ParserCase{BitVec(), std::nullopt, true, p4::kParserAccept});
        ps.push_back(std::move(s2));

        GPath full;
        full.headers = {0, 1, 2};
        full.forced.emplace_back(0, static_cast<std::size_t>(h0.sel), v1);
        full.forced.emplace_back(1, static_cast<std::size_t>(h1.sel), v2);
        paths_.push_back(std::move(full));
        GPath two;
        two.headers = {0, 1};
        two.forced.emplace_back(0, static_cast<std::size_t>(h0.sel), v1);
        two.forced.emplace_back(1, static_cast<std::size_t>(h1.sel), filler1);
        paths_.push_back(std::move(two));
        GPath one;
        one.headers = {0};
        one.forced.emplace_back(0, static_cast<std::size_t>(h0.sel), filler0);
        paths_.push_back(std::move(one));
        break;
      }
    }
    for (auto& p : paths_) {
      p.total_bytes = 0;
      for (std::size_t hi : p.headers) p.total_bytes += headers_[hi].bytes;
    }
  }

  // --- actions --------------------------------------------------------------

  struct TablePlan {
    std::string name;
    bool terminal = false;
    // Header whose validity guards the table via if-valid (else-arm tables
    // record it too, with expect_valid=false); kNoGuard otherwise.
    static constexpr std::size_t kNoGuard = static_cast<std::size_t>(-1);
    std::size_t guard_header = kNoGuard;
    bool guard_expect_valid = true;
    bool std_meta = false;       // single ingress_port key
    bool has_ternary = false;    // rules then need explicit priorities
    // Non-always header constrained by a leading valid() key, if any.
    std::size_t valid_keyed_header = kNoGuard;
    TableDef def;
  };

  std::string fresh_action_name() { return "act" + std::to_string(n_actions_++); }

  const std::string& shared_drop() {
    if (drop_action_.empty()) {
      drop_action_ = "a_drop";
      ActionDef a;
      a.name = drop_action_;
      a.body.push_back(PrimitiveCall{Primitive::kDrop, {}});
      prog_.actions.push_back(std::move(a));
    }
    return drop_action_;
  }

  const std::string& shared_nop() {
    if (nop_action_.empty()) {
      nop_action_ = "nop0";
      ActionDef a;
      a.name = nop_action_;
      a.body.push_back(PrimitiveCall{Primitive::kNoOp, {}});
      prog_.actions.push_back(std::move(a));
    }
    return nop_action_;
  }

  // Fields an action running under this plan may write or read:
  // always-valid headers, the guard header (when expect_valid), and meta.
  struct FieldMenu {
    std::vector<FieldRef> header_fields;  // writable packet fields
    std::vector<std::size_t> widths;
    std::vector<FieldRef> meta_fields;
    std::vector<std::size_t> meta_widths;
  };

  FieldMenu field_menu(const TablePlan& plan) const {
    FieldMenu m;
    for (std::size_t hi = 0; hi < headers_.size(); ++hi) {
      const GHeader& h = headers_[hi];
      const bool ok = h.always || (plan.guard_header == hi && plan.guard_expect_valid) ||
                      plan.valid_keyed_header == hi;
      if (!ok) continue;
      for (const auto& f : h.fields) {
        m.header_fields.push_back(FieldRef{h.inst, f.name});
        m.widths.push_back(f.width);
      }
    }
    for (const auto& f : meta_) {
      m.meta_fields.push_back(FieldRef{"md", f.name});
      m.meta_widths.push_back(f.width);
    }
    return m;
  }

  // Append one random persona-supported mutator primitive to `a`.
  void add_mutator_prim(ActionDef& a, const FieldMenu& menu) {
    const bool has_pkt = !menu.header_fields.empty();
    const bool has_meta = !menu.meta_fields.empty();
    if (!has_pkt && !has_meta) {
      a.body.push_back(PrimitiveCall{Primitive::kNoOp, {}});
      return;
    }
    // Pick a destination field.
    const bool dst_meta = has_meta && (!has_pkt || rng_.coin(0.35));
    const std::size_t di =
        dst_meta ? rng_.uniform(0, menu.meta_fields.size() - 1)
                 : rng_.uniform(0, menu.header_fields.size() - 1);
    const FieldRef dst = dst_meta ? menu.meta_fields[di] : menu.header_fields[di];
    const std::size_t dw = dst_meta ? menu.meta_widths[di] : menu.widths[di];

    const std::size_t kind = rng_.uniform(0, 9);
    PrimitiveCall call;
    switch (kind) {
      case 0:
      case 1: {  // modify_field(dst, const)
        call.op = Primitive::kModifyField;
        call.args = {ActionArg::of_field(dst),
                     ActionArg::constant(dw, rng_.bits(dw).low_u64())};
        break;
      }
      case 2: {  // modify_field(dst, param)
        call.op = Primitive::kModifyField;
        call.args = {ActionArg::of_field(dst), ActionArg::param(a.params.size())};
        a.params.push_back(ActionParam{"p" + std::to_string(a.params.size()), dw});
        break;
      }
      case 3: {  // modify_field(dst, src_field), src at least as wide
        std::vector<std::pair<FieldRef, std::size_t>> srcs;
        for (std::size_t i = 0; i < menu.header_fields.size(); ++i)
          if (menu.widths[i] >= dw && !(menu.header_fields[i] == dst))
            srcs.emplace_back(menu.header_fields[i], menu.widths[i]);
        for (std::size_t i = 0; i < menu.meta_fields.size(); ++i)
          if (menu.meta_widths[i] >= dw && !(menu.meta_fields[i] == dst))
            srcs.emplace_back(menu.meta_fields[i], menu.meta_widths[i]);
        if (srcs.empty()) {
          call.op = Primitive::kModifyField;
          call.args = {ActionArg::of_field(dst),
                       ActionArg::constant(dw, rng_.bits(dw).low_u64())};
          break;
        }
        const FieldRef& src = srcs[rng_.uniform(0, srcs.size() - 1)].first;
        call.op = Primitive::kModifyField;
        call.args = {ActionArg::of_field(dst), ActionArg::of_field(src)};
        break;
      }
      case 4: {  // masked modify_field(dst, const, mask)
        call.op = Primitive::kModifyField;
        call.args = {ActionArg::of_field(dst),
                     ActionArg::constant(rng_.bits(dw)),
                     ActionArg::constant(rng_.bits(dw))};
        break;
      }
      case 5:
      case 6: {  // add_to_field / subtract_from_field with const delta
        call.op = kind == 5 ? Primitive::kAddToField
                            : Primitive::kSubtractFromField;
        call.args = {ActionArg::of_field(dst),
                     ActionArg::constant(dw, rng_.uniform(1, 255))};
        break;
      }
      case 7: {  // add_to_field(dst, param)
        call.op = Primitive::kAddToField;
        call.args = {ActionArg::of_field(dst), ActionArg::param(a.params.size())};
        a.params.push_back(ActionParam{"p" + std::to_string(a.params.size()), dw});
        break;
      }
      case 8: {  // meta.f = standard_metadata.ingress_port (meta dst only)
        if (has_meta) {
          const std::size_t mi = rng_.uniform(0, menu.meta_fields.size() - 1);
          call.op = Primitive::kModifyField;
          call.args = {
              ActionArg::of_field(menu.meta_fields[mi]),
              ActionArg::of_field(FieldRef{p4::kStandardMetadata,
                                           p4::kFieldIngressPort})};
        } else {
          call.op = Primitive::kModifyField;
          call.args = {ActionArg::of_field(dst),
                       ActionArg::constant(dw, rng_.bits(dw).low_u64())};
        }
        break;
      }
      default: {  // plain const modify again (keeps the distribution tame)
        call.op = Primitive::kModifyField;
        call.args = {ActionArg::of_field(dst),
                     ActionArg::constant(dw, rng_.bits(dw).low_u64())};
        break;
      }
    }
    a.body.push_back(std::move(call));
  }

  // A terminal (egress-deciding) action: mutators then egress_spec ← param.
  std::string make_forward_action(const TablePlan& plan) {
    ActionDef a;
    a.name = fresh_action_name();
    a.params.push_back(ActionParam{"port", p4::kPortWidth});
    const FieldMenu menu = field_menu(plan);
    const std::size_t n_mut = rng_.uniform(0, 2);
    for (std::size_t i = 0; i < n_mut; ++i) add_mutator_prim(a, menu);
    // Optional single-path header removal (persona RESIZE path); terminal
    // only, so no later table reads the shifted layout.
    if (mode_ == Mode::kSingle && headers_.size() >= 2 && rng_.coin(0.18)) {
      a.body.push_back(PrimitiveCall{
          Primitive::kRemoveHeader, {ActionArg::header(headers_[1].inst)}});
    }
    a.body.push_back(PrimitiveCall{
        Primitive::kModifyField,
        {ActionArg::of_field(
             FieldRef{p4::kStandardMetadata, p4::kFieldEgressSpec}),
         ActionArg::param(0)}});
    const std::string name = a.name;
    port_param_actions_[name] = 0;  // param 0 is port-valued
    prog_.actions.push_back(std::move(a));
    return name;
  }

  std::string make_mutator_action(const TablePlan& plan) {
    ActionDef a;
    a.name = fresh_action_name();
    const FieldMenu menu = field_menu(plan);
    const std::size_t n = rng_.uniform(1, 3);
    for (std::size_t i = 0; i < n; ++i) add_mutator_prim(a, menu);
    const std::string name = a.name;
    prog_.actions.push_back(std::move(a));
    return name;
  }

  // --- tables ---------------------------------------------------------------

  void add_table_keys(TablePlan& plan) {
    TableDef& t = plan.def;
    if (plan.std_meta) {
      t.keys.push_back(TableKey{
          MatchType::kExact,
          FieldRef{p4::kStandardMetadata, p4::kFieldIngressPort}});
      return;
    }

    // Headers whose fields this table may key on without extra validity
    // constraints: always-valid headers plus the guard header (if-valid arm).
    std::vector<std::size_t> safe;
    for (std::size_t hi = 0; hi < headers_.size(); ++hi) {
      if (headers_[hi].always ||
          (plan.guard_header == hi && plan.guard_expect_valid))
        safe.push_back(hi);
    }
    std::vector<std::size_t> cond;  // non-always, unguarded → need valid key
    if (plan.guard_header == TablePlan::kNoGuard) {
      for (std::size_t hi = 0; hi < headers_.size(); ++hi)
        if (!headers_[hi].always) cond.push_back(hi);
    }

    // Meta-only table (the persona matches those against ext_meta; mixing
    // meta and packet keys in one table is out of the generated subset).
    if (!meta_.empty() && rng_.coin(limits_.p_meta_table)) {
      const std::size_t n = std::min<std::size_t>(meta_.size(), rng_.uniform(1, 2));
      for (std::size_t i = 0; i < n; ++i) {
        const bool tern = rng_.coin(limits_.p_meta_ternary_key);
        if (tern) plan.has_ternary = true;
        t.keys.push_back(TableKey{tern ? MatchType::kTernary : MatchType::kExact,
                                  FieldRef{"md", meta_[i].name}});
      }
      return;
    }

    // Valid-only table.
    if (!cond.empty() && rng_.coin(limits_.p_valid_table)) {
      const std::size_t hv = cond[rng_.uniform(0, cond.size() - 1)];
      plan.valid_keyed_header = hv;
      t.keys.push_back(TableKey{MatchType::kValid, FieldRef{headers_[hv].inst, ""}});
      return;
    }

    // Single-key lpm table: rules use implicit priorities, and both
    // backends order longest-prefix-first.
    if (!safe.empty() && rng_.coin(limits_.p_lpm_table)) {
      const GHeader& h = headers_[safe[rng_.uniform(0, safe.size() - 1)]];
      std::vector<std::size_t> wide;
      for (std::size_t i = 0; i < h.fields.size(); ++i)
        if (h.fields[i].width >= 8) wide.push_back(i);
      if (!wide.empty()) {
        const GField& f = h.fields[wide[rng_.uniform(0, wide.size() - 1)]];
        t.keys.push_back(
            TableKey{MatchType::kLpm, FieldRef{h.inst, f.name}});
        return;
      }
    }

    // General packet table: optional valid-keyed conditional header plus
    // 1..2 exact/ternary field keys.
    std::vector<std::size_t> keyable = safe;
    if (!cond.empty() && rng_.coin(limits_.p_valid_extra_key)) {
      const std::size_t hv = cond[rng_.uniform(0, cond.size() - 1)];
      plan.valid_keyed_header = hv;
      t.keys.push_back(
          TableKey{MatchType::kValid, FieldRef{headers_[hv].inst, ""}});
      keyable.push_back(hv);
    }
    if (keyable.empty()) {
      // No headers to key on (can't happen: h0 is always valid) — valid-only.
      return;
    }
    const std::size_t n_keys = rng_.uniform(1, 2);
    std::set<std::pair<std::size_t, std::size_t>> used;
    for (std::size_t i = 0; i < n_keys; ++i) {
      const std::size_t hi = keyable[rng_.uniform(0, keyable.size() - 1)];
      const GHeader& h = headers_[hi];
      const std::size_t fi = rng_.uniform(0, h.fields.size() - 1);
      if (!used.insert({hi, fi}).second) continue;
      const bool tern = rng_.coin(limits_.p_ternary_key);
      if (tern) plan.has_ternary = true;
      t.keys.push_back(TableKey{tern ? MatchType::kTernary : MatchType::kExact,
                                FieldRef{h.inst, h.fields[fi].name}});
    }
    if (t.keys.empty()) {
      // All picks collided: fall back to one exact key on h0.f0.
      t.keys.push_back(
          TableKey{MatchType::kExact, FieldRef{headers_[0].inst,
                                               headers_[0].fields[0].name}});
    }
  }

  TablePlan make_table(bool terminal, std::size_t guard_header,
                       bool guard_expect_valid, bool std_meta) {
    TablePlan plan;
    plan.name = "t" + std::to_string(n_tables_++);
    plan.terminal = terminal;
    plan.guard_header = guard_header;
    plan.guard_expect_valid = guard_expect_valid;
    plan.std_meta = std_meta;
    plan.def.name = plan.name;
    add_table_keys(plan);

    TableDef& t = plan.def;
    if (terminal) {
      const std::size_t n_fwd = rng_.uniform(1, 2);
      for (std::size_t i = 0; i < n_fwd; ++i)
        t.actions.push_back(make_forward_action(plan));
      t.actions.push_back(shared_drop());
      t.default_action = shared_drop();
    } else {
      t.actions.push_back(shared_nop());
      const std::size_t n_mut = rng_.uniform(1, 2);
      for (std::size_t i = 0; i < n_mut; ++i)
        t.actions.push_back(make_mutator_action(plan));
      t.default_action = shared_nop();
    }
    return plan;
  }

  void build_tables_and_control() {
    const std::size_t stage_budget = std::min<std::size_t>(limits_.max_tables, 4);
    std::vector<std::size_t> non_always;
    for (std::size_t hi = 0; hi < headers_.size(); ++hi)
      if (!headers_[hi].always) non_always.push_back(hi);
    const bool guard =
        !non_always.empty() && stage_budget >= 2 && rng_.coin(0.45);
    const std::size_t n_nonterm =
        rng_.uniform(0, stage_budget - (guard ? 2 : 1));

    for (std::size_t i = 0; i < n_nonterm; ++i)
      plans_.push_back(
          make_table(false, TablePlan::kNoGuard, true, false));

    auto& nodes = prog_.ingress.nodes;
    for (std::size_t i = 0; i < plans_.size(); ++i) {
      ControlNode n;
      n.kind = ControlNode::Kind::kApply;
      n.table = plans_[i].name;
      n.next_default = i + 1;  // patched below for the last chain node
      nodes.push_back(std::move(n));
    }

    if (guard) {
      const std::size_t g = non_always[rng_.uniform(0, non_always.size() - 1)];
      plans_.push_back(make_table(true, g, true, false));   // then-arm
      plans_.push_back(make_table(true, g, false, false));  // else-arm
      const std::size_t if_idx = nodes.size();
      ControlNode iff;
      iff.kind = ControlNode::Kind::kIf;
      iff.condition = Expr::valid(headers_[g].inst);
      iff.next_true = if_idx + 1;
      iff.next_false = if_idx + 2;
      nodes.push_back(std::move(iff));
      ControlNode then_n;
      then_n.kind = ControlNode::Kind::kApply;
      then_n.table = plans_[plans_.size() - 2].name;
      then_n.next_default = p4::kEndOfControl;
      nodes.push_back(std::move(then_n));
      ControlNode else_n;
      else_n.kind = ControlNode::Kind::kApply;
      else_n.table = plans_[plans_.size() - 1].name;
      else_n.next_default = p4::kEndOfControl;
      nodes.push_back(std::move(else_n));
    } else {
      const bool std_meta = rng_.coin(0.15);
      plans_.push_back(make_table(true, TablePlan::kNoGuard, true, std_meta));
      ControlNode term;
      term.kind = ControlNode::Kind::kApply;
      term.table = plans_.back().name;
      term.next_default = p4::kEndOfControl;
      nodes.push_back(std::move(term));
    }
    prog_.ingress.name = "ingress";

    for (auto& plan : plans_) prog_.tables.push_back(plan.def);
  }

  // Sprinkle counter / register primitives onto existing mutator or
  // forward actions (stateful cases only; the persona skips those).
  void maybe_attach_stateful_prims() {
    if (!out_.stateful) return;
    if (use_counter_)
      prog_.counters.push_back(p4::CounterDef{"cnt0", 4, ""});
    if (use_register_)
      prog_.registers.push_back(p4::RegisterDef{"reg0", 32, 4});

    std::vector<ActionDef*> candidates;
    for (auto& a : prog_.actions)
      if (a.name != drop_action_) candidates.push_back(&a);
    if (candidates.empty()) return;

    auto pick_action = [&]() -> ActionDef& {
      return *candidates[rng_.uniform(0, candidates.size() - 1)];
    };
    if (use_counter_) {
      ActionDef& a = pick_action();
      a.body.push_back(PrimitiveCall{
          Primitive::kCount,
          {ActionArg::named("cnt0"),
           ActionArg::constant(32, rng_.uniform(0, 3))}});
    }
    if (use_register_) {
      ActionDef& a = pick_action();
      const std::size_t idx = rng_.uniform(0, 3);
      a.body.push_back(PrimitiveCall{
          Primitive::kRegisterWrite,
          {ActionArg::named("reg0"), ActionArg::constant(32, idx),
           ActionArg::constant(32, rng_.bits(32).low_u64())}});
      // Read it back into a field so register state affects packet bytes.
      std::vector<FieldRef> dsts;
      std::vector<std::size_t> dws;
      for (const auto& h : headers_) {
        if (!h.always) continue;
        for (const auto& f : h.fields) {
          dsts.push_back(FieldRef{h.inst, f.name});
          dws.push_back(f.width);
        }
      }
      if (!dsts.empty() && rng_.coin(0.7)) {
        ActionDef& b = pick_action();
        const std::size_t di = rng_.uniform(0, dsts.size() - 1);
        b.body.push_back(PrimitiveCall{
            Primitive::kRegisterRead,
            {ActionArg::of_field(dsts[di]), ActionArg::named("reg0"),
             ActionArg::constant(32, rng_.uniform(0, 3))}});
      }
    }
  }

  void finish_program() {
    prog_.name = "gen_" + std::to_string(out_.seed);
    for (const auto& h : headers_) {
      HeaderType ht;
      ht.name = h.type_name;
      for (const auto& f : h.fields) ht.fields.push_back(p4::Field{f.name, f.width});
      prog_.header_types.push_back(std::move(ht));
      prog_.instances.push_back(HeaderInstance{h.inst, h.type_name, false, 1});
    }
    if (!meta_.empty()) {
      HeaderType mt;
      mt.name = "md_t";
      for (const auto& f : meta_) mt.fields.push_back(p4::Field{f.name, f.width});
      prog_.header_types.push_back(std::move(mt));
      prog_.instances.push_back(HeaderInstance{"md", "md_t", true, 1});
    }
    prog_.egress.name = "egress";
    prog_.finalize();
    out_.program = prog_;
  }

  // --- rules ----------------------------------------------------------------

  std::string key_string(const TablePlan& plan, const TableKey& k) {
    if (plan.std_meta)
      return std::to_string(rng_.uniform(1, limits_.ports));
    if (k.type == MatchType::kValid) return "1";
    // Locate the field's generation model for its pool.
    const GField* gf = nullptr;
    std::size_t width = 0;
    for (const auto& h : headers_) {
      if (h.inst != k.field.header) continue;
      for (const auto& f : h.fields)
        if (f.name == k.field.field) {
          gf = &f;
          width = f.width;
        }
    }
    if (gf == nullptr) {
      // Meta field: pools are small values near zero (meta starts zeroed,
      // mutator writes are random — zero keys make default-state hits easy).
      for (const auto& f : meta_)
        if (k.field.header == "md" && f.name == k.field.field) width = f.width;
      BitVec v = rng_.coin(0.5) ? BitVec(width) : rng_.bits(width);
      switch (k.type) {
        case MatchType::kTernary: {
          const BitVec m = ternary_mask(width);
          return hex(v & m) + "&&&" + hex(m);
        }
        default:
          return hex(v);
      }
    }
    BitVec v = pool_or_random(*gf);
    switch (k.type) {
      case MatchType::kExact:
        return hex(v);
      case MatchType::kTernary: {
        const BitVec m = ternary_mask(width);
        return hex(v & m) + "&&&" + hex(m);
      }
      case MatchType::kLpm: {
        const std::size_t len = rng_.uniform(1, width);
        const BitVec m = BitVec::mask_range(width, width - len, len);
        return hex(v & m) + "/" + std::to_string(len);
      }
      default:
        return hex(v);
    }
  }

  BitVec ternary_mask(std::size_t width) {
    switch (rng_.uniform(0, 3)) {
      case 0:
        return BitVec::ones(width);
      case 1:  // high half
        return BitVec::mask_range(width, width - width / 2, width / 2);
      case 2:  // low half
        return BitVec::mask_range(width, 0, (width + 1) / 2);
      default:
        return rng_.bits(width);
    }
  }

  void build_rules() {
    for (const auto& plan : plans_) {
      const TableDef& t = plan.def;
      const std::size_t lo = plan.terminal ? 1 : 0;
      const std::size_t n = rng_.uniform(lo, limits_.max_rules_per_table);
      std::set<std::string> seen;
      std::int32_t prio_seq = 10;
      for (std::size_t i = 0; i < n; ++i) {
        GenRule r;
        r.table = t.name;
        // Bias towards non-default actions so rules do something.
        std::vector<std::string> cands;
        for (const auto& a : t.actions)
          if (a != t.default_action) cands.push_back(a);
        if (cands.empty() || rng_.coin(0.12)) cands = t.actions;
        r.action = cands[rng_.uniform(0, cands.size() - 1)];
        for (const auto& k : t.keys) r.keys.push_back(key_string(plan, k));
        std::string sig;
        for (const auto& k : r.keys) sig += k + "|";
        if (!seen.insert(sig).second) continue;
        const ActionDef& ad = prog_.action(r.action);
        auto port_it = port_param_actions_.find(r.action);
        for (std::size_t p = 0; p < ad.params.size(); ++p) {
          if (port_it != port_param_actions_.end() && port_it->second == p) {
            r.args.push_back(std::to_string(rng_.uniform(1, limits_.ports)));
          } else {
            r.args.push_back(hex(rng_.bits(ad.params[p].width)));
          }
        }
        if (plan.has_ternary) {
          r.priority = prio_seq;
          prio_seq += 10;
        }
        out_.rules.push_back(std::move(r));
      }
    }
  }

  // --- packets --------------------------------------------------------------

  std::size_t parse_ladder_floor() const {
    std::size_t raw = 0;
    for (const auto& p : paths_) raw = std::max(raw, p.total_bytes);
    for (std::size_t v : hp4::PersonaConfig{}.parse_ladder())
      if (v >= raw) return v;
    return raw;  // beyond the ladder — the persona will refuse; keep native sane
  }

  void build_packets() {
    const std::size_t floor = parse_ladder_floor();
    for (std::size_t i = 0; i < limits_.packets; ++i) {
      const GPath& path = paths_[rng_.uniform(0, paths_.size() - 1)];
      std::vector<std::uint8_t> bytes;
      for (std::size_t hi : path.headers) {
        const GHeader& h = headers_[hi];
        BitVec hv(8 * h.bytes);
        std::size_t msb_off = 0;
        for (std::size_t fi = 0; fi < h.fields.size(); ++fi) {
          const GField& f = h.fields[fi];
          BitVec v = pool_or_random(f);
          for (const auto& [fhi, ffi, fv] : path.forced)
            if (fhi == hi && ffi == fi) v = fv;
          hv.set_slice(8 * h.bytes - msb_off - f.width, v);
          msb_off += f.width;
        }
        const auto hb = hv.to_bytes();
        bytes.insert(bytes.end(), hb.begin(), hb.end());
      }
      const std::size_t target =
          std::max(floor, bytes.size()) +
          rng_.uniform(0, limits_.max_extra_payload);
      while (bytes.size() < target)
        bytes.push_back(static_cast<std::uint8_t>(rng_.uniform(0, 255)));
      GenPacket pk;
      pk.port = static_cast<std::uint16_t>(rng_.uniform(1, limits_.ports));
      pk.packet = net::Packet(std::move(bytes));
      out_.packets.push_back(std::move(pk));
    }
  }

  GenLimits limits_;
  Rng rng_;
  GenCase out_;
  Program prog_;
  Mode mode_ = Mode::kSingle;
  bool branch_default_drops_ = false;
  std::vector<GHeader> headers_;
  std::vector<MetaField> meta_;
  std::vector<GPath> paths_;
  std::vector<ParserState> ps_extra_;
  std::vector<TablePlan> plans_;
  std::map<std::string, std::size_t> port_param_actions_;
  std::string drop_action_;
  std::string nop_action_;
  std::size_t n_actions_ = 0;
  std::size_t n_tables_ = 0;
  bool use_counter_ = false;
  bool use_register_ = false;
};

}  // namespace

std::string cli_line(const GenRule& r) {
  std::ostringstream os;
  os << "table_add " << r.table << " " << r.action;
  for (const auto& k : r.keys) os << " " << k;
  os << " =>";
  for (const auto& a : r.args) os << " " << a;
  if (r.priority >= 0) os << " " << r.priority;
  return os.str();
}

GenCase ProgramGen::generate(std::uint64_t seed) const {
  return Gen(limits_, seed).run();
}

ChainCase ProgramGen::generate_chain(std::uint64_t seed,
                                     std::size_t depth) const {
  if (depth < 1)
    throw util::ConfigError("check: chain depth must be >= 1");
  ChainCase cc;
  cc.seed = seed;
  cc.ports = limits_.ports;

  // The persona skips stateful programs entirely, which for a chain would
  // skip the whole composition — generate every link stateless.
  GenLimits link_limits = limits_;
  link_limits.allow_stateful = false;
  const ProgramGen link_gen(link_limits);

  for (std::size_t i = 0; i < depth; ++i) {
    // Sub-seed derivation: a large odd stride keeps link seeds within one
    // chain distinct and makes collisions with the sequential single-case
    // seed walk (seed, seed+1, ...) practically impossible.
    const std::uint64_t sub = seed * 0x100000001B3ull + i * 0x9E37ull + i;
    GenCase c = link_gen.generate(sub);
    ChainLink link;
    link.name = "l" + std::to_string(i) + "_" + c.program.name;
    link.program = std::move(c.program);
    link.rules = std::move(c.rules);
    if (i == 0) cc.packets = std::move(c.packets);
    cc.links.push_back(std::move(link));
  }
  return cc;
}

}  // namespace hyper4::check
