#include "check/crash_fuzz.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "bm/cli.h"
#include "bm/switch.h"
#include "check/diff_runner.h"
#include "check/trace_diff.h"
#include "engine/engine.h"
#include "hp4/compiler.h"
#include "hp4/controller.h"
#include "hp4/p4_emit.h"
#include "p4/frontend.h"
#include "state/digest.h"
#include "state/journal.h"
#include "state/store.h"
#include "util/error.h"

namespace hyper4::check {

namespace fs = std::filesystem;

namespace {

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

hp4::VirtualRule to_virtual(const GenRule& r) {
  return hp4::VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

// One logical unit of the op script: everything whose journal records
// either all survive a crash or are all lost. `lsn` is the LSN of the
// unit's last state-bearing record — the unit is recovered iff the
// recovered journal's trusted prefix reaches it.
struct Unit {
  enum Kind { kLoad, kAttach, kBind, kRules, kCheckpoint } kind = kLoad;
  std::uint64_t lsn = 0;
  std::uint16_t port = 0;          // kBind
  std::size_t rule_first = 0;      // kRules
  std::size_t rule_count = 0;
  bool txn = false;
};

std::uint64_t flat_journal_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  for (const auto& f : state::Journal::segment_files(dir))
    total += fs::file_size(f);
  return total;
}

hp4::PersonaConfig fuzz_persona_config() {
  hp4::PersonaConfig pc;
  pc.writeback_step_bytes = 1;  // per-byte resize actions (see DiffRunner)
  return pc;
}

state::StoreOptions fuzz_store_options() {
  state::StoreOptions so;
  so.segment_bytes = 4096;  // small segments so scripts exercise rotation
  so.digest_every = 1;
  so.fsync_every = 0;  // no markers: every record is state-bearing, so a
                       // unit's LSN is exactly the store's last_lsn
  return so;
}

// Drive the reference store through the seeded script. Returns the unit
// list; *txn_window receives the flattened-journal byte range of the last
// transaction's commit record (0,0 when the script had no transaction).
std::vector<Unit> run_script(state::DurableController& st, const GenCase& c,
                             std::uint64_t& rng, bool with_checkpoint,
                             std::pair<std::uint64_t, std::uint64_t>* txn_window,
                             bool* checkpointed) {
  std::vector<Unit> units;
  const hp4::VdevId id =
      st.load_source(c.program.name, hp4::emit_p4(c.program));
  units.push_back({Unit::kLoad, st.last_lsn()});

  std::vector<std::uint16_t> ports;
  for (std::size_t p = 1; p <= c.ports; ++p)
    ports.push_back(static_cast<std::uint16_t>(p));
  st.attach_ports(id, ports);
  units.push_back({Unit::kAttach, st.last_lsn()});
  for (std::uint16_t p : ports) {
    st.bind(id, p);
    Unit u{Unit::kBind, st.last_lsn()};
    u.port = p;
    units.push_back(u);
  }

  if (with_checkpoint) {
    // Checkpoint after setup: the load/attach/bind records leave the
    // journal, the rule records stay in the tail — recovery must compose
    // image + replay.
    st.checkpoint();
    units.push_back({Unit::kCheckpoint, st.last_lsn()});
    *checkpointed = true;
  }

  *txn_window = {0, 0};
  std::size_t i = 0;
  while (i < c.rules.size()) {
    std::size_t group = 1;
    if (i + 1 < c.rules.size() && splitmix(rng) % 3 == 0)
      group = std::min<std::size_t>(2 + splitmix(rng) % 3,
                                    c.rules.size() - i);
    Unit u{Unit::kRules, 0};
    u.rule_first = i;
    u.rule_count = group;
    if (group > 1) {
      const std::uint64_t before = flat_journal_bytes(st.dir());
      st.txn_begin();
      for (std::size_t k = 0; k < group; ++k)
        st.add_rule(id, to_virtual(c.rules[i + k]));
      u.lsn = st.txn_commit();
      u.txn = true;
      *txn_window = {before, flat_journal_bytes(st.dir())};
    } else {
      st.add_rule(id, to_virtual(c.rules[i]));
      u.lsn = st.last_lsn();
    }
    units.push_back(u);
    i += group;
  }
  return units;
}

// Build the expected controller: a plain hp4::Controller that applied
// exactly the first `count` units.
std::unique_ptr<hp4::Controller> build_expected(const GenCase& c,
                                                const p4::Program& canon,
                                                const std::vector<Unit>& units,
                                                std::size_t count) {
  auto ctl = std::make_unique<hp4::Controller>(fuzz_persona_config());
  hp4::VdevId id = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const Unit& u = units[i];
    switch (u.kind) {
      case Unit::kLoad:
        id = ctl->load(c.program.name, canon);
        break;
      case Unit::kAttach: {
        std::vector<std::uint16_t> ports;
        for (std::size_t p = 1; p <= c.ports; ++p)
          ports.push_back(static_cast<std::uint16_t>(p));
        ctl->attach_ports(id, ports);
        break;
      }
      case Unit::kBind:
        ctl->bind(id, u.port);
        break;
      case Unit::kRules:
        for (std::size_t k = 0; k < u.rule_count; ++k)
          ctl->add_rule(id, to_virtual(c.rules[u.rule_first + k]));
        break;
      case Unit::kCheckpoint:
        break;  // no state effect
    }
  }
  return ctl;
}

// Copy ref's on-disk store and truncate the flattened journal to keep the
// first `offset` bytes.
void make_crash_copy(const std::string& ref_dir, const std::string& crash_dir,
                     std::uint64_t offset) {
  fs::create_directories(crash_dir);
  for (const auto& e : fs::directory_iterator(ref_dir))
    fs::copy_file(e.path(), fs::path(crash_dir) / e.path().filename());
  std::uint64_t acc = 0;
  bool cut = false;
  for (const auto& f : state::Journal::segment_files(crash_dir)) {
    const std::uint64_t sz = fs::file_size(f);
    if (cut) {
      fs::remove(f);
      continue;
    }
    if (acc + sz <= offset) {
      acc += sz;
      continue;
    }
    fs::resize_file(f, offset - acc);
    cut = true;
  }
}

std::string verify_recovery(state::DurableController& rec,
                            hp4::Controller& expected, const GenCase& c,
                            const std::vector<Unit>& units, std::size_t count,
                            const CrashFuzzOptions& opts) {
  // 1. Digest: the recovered store must be byte-for-byte the expected
  // prefix (tables, DPMU, registers — everything control-determined).
  const std::uint64_t dr = state::state_digest(rec.controller());
  const std::uint64_t de = state::state_digest(expected);
  if (dr != de)
    return "digest mismatch: recovered " + state::digest_hex(dr) +
           " vs expected " + state::digest_hex(de);

  // Native reference over the surviving rule prefix (skipped until the
  // load unit survives — with no vdev the persona floods nothing, and a
  // native switch would still forward, so there is nothing to compare).
  bool loaded = false;
  std::vector<const GenRule*> live_rules;
  for (std::size_t i = 0; i < count; ++i) {
    if (units[i].kind == Unit::kLoad) loaded = true;
    if (units[i].kind == Unit::kRules)
      for (std::size_t k = 0; k < units[i].rule_count; ++k)
        live_rules.push_back(&c.rules[units[i].rule_first + k]);
  }

  bool bound = false;
  for (std::size_t i = 0; i < count; ++i)
    if (units[i].kind == Unit::kBind) bound = true;

  std::unique_ptr<bm::Switch> native;
  std::unique_ptr<engine::TrafficEngine> eng;
  if (loaded && bound) {
    native = std::make_unique<bm::Switch>(c.program);
    for (const GenRule* r : live_rules) {
      const bm::CliResult res = bm::run_cli_command(*native, cli_line(*r));
      if (!res.ok)
        return "native rejected surviving rule '" + cli_line(*r) +
               "': " + res.message;
    }
    if (opts.run_engine) {
      engine::EngineOptions eo;
      eo.workers = std::max<std::size_t>(1, opts.engine_workers);
      eng = std::make_unique<engine::TrafficEngine>(c.program, eo);
      eng->sync_from(*native);
    }
  }

  // 2/3/4. Per-packet traces: recovered persona vs expected persona must
  // be structurally identical; native (and the engine) must agree with the
  // recovered persona on what leaves the switch.
  bm::Switch& rec_dp = rec.controller().dataplane();
  std::vector<bm::ProcessResult> native_res;
  for (std::size_t i = 0; i < c.packets.size(); ++i) {
    const auto& pk = c.packets[i];
    const bm::ProcessResult pr = rec_dp.inject(pk.port, pk.packet);
    const bm::ProcessResult pe = expected.dataplane().inject(pk.port, pk.packet);
    if (auto d = diff_results(pe, pr, i)) {
      d->lhs = "expected-persona";
      d->rhs = "recovered-persona";
      return d->str();
    }
    if (native) {
      native_res.push_back(native->inject(pk.port, pk.packet));
      if (auto d = diff_observable(native_res.back(), pr, i)) {
        d->lhs = "native";
        d->rhs = "recovered-persona";
        return d->str();
      }
      if (eng) eng->inject(pk.port, pk.packet);
    }
  }
  if (eng && native) {
    // Third backend: the engine's traces must match the native ones
    // structurally (its determinism contract), tying all three together.
    const engine::MergedResult merged = eng->drain();
    if (merged.packets != native_res.size())
      return "engine drained " + std::to_string(merged.packets) + " of " +
             std::to_string(native_res.size()) + " packets";
    for (std::size_t i = 0; i < native_res.size(); ++i) {
      if (auto d = diff_results(native_res[i], merged.per_packet[i], i)) {
        d->lhs = "native";
        d->rhs = "engine";
        return d->str();
      }
    }
  }
  return "";
}

}  // namespace

std::string CrashFuzzResult::str() const {
  std::ostringstream os;
  os << "crash-fuzz: " << cases << " case(s), " << skipped << " skipped, "
     << recoveries << " recoveries (" << txn_kills << " at txn commits, "
     << checkpoint_runs << " checkpointed runs), " << failures.size()
     << " failure(s)";
  for (const auto& f : failures)
    os << "\n  seed " << f.seed << " kill@" << f.kill_offset << " [" << f.dir
       << "]: " << f.detail;
  return os.str();
}

CrashFuzzResult crash_fuzz(const CrashFuzzOptions& opts) {
  if (opts.work_dir.empty())
    throw util::ConfigError("crash_fuzz: work_dir is required");
  fs::create_directories(opts.work_dir);

  CrashFuzzResult result;
  const ProgramGen gen(opts.limits);
  const hp4::PersonaConfig pc = fuzz_persona_config();
  const state::StoreOptions so = fuzz_store_options();

  for (std::size_t iter = 0; iter < opts.iters; ++iter) {
    const std::uint64_t seed = opts.seed + iter;
    std::uint64_t rng = seed * 0x9e3779b97f4a7c15ull + 1;
    const GenCase c = gen.generate(seed);
    if (c.stateful) {
      ++result.skipped;
      continue;
    }

    // Canonical program: what the store journals and replays compiles.
    const std::string source = hp4::emit_p4(c.program);
    const p4::Program canon = p4::parse_p4(source, c.program.name);

    // Persona support probe (the persona subset is narrower than the
    // generator's; unsupported seeds are skipped, exactly as the
    // differential oracle does).
    {
      hp4::Controller probe(pc);
      try {
        probe.load(c.program.name, canon);
      } catch (const hp4::UnsupportedFeature&) {
        ++result.skipped;
        continue;
      }
    }
    ++result.cases;

    const std::string ref_dir =
        (fs::path(opts.work_dir) / ("ref-" + std::to_string(seed))).string();
    fs::remove_all(ref_dir);

    std::vector<Unit> units;
    std::pair<std::uint64_t, std::uint64_t> txn_window{0, 0};
    bool checkpointed = false;
    std::uint64_t ref_digest = 0;
    {
      state::DurableController ref(ref_dir, pc, so);
      units = run_script(ref, c, rng, splitmix(rng) % 2 == 0, &txn_window,
                         &checkpointed);
      ref_digest = ref.digest();
    }  // closed: segment files are complete on disk
    if (checkpointed) ++result.checkpoint_runs;

    // Sanity: the reference store and an expected-full controller must
    // already agree, or the verifier itself is broken.
    {
      auto full = build_expected(c, canon, units, units.size());
      const std::uint64_t dfull = state::state_digest(*full);
      if (ref_digest != dfull) {
        result.failures.push_back(
            {seed, 0, ref_dir,
             "self-check: uncrashed reference digest " +
                 state::digest_hex(ref_digest) + " != expected-full " +
                 state::digest_hex(dfull)});
        continue;
      }
    }

    // Kill offsets: one forced inside the last transaction's commit
    // record, the rest uniform over the flattened journal.
    const std::uint64_t total = flat_journal_bytes(ref_dir);
    std::vector<std::uint64_t> kills;
    if (txn_window.second > txn_window.first) {
      const std::uint64_t span = txn_window.second - txn_window.first;
      kills.push_back(txn_window.first + 1 + splitmix(rng) % std::max<std::uint64_t>(1, span / 2));
    }
    for (std::size_t k = 0; k < opts.kills_per_iter; ++k)
      kills.push_back(total ? splitmix(rng) % total : 0);

    for (std::size_t k = 0; k < kills.size(); ++k) {
      const std::uint64_t off = kills[k];
      const std::string crash_dir =
          (fs::path(opts.work_dir) /
           ("crash-" + std::to_string(seed) + "-" + std::to_string(k)))
              .string();
      fs::remove_all(crash_dir);
      make_crash_copy(ref_dir, crash_dir, off);

      std::string detail;
      try {
        state::DurableController rec(crash_dir, pc, so);
        ++result.recoveries;
        if (!rec.recovery().digest_ok)
          detail = "recovery digest verification failed: " +
                   rec.recovery().str();
        if (detail.empty()) {
          // Expected prefix: units whose state record survived.
          std::size_t count = 0;
          while (count < units.size() && units[count].lsn <= rec.last_lsn())
            ++count;
          if (count < units.size() && units[count].txn) ++result.txn_kills;
          auto expected = build_expected(c, canon, units, count);
          detail = verify_recovery(rec, *expected, c, units, count, opts);
        }
      } catch (const util::Error& e) {
        detail = std::string("recovery threw: ") + e.what();
      }

      if (detail.empty()) {
        fs::remove_all(crash_dir);
      } else {
        std::ofstream repro(fs::path(crash_dir) / "REPRO.txt");
        repro << "seed: " << seed << "\nkill_offset: " << off
              << "\ndetail: " << detail << "\n";
        result.failures.push_back({seed, off, crash_dir, detail});
      }
    }

    if (opts.verbose)
      std::fprintf(stderr, "crash-fuzz seed %llu: %zu unit(s), %zu kill(s)%s\n",
                   static_cast<unsigned long long>(seed), units.size(),
                   kills.size(), checkpointed ? ", checkpointed" : "");
    // Keep the reference dir only when one of its kills failed.
    bool iter_failed = false;
    for (const auto& f : result.failures)
      if (f.seed == seed) iter_failed = true;
    if (!iter_failed) fs::remove_all(ref_dir);
  }
  return result;
}

}  // namespace hyper4::check
