#include "check/reducer.h"

#include <algorithm>
#include <set>

namespace hyper4::check {

namespace {

// Redirect every control edge equal to `from` to `to`, then shift edges
// past a removed node index down by one.
void patch_edge(std::size_t& e, std::size_t from, std::size_t to) {
  if (e == from) e = to;
}

void shift_edge(std::size_t& e, std::size_t removed) {
  if (e != p4::kEndOfControl && e > removed) --e;
}

void for_each_edge(p4::Control& c,
                   const std::function<void(std::size_t&)>& fn) {
  for (auto& n : c.nodes) {
    for (auto& [name, tgt] : n.on_action) fn(tgt);
    if (n.on_hit) fn(*n.on_hit);
    if (n.on_miss) fn(*n.on_miss);
    fn(n.next_default);
    fn(n.next_true);
    fn(n.next_false);
  }
}

// Remove `table` from the program: its definition, its control node (edges
// rerouted to the node's fallthrough) and any actions no other table uses.
bool remove_table(p4::Program& prog, const std::string& table) {
  auto td = std::find_if(prog.tables.begin(), prog.tables.end(),
                         [&](const p4::TableDef& t) { return t.name == table; });
  if (td == prog.tables.end()) return false;
  prog.tables.erase(td);

  for (p4::Control* c : {&prog.ingress, &prog.egress}) {
    for (std::size_t idx = 0; idx < c->nodes.size();) {
      if (c->nodes[idx].kind != p4::ControlNode::Kind::kApply ||
          c->nodes[idx].table != table) {
        ++idx;
        continue;
      }
      const std::size_t target = c->nodes[idx].next_default;
      for_each_edge(*c, [&](std::size_t& e) { patch_edge(e, idx, target); });
      c->nodes.erase(c->nodes.begin() + static_cast<std::ptrdiff_t>(idx));
      for_each_edge(*c, [&](std::size_t& e) { shift_edge(e, idx); });
    }
  }

  // Prune actions nothing references any more.
  std::set<std::string> referenced;
  for (const auto& t : prog.tables) {
    for (const auto& a : t.actions) referenced.insert(a);
    if (!t.default_action.empty()) referenced.insert(t.default_action);
  }
  std::erase_if(prog.actions, [&](const p4::ActionDef& a) {
    return !referenced.contains(a.name);
  });
  return true;
}

class Reducer {
 public:
  Reducer(GenCase best, const FailurePredicate& still_fails,
          ReduceStats* stats)
      : best_(std::move(best)), fails_(still_fails), stats_(stats) {}

  GenCase run() {
    for (int round = 0; round < 8; ++round) {
      bool changed = false;
      changed |= shrink_packets();
      changed |= shrink_rules();
      changed |= shrink_tables();
      changed |= shrink_prims();
      if (!changed) break;
    }
    return best_;
  }

 private:
  bool accept(const GenCase& cand) {
    if (stats_ != nullptr) ++stats_->attempts;
    bool still = false;
    try {
      still = fails_(cand);
    } catch (...) {
      still = false;  // candidate broke the harness — not a repro
    }
    if (still) {
      best_ = cand;
      if (stats_ != nullptr) ++stats_->accepted;
    }
    return still;
  }

  bool shrink_packets() {
    bool changed = false;
    // Fast path: a single packet often carries the whole failure.
    if (best_.packets.size() > 1) {
      for (std::size_t i = 0; i < best_.packets.size(); ++i) {
        GenCase cand = best_;
        cand.packets = {best_.packets[i]};
        if (accept(cand)) {
          changed = true;
          break;
        }
      }
    }
    for (std::size_t i = 0; i < best_.packets.size() && best_.packets.size() > 1;) {
      GenCase cand = best_;
      cand.packets.erase(cand.packets.begin() + static_cast<std::ptrdiff_t>(i));
      if (accept(cand)) {
        changed = true;
      } else {
        ++i;
      }
    }
    return changed;
  }

  bool shrink_rules() {
    bool changed = false;
    for (std::size_t i = 0; i < best_.rules.size();) {
      GenCase cand = best_;
      cand.rules.erase(cand.rules.begin() + static_cast<std::ptrdiff_t>(i));
      if (accept(cand)) {
        changed = true;
      } else {
        ++i;
      }
    }
    return changed;
  }

  bool shrink_tables() {
    bool changed = false;
    bool retry = true;
    while (retry && best_.program.tables.size() > 1) {
      retry = false;
      for (const auto& t : best_.program.tables) {
        GenCase cand = best_;
        if (!remove_table(cand.program, t.name)) continue;
        std::erase_if(cand.rules,
                      [&](const GenRule& r) { return r.table == t.name; });
        try {
          cand.program.finalize();
        } catch (...) {
          continue;  // removal left a dangling reference — skip candidate
        }
        if (accept(cand)) {
          changed = true;
          retry = true;
          break;  // the table list changed under us — restart the scan
        }
      }
    }
    return changed;
  }

  bool shrink_prims() {
    bool changed = false;
    for (std::size_t ai = 0; ai < best_.program.actions.size(); ++ai) {
      for (std::size_t pi = 0; pi < best_.program.actions[ai].body.size();) {
        GenCase cand = best_;
        auto& body = cand.program.actions[ai].body;
        body.erase(body.begin() + static_cast<std::ptrdiff_t>(pi));
        try {
          cand.program.finalize();
        } catch (...) {
          ++pi;
          continue;
        }
        if (accept(cand)) {
          changed = true;
        } else {
          ++pi;
        }
      }
    }
    return changed;
  }

  GenCase best_;
  const FailurePredicate& fails_;
  ReduceStats* stats_;
};

}  // namespace

GenCase reduce(const GenCase& failing, const FailurePredicate& still_fails,
               ReduceStats* stats) {
  return Reducer(failing, still_fails, stats).run();
}

namespace {

class ChainReducer {
 public:
  ChainReducer(ChainCase best, const ChainFailurePredicate& still_fails,
               ReduceStats* stats)
      : best_(std::move(best)), fails_(still_fails), stats_(stats) {}

  ChainCase run() {
    for (int round = 0; round < 8; ++round) {
      bool changed = false;
      changed |= shrink_links();
      changed |= shrink_packets();
      changed |= shrink_rules();
      if (!changed) break;
    }
    return best_;
  }

 private:
  bool accept(const ChainCase& cand) {
    if (stats_ != nullptr) ++stats_->attempts;
    bool still = false;
    try {
      still = fails_(cand);
    } catch (...) {
      still = false;
    }
    if (still) {
      best_ = cand;
      if (stats_ != nullptr) ++stats_->accepted;
    }
    return still;
  }

  bool shrink_links() {
    bool changed = false;
    for (std::size_t i = 0; i < best_.links.size() && best_.links.size() > 1;) {
      ChainCase cand = best_;
      cand.links.erase(cand.links.begin() + static_cast<std::ptrdiff_t>(i));
      if (accept(cand)) {
        changed = true;
      } else {
        ++i;
      }
    }
    return changed;
  }

  bool shrink_packets() {
    bool changed = false;
    if (best_.packets.size() > 1) {
      for (std::size_t i = 0; i < best_.packets.size(); ++i) {
        ChainCase cand = best_;
        cand.packets = {best_.packets[i]};
        if (accept(cand)) {
          changed = true;
          break;
        }
      }
    }
    for (std::size_t i = 0;
         i < best_.packets.size() && best_.packets.size() > 1;) {
      ChainCase cand = best_;
      cand.packets.erase(cand.packets.begin() +
                         static_cast<std::ptrdiff_t>(i));
      if (accept(cand)) {
        changed = true;
      } else {
        ++i;
      }
    }
    return changed;
  }

  bool shrink_rules() {
    bool changed = false;
    for (std::size_t li = 0; li < best_.links.size(); ++li) {
      for (std::size_t i = 0; i < best_.links[li].rules.size();) {
        ChainCase cand = best_;
        auto& rules = cand.links[li].rules;
        rules.erase(rules.begin() + static_cast<std::ptrdiff_t>(i));
        if (accept(cand)) {
          changed = true;
        } else {
          ++i;
        }
      }
    }
    return changed;
  }

  ChainCase best_;
  const ChainFailurePredicate& fails_;
  ReduceStats* stats_;
};

}  // namespace

ChainCase reduce_chain(const ChainCase& failing,
                       const ChainFailurePredicate& still_fails,
                       ReduceStats* stats) {
  return ChainReducer(failing, still_fails, stats).run();
}

}  // namespace hyper4::check
