// The four-backend differential oracle.
//
// A (program, rules, packets) triple runs through
//   native   bm::Switch compiled straight from the target IR,
//   engine   engine::TrafficEngine over the same IR (state mirrored from
//            the configured native switch via sync_from),
//   persona  the HyPer4 persona, loaded through hp4::Controller (compile +
//            DPMU rule translation), ports bound 1:1, and
//   vm       vm::VmExecutor over the same persona dataplane — the compiled
//            bytecode tier, compared packet-by-packet against the
//            interpreted persona (observable outputs + TM counters).
//
// Comparisons:
//   native vs engine   full structural trace equality per packet (outputs,
//                      applied tables with handles, drop/resubmit/...
//                      counters, digests) plus final counter totals and —
//                      with one worker — register state. The engine's
//                      determinism contract says these are bit-identical.
//   native vs persona  egress-observable equality per packet (the paper's
//                      functional-equivalence claim). Programs outside the
//                      persona subset (counters/registers, §5.3) are
//                      reported as skipped, not failed.
//   persona vs vm      egress-observable equality plus TM-counter equality
//                      (drops, resubmits, recirculations, parse errors,
//                      loop kills, multicast copies) per packet. The VM's
//                      transparent fallback means a packet outside the
//                      compiled tier still compares equal — fallbacks are
//                      surfaced in DiffReport::vm_fallbacks; divergence
//                      means a genuine bytecode bug.
//
// DiffOptions::mutation injects a deliberate divergence for self-testing
// the oracle and the reducer: a report of "equivalent" from a broken
// checker is worthless, so the checker must be able to catch a plant.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/program_gen.h"
#include "check/trace_diff.h"

namespace hyper4::check {

enum class Mutation {
  kNone,
  // Silently omit the last rule from the persona install (models a DPMU
  // translation dropping an entry).
  kDropPersonaRule,
  // Corrupt one output byte in the engine's merged results (models a
  // worker-merge bug).
  kCorruptEngineByte,
};

struct DiffOptions {
  std::size_t engine_workers = 4;  // pinned to 1 for stateful cases
  bool run_engine = true;
  bool run_persona = true;
  // Run the bytecode tier against the interpreted persona. Requires the
  // persona to have run (implicitly off when run_persona is false or the
  // program is outside the persona subset).
  bool run_vm = true;
  // Write-back granularity for the persona under test. Defaults to the
  // paper's per-byte resize actions so remove_header of any width is exact;
  // the stock persona default (10) would skip off-quantum resize programs.
  std::size_t persona_writeback_step = 1;
  Mutation mutation = Mutation::kNone;
  // Attach obs::PipelineTracers (events + per-stage profile + timestamps)
  // to the native switch and the persona dataplane, decode both traces,
  // and fill DiffReport::explanation / chrome_trace / profile_json. Off by
  // default: tracing every fuzz iteration costs ring memory and two clock
  // reads per stage.
  bool trace = false;
};

struct DiffReport {
  bool equivalent = true;
  // Persona participation: false when the compile rejected the program
  // (UnsupportedFeature) — the reason is recorded, the case still counts
  // as checked native-vs-engine.
  bool persona_ran = false;
  std::string persona_skip_reason;
  // VM participation: true when the bytecode tier processed the case's
  // packets (possibly via per-packet fallback, counted below).
  bool vm_ran = false;
  std::uint64_t vm_fallbacks = 0;
  std::optional<Divergence> divergence;

  // Filled when DiffOptions::trace is set:
  //   explanation   decoded first-divergence report (native vs persona, in
  //                 the emulated program's vocabulary); for engine-side or
  //                 persona-skipped divergences, the native decoded trace
  //                 as context. "" when the traces agree.
  //   chrome_trace  about://tracing JSON covering every traced backend.
  //   profile_json  the native switch's per-stage latency histograms.
  std::string explanation;
  std::string chrome_trace;
  std::string profile_json;

  std::string str() const;
};

class DiffRunner {
 public:
  explicit DiffRunner(DiffOptions opts = {}) : opts_(opts) {}
  const DiffOptions& options() const { return opts_; }

  // Throws util::Error only on malformed inputs (a rule the *native* CLI
  // rejects, an invalid program); backend disagreement — including a
  // persona rule rejection — is reported, not thrown.
  DiffReport run(const GenCase& c) const;

  // Chained multi-vdev oracle: the same four backends over a composition.
  //   native   one bm::Switch per link, cascaded in series — every output
  //            of link i re-injected into link i+1 on the same port, the
  //            final link's outputs observable (hp4_vnet semantics);
  //   persona  ONE persona hosting every link, composed with
  //            Controller::chain() — inter-link hops are recirculations;
  //   engine   TrafficEngine over the persona program, state mirrored from
  //            the configured persona dataplane, full structural diff
  //            against the persona's per-packet results;
  //   vm       VmExecutor over the persona dataplane (the bytecode tier
  //            runs the chain through its vfwd kernel), observable + TM
  //            counter equality against the interpreted persona.
  // Divergence messages attribute the failure to a *vdev name* (which link
  // of the chain), not just a packet index. A link outside the persona
  // subset skips the whole case (persona_skip_reason names the link).
  DiffReport run_chain(const ChainCase& c) const;

 private:
  DiffOptions opts_;
};

// Which vdev a persona-vs-vm TM-counter divergence happened in: the hop
// where the two executions stopped agreeing is the smaller recirculation
// count (each inter-link hop is one recirculation), clamped to the chain.
// Exposed for direct testing; run_chain uses it to name the vdev in
// "tm_counters" divergences.
std::string tm_divergence_vdev(const std::vector<std::string>& link_names,
                               std::uint64_t lhs_recirculations,
                               std::uint64_t rhs_recirculations);

}  // namespace hyper4::check
