#include "check/repro.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "hp4/p4_emit.h"
#include "p4/frontend.h"
#include "util/error.h"
#include "util/strings.h"

namespace hyper4::check {

namespace fs = std::filesystem;

namespace {

std::string hex_bytes(const net::Packet& p) {
  static const char* d = "0123456789abcdef";
  std::string s;
  s.reserve(2 * p.size());
  for (std::uint8_t b : p.bytes()) {
    s.push_back(d[b >> 4]);
    s.push_back(d[b & 0xf]);
  }
  return s;
}

net::Packet packet_from_hex(const std::string& s, std::size_t line_no) {
  if (s.size() % 2 != 0)
    throw util::ParseError("repro line " + std::to_string(line_no) +
                           ": odd-length packet hex");
  auto nib = [&](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw util::ParseError("repro line " + std::to_string(line_no) +
                           ": bad hex digit '" + std::string(1, c) + "'");
  };
  std::vector<std::uint8_t> bytes;
  bytes.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2)
    bytes.push_back(static_cast<std::uint8_t>(nib(s[i]) * 16 + nib(s[i + 1])));
  return net::Packet(std::move(bytes));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::ConfigError("check: cannot read '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

std::string repro_commands_text(const GenCase& c) {
  std::ostringstream os;
  os << "# hyper4_check repro for program '" << c.program.name << "'\n";
  os << "seed " << c.seed << "\n";
  os << "ports " << c.ports << "\n";
  os << "stateful " << (c.stateful ? 1 : 0) << "\n";
  for (const auto& r : c.rules) {
    os << "rule " << r.table << " " << r.action << " |";
    for (const auto& k : r.keys) os << " " << k;
    os << " |";
    for (const auto& a : r.args) os << " " << a;
    os << " | " << r.priority << "\n";
  }
  for (const auto& p : c.packets)
    os << "packet " << p.port << " " << hex_bytes(p.packet) << "\n";
  return os.str();
}

GenCase parse_repro(const std::string& p4_source, const std::string& commands,
                    const std::string& name) {
  GenCase c;
  c.program = p4::parse_p4(p4_source, name);

  std::size_t line_no = 0;
  std::istringstream in(commands);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    line = util::trim(line);
    if (line.empty() || line[0] == '#') continue;
    const auto tok = util::split(line);
    auto need = [&](bool cond, const std::string& what) {
      if (!cond)
        throw util::ParseError("repro line " + std::to_string(line_no) +
                               ": " + what);
    };
    if (tok[0] == "seed") {
      need(tok.size() == 2, "seed expects one value");
      c.seed = util::parse_uint(tok[1]);
    } else if (tok[0] == "ports") {
      need(tok.size() == 2, "ports expects one value");
      c.ports = util::parse_uint(tok[1]);
      need(c.ports >= 1, "ports must be >= 1");
    } else if (tok[0] == "stateful") {
      need(tok.size() == 2, "stateful expects 0 or 1");
      c.stateful = util::parse_uint(tok[1]) != 0;
    } else if (tok[0] == "rule") {
      // rule <table> <action> | keys... | args... | prio
      need(tok.size() >= 3, "rule expects a table and an action");
      GenRule r;
      r.table = tok[1];
      r.action = tok[2];
      std::size_t section = 0;  // 0 before first '|', then keys/args/prio
      std::int64_t prio = -1;
      bool saw_prio = false;
      for (std::size_t i = 3; i < tok.size(); ++i) {
        if (tok[i] == "|") {
          ++section;
          continue;
        }
        switch (section) {
          case 1:
            r.keys.push_back(tok[i]);
            break;
          case 2:
            r.args.push_back(tok[i]);
            break;
          case 3:
            need(!saw_prio, "rule has more than one priority token");
            prio = static_cast<std::int64_t>(
                tok[i][0] == '-' ? -static_cast<std::int64_t>(
                                       util::parse_uint(tok[i].substr(1)))
                                 : static_cast<std::int64_t>(
                                       util::parse_uint(tok[i])));
            saw_prio = true;
            break;
          default:
            need(false, "tokens before the first '|' separator");
        }
      }
      need(section == 3 && saw_prio, "rule needs '| keys | args | prio'");
      r.priority = static_cast<std::int32_t>(prio);
      // Cross-check against the parsed program so a stale repro fails with
      // a structured error instead of deep inside a backend.
      if (!c.program.has_table(r.table))
        throw util::CommandError("repro line " + std::to_string(line_no) +
                                 ": unknown table '" + r.table + "'");
      if (!c.program.has_action(r.action))
        throw util::CommandError("repro line " + std::to_string(line_no) +
                                 ": unknown action '" + r.action + "'");
      c.rules.push_back(std::move(r));
    } else if (tok[0] == "packet") {
      need(tok.size() == 3, "packet expects '<port> <hex>'");
      GenPacket p;
      p.port = static_cast<std::uint16_t>(util::parse_uint(tok[1]));
      p.packet = packet_from_hex(tok[2], line_no);
      c.packets.push_back(std::move(p));
    } else {
      throw util::ParseError("repro line " + std::to_string(line_no) +
                             ": unknown directive '" + tok[0] + "'");
    }
  }
  return c;
}

void write_repro(const GenCase& c, const std::string& p4_path,
                 const std::string& cmds_path) {
  {
    std::ofstream out(p4_path, std::ios::binary);
    if (!out) throw util::ConfigError("check: cannot write '" + p4_path + "'");
    out << hp4::emit_p4(c.program);
  }
  {
    std::ofstream out(cmds_path, std::ios::binary);
    if (!out)
      throw util::ConfigError("check: cannot write '" + cmds_path + "'");
    out << repro_commands_text(c);
  }
}

GenCase load_repro(const std::string& p4_path, const std::string& cmds_path) {
  return parse_repro(read_file(p4_path), read_file(cmds_path), p4_path);
}

// --- chained repros ---------------------------------------------------------

std::string chain_repro_commands_text(const ChainCase& c) {
  std::ostringstream os;
  os << "# hyper4_check chain repro (" << c.links.size() << " links)\n";
  os << "chain " << c.links.size() << "\n";
  os << "seed " << c.seed << "\n";
  os << "ports " << c.ports << "\n";
  for (std::size_t i = 0; i < c.links.size(); ++i)
    os << "link " << i << " " << c.links[i].name << " link" << i << ".p4\n";
  for (std::size_t i = 0; i < c.links.size(); ++i) {
    for (const auto& r : c.links[i].rules) {
      os << "crule " << i << " " << r.table << " " << r.action << " |";
      for (const auto& k : r.keys) os << " " << k;
      os << " |";
      for (const auto& a : r.args) os << " " << a;
      os << " | " << r.priority << "\n";
    }
  }
  for (const auto& p : c.packets)
    os << "packet " << p.port << " " << hex_bytes(p.packet) << "\n";
  return os.str();
}

std::string write_chain_repro(const ChainCase& c, const std::string& base) {
  for (std::size_t i = 0; i < c.links.size(); ++i) {
    const std::string path = base + ".link" + std::to_string(i) + ".p4";
    std::ofstream out(path, std::ios::binary);
    if (!out) throw util::ConfigError("check: cannot write '" + path + "'");
    out << hp4::emit_p4(c.links[i].program);
  }
  const std::string cmds_path = base + ".cmds";
  std::ofstream out(cmds_path, std::ios::binary);
  if (!out)
    throw util::ConfigError("check: cannot write '" + cmds_path + "'");
  // The commands file references link p4 files by basename; rewrite them to
  // carry the base's filename stem so several repros can share a directory.
  std::string body = chain_repro_commands_text(c);
  const std::string stem = fs::path(base).filename().string();
  std::string fixed;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    const auto tok = util::split(line);
    if (tok.size() == 4 && tok[0] == "link")
      line = "link " + tok[1] + " " + tok[2] + " " + stem + ".link" + tok[1] +
             ".p4";
    fixed += line;
    fixed += "\n";
  }
  out << fixed;
  return cmds_path;
}

ChainCase load_chain_repro(const std::string& cmds_path) {
  const std::string commands = read_file(cmds_path);
  const fs::path dir = fs::path(cmds_path).parent_path();

  ChainCase c;
  std::size_t declared = 0;
  std::size_t line_no = 0;
  std::istringstream in(commands);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    line = util::trim(line);
    if (line.empty() || line[0] == '#') continue;
    const auto tok = util::split(line);
    auto need = [&](bool cond, const std::string& what) {
      if (!cond)
        throw util::ParseError("chain repro line " + std::to_string(line_no) +
                               ": " + what);
    };
    if (tok[0] == "chain") {
      need(tok.size() == 2, "chain expects a depth");
      declared = util::parse_uint(tok[1]);
      need(declared >= 1, "chain depth must be >= 1");
    } else if (tok[0] == "seed") {
      need(tok.size() == 2, "seed expects one value");
      c.seed = util::parse_uint(tok[1]);
    } else if (tok[0] == "ports") {
      need(tok.size() == 2, "ports expects one value");
      c.ports = util::parse_uint(tok[1]);
      need(c.ports >= 1, "ports must be >= 1");
    } else if (tok[0] == "link") {
      need(tok.size() == 4, "link expects '<index> <name> <p4-file>'");
      const std::size_t idx = util::parse_uint(tok[1]);
      need(idx == c.links.size(),
           "link indices must be dense and in order (got " + tok[1] +
               ", expected " + std::to_string(c.links.size()) + ")");
      ChainLink l;
      l.name = tok[2];
      const fs::path p4_path =
          fs::path(tok[3]).is_absolute() ? fs::path(tok[3]) : dir / tok[3];
      l.program = p4::parse_p4(read_file(p4_path.string()), l.name);
      c.links.push_back(std::move(l));
    } else if (tok[0] == "crule") {
      need(tok.size() >= 4, "crule expects a link index, table and action");
      const std::size_t idx = util::parse_uint(tok[1]);
      need(idx < c.links.size(), "crule link index out of range");
      GenRule r;
      r.table = tok[2];
      r.action = tok[3];
      std::size_t section = 0;
      std::int64_t prio = -1;
      bool saw_prio = false;
      for (std::size_t i = 4; i < tok.size(); ++i) {
        if (tok[i] == "|") {
          ++section;
          continue;
        }
        switch (section) {
          case 1:
            r.keys.push_back(tok[i]);
            break;
          case 2:
            r.args.push_back(tok[i]);
            break;
          case 3:
            need(!saw_prio, "crule has more than one priority token");
            prio = static_cast<std::int64_t>(
                tok[i][0] == '-' ? -static_cast<std::int64_t>(
                                       util::parse_uint(tok[i].substr(1)))
                                 : static_cast<std::int64_t>(
                                       util::parse_uint(tok[i])));
            saw_prio = true;
            break;
          default:
            need(false, "tokens before the first '|' separator");
        }
      }
      need(section == 3 && saw_prio, "crule needs '| keys | args | prio'");
      r.priority = static_cast<std::int32_t>(prio);
      if (!c.links[idx].program.has_table(r.table))
        throw util::CommandError("chain repro line " +
                                 std::to_string(line_no) +
                                 ": unknown table '" + r.table + "' in link " +
                                 std::to_string(idx));
      if (!c.links[idx].program.has_action(r.action))
        throw util::CommandError(
            "chain repro line " + std::to_string(line_no) +
            ": unknown action '" + r.action + "' in link " +
            std::to_string(idx));
      c.links[idx].rules.push_back(std::move(r));
    } else if (tok[0] == "packet") {
      need(tok.size() == 3, "packet expects '<port> <hex>'");
      GenPacket p;
      p.port = static_cast<std::uint16_t>(util::parse_uint(tok[1]));
      p.packet = packet_from_hex(tok[2], line_no);
      c.packets.push_back(std::move(p));
    } else {
      throw util::ParseError("chain repro line " + std::to_string(line_no) +
                             ": unknown directive '" + tok[0] + "'");
    }
  }
  if (c.links.empty())
    throw util::ParseError("chain repro '" + cmds_path +
                           "' declares no links");
  if (declared != c.links.size())
    throw util::ParseError(
        "chain repro '" + cmds_path + "' declares depth " +
        std::to_string(declared) + " but lists " +
        std::to_string(c.links.size()) + " links");
  return c;
}

std::string replay_file_hint(const std::string& path) {
  try {
    const fs::path p(path);
    if (fs::exists(p)) {
      if (fs::is_directory(p))
        return "'" + path + "' is a directory, not a repro file";
      return "'" + path + "' exists but could not be parsed as a repro";
    }
    fs::path dir = p.parent_path();
    if (dir.empty()) dir = ".";
    std::string msg = "'" + path + "' does not exist";
    if (!fs::is_directory(dir)) {
      msg += " (nor does directory '" + dir.string() + "')";
      return msg;
    }
    std::vector<std::string> siblings;
    for (const auto& e : fs::directory_iterator(dir))
      if (e.is_regular_file())
        siblings.push_back(e.path().filename().string());
    msg += util::did_you_mean(p.filename().string(), siblings);
    return msg;
  } catch (const std::exception& e) {
    return "'" + path + "' could not be inspected: " + e.what();
  }
}

}  // namespace hyper4::check
