#include "check/trace_diff.h"

#include <algorithm>
#include <sstream>

namespace hyper4::check {

namespace {

std::string hexb(std::uint8_t b) {
  static const char* d = "0123456789abcdef";
  return std::string{'0', 'x', d[b >> 4], d[b & 0xf]};
}

std::optional<Divergence> counter_diff(const char* kind, std::size_t a,
                                       std::size_t b, std::size_t idx) {
  if (a == b) return std::nullopt;
  Divergence d;
  d.packet_index = idx;
  d.kind = kind;
  d.detail = std::to_string(a) + " vs " + std::to_string(b);
  return d;
}

}  // namespace

std::string Divergence::str() const {
  std::ostringstream os;
  os << lhs << " vs " << rhs << ": " << kind;
  if (packet_index != kNoPacket) os << " at packet #" << packet_index;
  if (!detail.empty()) os << " — " << detail;
  return os.str();
}

std::string describe_packet_diff(const net::Packet& a, const net::Packet& b) {
  std::ostringstream os;
  os << "len " << a.size() << " vs " << b.size();
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.bytes()[i] != b.bytes()[i]) {
      os << ", first difference at byte " << i << ": " << hexb(a.bytes()[i])
         << " vs " << hexb(b.bytes()[i]);
      return os.str();
    }
  }
  if (a.size() != b.size())
    os << ", equal up to the shorter length";
  return os.str();
}

std::optional<Divergence> diff_results(const bm::ProcessResult& a,
                                       const bm::ProcessResult& b,
                                       std::size_t packet_index) {
  auto make = [&](const char* kind, std::string detail) {
    Divergence d;
    d.packet_index = packet_index;
    d.kind = kind;
    d.detail = std::move(detail);
    return d;
  };

  if (a.outputs.size() != b.outputs.size())
    return make("output_count", std::to_string(a.outputs.size()) + " vs " +
                                    std::to_string(b.outputs.size()));
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    if (a.outputs[i].port != b.outputs[i].port)
      return make("output_port",
                  "output " + std::to_string(i) + ": port " +
                      std::to_string(a.outputs[i].port) + " vs " +
                      std::to_string(b.outputs[i].port));
    if (!(a.outputs[i].packet == b.outputs[i].packet))
      return make("output_bytes",
                  "output " + std::to_string(i) + " on port " +
                      std::to_string(a.outputs[i].port) + ": " +
                      describe_packet_diff(a.outputs[i].packet,
                                           b.outputs[i].packet));
  }

  if (a.applied.size() != b.applied.size())
    return make("applied_count", std::to_string(a.applied.size()) + " vs " +
                                     std::to_string(b.applied.size()));
  for (std::size_t i = 0; i < a.applied.size(); ++i) {
    if (!(a.applied[i] == b.applied[i])) {
      const auto& x = a.applied[i];
      const auto& y = b.applied[i];
      return make("applied_tables",
                  "application " + std::to_string(i) + ": " + x.table +
                      (x.hit ? "/hit#" + std::to_string(x.entry_handle)
                             : "/miss") +
                      " vs " + y.table +
                      (y.hit ? "/hit#" + std::to_string(y.entry_handle)
                             : "/miss"));
    }
  }

  if (auto d = counter_diff("drops", a.drops, b.drops, packet_index)) return d;
  if (auto d = counter_diff("resubmits", a.resubmits, b.resubmits,
                            packet_index))
    return d;
  if (auto d = counter_diff("recirculations", a.recirculations,
                            b.recirculations, packet_index))
    return d;
  if (auto d = counter_diff("clones_i2e", a.clones_i2e, b.clones_i2e,
                            packet_index))
    return d;
  if (auto d = counter_diff("clones_e2e", a.clones_e2e, b.clones_e2e,
                            packet_index))
    return d;
  if (auto d = counter_diff("multicast_copies", a.multicast_copies,
                            b.multicast_copies, packet_index))
    return d;
  if (auto d = counter_diff("parse_errors", a.parse_errors, b.parse_errors,
                            packet_index))
    return d;
  if (auto d = counter_diff("loop_kills", a.loop_kills, b.loop_kills,
                            packet_index))
    return d;

  if (!(a.digests == b.digests))
    return make("digests", std::to_string(a.digests.size()) + " vs " +
                               std::to_string(b.digests.size()) + " messages");
  return std::nullopt;
}

std::optional<Divergence> diff_observable(const bm::ProcessResult& a,
                                          const bm::ProcessResult& b,
                                          std::size_t packet_index) {
  auto canon = [](const bm::ProcessResult& r) {
    std::vector<std::pair<std::uint16_t, std::string>> out;
    out.reserve(r.outputs.size());
    for (const auto& o : r.outputs) out.emplace_back(o.port, o.packet.to_hex());
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto ca = canon(a);
  const auto cb = canon(b);
  if (ca == cb) return std::nullopt;

  Divergence d;
  d.packet_index = packet_index;
  if (ca.size() != cb.size()) {
    d.kind = "output_count";
    d.detail = std::to_string(ca.size()) + " vs " + std::to_string(cb.size());
    return d;
  }
  for (std::size_t i = 0; i < ca.size(); ++i) {
    if (ca[i].first != cb[i].first) {
      d.kind = "output_port";
      d.detail = "port " + std::to_string(ca[i].first) + " vs " +
                 std::to_string(cb[i].first);
      return d;
    }
    if (ca[i].second != cb[i].second) {
      d.kind = "output_bytes";
      d.detail = "port " + std::to_string(ca[i].first) + ": " +
                 describe_packet_diff(a.outputs[i].packet, b.outputs[i].packet);
      return d;
    }
  }
  d.kind = "outputs";
  d.detail = "egress sets differ";
  return d;
}

}  // namespace hyper4::check
