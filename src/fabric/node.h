// One fabric member: a thread that owns an engine-backed switch replica
// plus its durable store, consuming an MPSC inbox of packets and
// replicated journal records (DESIGN.md "Fabric").
//
// A node never talks to its peers directly — every outward effect (acks,
// resend requests, host deliveries, link forwards) goes through a
// NodeCallbacks, so the same FabricNode runs in-process under a
// FabricController or behind a unix socket in a separate process
// (serve_node in fabric.h) without knowing which.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/metrics.h"
#include "engine/ring.h"
#include "hp4/persona.h"
#include "net/packet.h"
#include "state/store.h"

namespace hyper4::engine {
class TrafficEngine;
}

namespace hyper4::fabric {

struct PacketMsg {
  std::uint64_t seq = 0;   // fabric-wide injection sequence (controller's)
  std::uint16_t port = 0;  // ingress port on the receiving node
  std::uint32_t hops = 0;  // nodes traversed so far (loop guard)
  net::Packet packet;
};

struct Msg {
  enum class Kind : std::uint8_t { kStop = 0, kPacket = 1, kApply = 2 };
  Kind kind = Kind::kStop;
  PacketMsg pkt;          // kPacket
  state::Record rec;      // kApply
  std::uint64_t epoch = 0;
};

// SpscRing with the producer side serialized by a mutex — the node inbox:
// many senders (controller thread, peer engine workers), one consumer (the
// node thread). Same backpressure contract as the engine's shard rings.
template <typename T>
class MpscChannel {
 public:
  explicit MpscChannel(std::size_t capacity) : ring_(capacity) {}

  // Blocking; false once closed (item dropped).
  bool push(T&& v) {
    std::lock_guard<std::mutex> lk(mu_);
    return ring_.push(&v, 1);
  }
  // False only when closed AND drained.
  bool pop_batch(std::vector<T>& out, std::size_t max) {
    return ring_.pop_batch(out, max);
  }
  void close() { ring_.close(); }
  bool closed() const { return ring_.closed(); }

 private:
  std::mutex mu_;
  engine::SpscRing<T> ring_;
};

// How this node's ports are wired (shipped by the controller as kConfig on
// the socket transport, set directly in-process).
struct NodeWiring {
  struct LinkOut {
    std::uint32_t dst_node = 0;
    std::uint16_t dst_port = 0;
  };
  std::map<std::uint16_t, LinkOut> links;  // local port → peer
  std::map<std::uint16_t, std::string> hosts;  // local port → host name
};

class NodeCallbacks {
 public:
  virtual ~NodeCallbacks() = default;
  // Replication: record applied & journaled; `digest` is the post-apply
  // state digest (what quorum accounting compares across replicas).
  virtual void on_ack(std::uint32_t node, std::uint64_t lsn,
                      std::uint64_t digest) = 0;
  // Replication gap: this node's journal ends at from_lsn; reship the tail.
  virtual void on_resend(std::uint32_t node, std::uint64_t from_lsn) = 0;
  // A packet reached a host-facing port.
  virtual void on_deliver(std::uint32_t node, std::uint16_t port,
                          const std::string& host, PacketMsg&& pkt) = 0;
  // A packet left on a trunk port; route it to dst_node's inbox. May be
  // called from engine worker threads (engine mode) — must be thread-safe
  // and should avoid blocking on slow peers where possible.
  virtual void forward(std::uint32_t src_node, std::uint32_t dst_node,
                       PacketMsg&& pkt) = 0;
  // `packets` traversals finished at this node (inflight accounting; a
  // forwarded packet finishes at its last node).
  virtual void on_done(std::uint32_t node, std::uint32_t packets) = 0;
};

struct NodeOptions {
  std::string store_dir;
  hp4::PersonaConfig persona{};
  state::StoreOptions store{};
  // 0 = direct mode: the node thread itself runs Switch::inject for each
  // packet. N>0 = engine mode: packets go through a TrafficEngine with N
  // flow-sharded workers and outputs are routed from the egress hook.
  std::size_t engine_workers = 0;
  bool pin_workers = false;
  std::size_t inbox_capacity = 4096;
  std::size_t batch = 64;
  std::uint32_t max_hops = 64;  // fabric-level traversal guard
};

// Construction recovers the store (checkpoint + journal tail — the PR 5
// single-node path), which is exactly how a killed follower re-joins: the
// controller reads last_lsn() from the hello and ships the journal tail
// from there.
class FabricNode {
 public:
  FabricNode(std::uint32_t id, NodeOptions opts, NodeCallbacks* cb);
  ~FabricNode();

  FabricNode(const FabricNode&) = delete;
  FabricNode& operator=(const FabricNode&) = delete;

  std::uint32_t id() const { return id_; }

  // Safe while stopped or between waves; the node thread reads the wiring
  // through an atomic snapshot, so a swap lands between packets.
  void set_wiring(NodeWiring wiring);

  void start();
  // Close the inbox, drain it, join the thread. Idempotent.
  void stop();
  // Crash simulation: stop consuming NOW and drop the inbox backlog (stop()
  // drains it first, which a SIGKILLed process would not).
  void halt();

  // Blocking enqueue; false when the node is stopped.
  bool post(Msg&& m);

  std::uint64_t last_lsn() const { return store_->last_lsn(); }
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  // Quiescent state digest (takes the dataplane lock; call between waves).
  std::uint64_t digest();

  state::DurableController& store() { return *store_; }
  engine::MetricsRegistry& metrics() { return metrics_; }
  std::map<std::string, std::uint64_t> counters();
  // {"node":id,"lsn":..,"digest":"0x..","epoch":..,"metrics":{...}}
  std::string status_json();

  // Synchronous single-packet traversal for sim::Network delegation: runs
  // on the caller's thread under the dataplane lock, bypassing the inbox
  // and the engine (deliveries/forwards are the caller's to route).
  bm::ProcessResult process_sync(std::uint16_t port, const net::Packet& p);

 private:
  void run();
  void handle_apply(const Msg& m);
  void handle_packet(PacketMsg&& pkt);
  // Route one traversal's outputs: host ports deliver, trunk ports forward
  // (hop-limited), unwired ports drop. Thread-safe (engine egress hook).
  void route(std::uint64_t seq, std::uint32_t hops,
             const bm::ProcessResult& r);

  const std::uint32_t id_;
  const NodeOptions opts_;
  NodeCallbacks* const cb_;

  // dp_mu_ serializes every dataplane / store touch: the node thread
  // (applies + direct-mode packets), process_sync callers, and
  // digest()/status readers. Engine-mode packet processing happens on the
  // engine's own workers under its replica locks instead.
  std::mutex dp_mu_;
  std::unique_ptr<state::DurableController> store_;
  std::unique_ptr<engine::TrafficEngine> engine_;

  std::shared_ptr<const NodeWiring> wiring_;
  std::mutex wiring_mu_;  // guards the shared_ptr swap (readers copy it)

  // Engine mode: fabric metadata for in-flight engine packets, keyed by
  // engine injection seq. The node thread (sole injector) pre-assigns the
  // seq and inserts the entry *before* inject, so the egress hook always
  // finds it.
  struct Pending {
    std::uint64_t seq = 0;
    std::uint32_t hops = 0;
  };
  std::mutex pending_mu_;
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t engine_next_seq_ = 0;

  MpscChannel<Msg> inbox_;
  std::thread th_;
  bool started_ = false;
  std::atomic<bool> halt_{false};
  std::atomic<std::uint64_t> epoch_{0};

  engine::MetricsRegistry metrics_;
  engine::Counter* m_packets_;
  engine::Counter* m_outputs_;
  engine::Counter* m_deliveries_;
  engine::Counter* m_forwards_;
  engine::Counter* m_drops_unwired_;
  engine::Counter* m_loop_kills_;
  engine::Counter* m_applied_;
  engine::Counter* m_duplicates_;
  engine::Counter* m_gaps_;
  engine::Counter* m_acks_;
};

}  // namespace hyper4::fabric
