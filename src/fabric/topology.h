// Fabric topologies: which node each host hangs off and which trunk ports
// wire nodes to each other (DESIGN.md "Fabric").
//
// Port conventions: host-facing ports are low (1, 2, ...) so the demo rule
// sets (bench/common.h) forward locally unchanged; inter-node trunk ports
// start at kTrunkBase and never collide with them. Every node in a fabric
// replicates the same control state, so a rule targeting a trunk port
// moves a packet one hop in the same direction on every node — which is
// exactly how a line stretches an L2 program across N switches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hyper4::fabric {

inline constexpr std::uint16_t kTrunkBase = 100;

struct FabricTopology {
  struct Wire {
    std::size_t a = 0;
    std::uint16_t a_port = 0;
    std::size_t b = 0;
    std::uint16_t b_port = 0;
  };
  struct Host {
    std::string name;
    std::size_t node = 0;
    std::uint16_t port = 0;
  };

  std::string preset = "custom";
  std::size_t nodes = 0;
  std::vector<Wire> wires;
  std::vector<Host> hosts;

  // line(n): node i's trunk port kTrunkBase faces node i-1, kTrunkBase+1
  // faces node i+1. Hosts h<i>a / h<i>b on ports 1 / 2 of every node.
  static FabricTopology line(std::size_t n);

  // tree(fanout, n): complete fanout-ary tree truncated to n nodes, BFS
  // numbering (root 0, parent(i) = (i-1)/fanout). A child's uplink is
  // kTrunkBase; the parent faces child slot s on kTrunkBase+1+s. Hosts
  // h<i>a / h<i>b on ports 1 / 2 of every node.
  static FabricTopology tree(std::size_t fanout, std::size_t n);

  // fat_tree(k): the k-pod fat tree (k even): (k/2)^2 core switches, k
  // pods of k/2 aggregation + k/2 edge switches, k/2 hosts per edge
  // switch (h<pod>_<edge>_<m> on ports 1..k/2). Edge j reaches pod agg i
  // on port kTrunkBase+i; agg i reaches core i*(k/2)+c on port
  // kTrunkBase+k/2+c; core n faces pod p on port kTrunkBase+p.
  static FabricTopology fat_tree(std::size_t k);

  // "line" | "tree" | "fat-tree" with a target node count (tree uses
  // fanout 2; fat-tree picks the smallest even k whose fabric has at
  // least `nodes` switches). Throws ConfigError on an unknown preset.
  static FabricTopology by_name(const std::string& preset, std::size_t nodes);

  // Human-readable listing (the `hyper4_fabric topology` output).
  std::string describe() const;
};

}  // namespace hyper4::fabric
