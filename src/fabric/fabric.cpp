#include "fabric/fabric.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>

#include "abi/wire.h"
#include "state/digest.h"
#include "util/error.h"

namespace hyper4::fabric {

using util::ConfigError;
using util::Error;
using util::ParseError;

namespace {

net::Packet to_packet(const std::string& s) {
  return net::Packet(std::vector<std::uint8_t>(s.begin(), s.end()));
}

std::string packet_bytes(const net::Packet& p) {
  const auto b = p.bytes();
  return std::string(b.begin(), b.end());
}

std::string node_dir(const std::string& root, std::size_t id) {
  return root + "/node" + std::to_string(id);
}

// Shear `n` bytes off the newest journal segment — a torn final record,
// like a kill mid-append (crash_node's tear_journal_tail).
void tear_journal(const std::string& dir, std::size_t n = 3) {
  const auto segs = state::Journal::segment_files(dir);
  if (segs.empty()) return;
  struct stat st{};
  if (::stat(segs.back().c_str(), &st) != 0) return;
  if (static_cast<std::size_t>(st.st_size) <= n) return;
  if (::truncate(segs.back().c_str(),
                 st.st_size - static_cast<off_t>(n)) != 0) {
    throw ConfigError("fabric: could not tear journal tail of " + segs.back());
  }
}

}  // namespace

FabricController::FabricController(FabricOptions opts)
    : opts_(std::move(opts)) {
  std::signal(SIGPIPE, SIG_IGN);
  const FabricTopology& topo = opts_.topology;
  if (topo.nodes == 0) throw ConfigError("fabric: topology has no nodes");
  quorum_ = opts_.quorum == 0 ? topo.nodes : opts_.quorum;
  if (quorum_ > topo.nodes)
    throw ConfigError("fabric: quorum " + std::to_string(quorum_) +
                      " exceeds node count " + std::to_string(topo.nodes));
  if (opts_.store_dir.empty()) throw ConfigError("fabric: store_dir required");

  leader_ = std::make_unique<state::DurableController>(
      opts_.store_dir + "/leader", opts_.node.persona, opts_.leader_store);

  wirings_.resize(topo.nodes);
  for (const auto& w : topo.wires) {
    if (w.a >= topo.nodes || w.b >= topo.nodes)
      throw ConfigError("fabric: wire references node out of range");
    wirings_[w.a].links[w.a_port] = {static_cast<std::uint32_t>(w.b),
                                     w.b_port};
    wirings_[w.b].links[w.b_port] = {static_cast<std::uint32_t>(w.a),
                                     w.a_port};
  }
  for (const auto& h : topo.hosts) {
    if (h.node >= topo.nodes)
      throw ConfigError("fabric: host '" + h.name + "' on unknown node");
    wirings_[h.node].hosts[h.port] = h.name;
    host_index_[h.name] = {h.node, h.port};
    host_by_port_[{h.node, h.port}] = h.name;
  }

  const std::set<std::size_t> remote(opts_.remote_nodes.begin(),
                                     opts_.remote_nodes.end());
  for (std::size_t i = 0; i < topo.nodes; ++i) {
    auto s = std::make_unique<Slot>();
    s->id = i;
    if (!remote.contains(i)) {
      NodeOptions no = opts_.node;
      no.store_dir = node_dir(opts_.store_dir, i);
      s->local = std::make_unique<FabricNode>(static_cast<std::uint32_t>(i),
                                              no, this);
      s->local->set_wiring(wirings_[i]);
      s->local->start();
      s->alive.store(true, std::memory_order_release);
      s->shipped = s->acked = s->local->last_lsn();
      s->last_digest = s->local->digest();
    } else {
      s->alive.store(false, std::memory_order_release);
    }
    slots_.push_back(std::move(s));
  }
  {
    // Catch up nodes whose stores recovered ahead of/behind the leader.
    std::lock_guard<std::mutex> lk(control_mu_);
    ship_all_locked();
  }
  repair_th_ = std::thread([this] { repair_loop(); });
}

FabricController::~FabricController() {
  {
    std::lock_guard<std::mutex> lk(repair_mu_);
    repair_stop_ = true;
  }
  repair_cv_.notify_all();
  if (repair_th_.joinable()) repair_th_.join();
  for (auto& s : slots_) {
    if (s->fd >= 0) {
      Frame bye;
      bye.type = FrameType::kShutdown;
      send_frame(*s, bye);
      ::shutdown(s->fd, SHUT_RDWR);
    }
    if (s->reader.joinable()) s->reader.join();
    if (s->fd >= 0) {
      ::close(s->fd);
      s->fd = -1;
    }
    if (s->local) s->local->stop();
  }
}

// --- replicated control plane ----------------------------------------------

std::uint64_t FabricController::run_replicated(
    const std::function<std::uint64_t()>& op) {
  std::uint64_t result = 0;
  std::uint64_t target = 0;
  {
    std::lock_guard<std::mutex> lk(control_mu_);
    try {
      result = op();
    } catch (...) {
      // A failed op is still journaled (deterministic re-failure on
      // replay); keep the replicas in lockstep before rethrowing.
      if (!leader_->in_txn()) ship_all_locked();
      throw;
    }
    if (leader_->in_txn()) return result;  // buffered until txn_commit
    target = leader_->last_lsn();
    ship_all_locked();
  }
  await_quorum(target);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return result;
}

hp4::VdevId FabricController::load_source(const std::string& name,
                                          const std::string& source,
                                          const std::string& owner,
                                          std::size_t quota) {
  return static_cast<hp4::VdevId>(run_replicated(
      [&] { return leader_->load_source(name, source, owner, quota); }));
}

void FabricController::attach_ports(hp4::VdevId id,
                                    const std::vector<std::uint16_t>& ports) {
  run_replicated([&] {
    leader_->attach_ports(id, ports);
    return 0;
  });
}

void FabricController::bind(hp4::VdevId id, std::optional<std::uint16_t> port) {
  run_replicated([&] {
    leader_->bind(id, port);
    return 0;
  });
}

void FabricController::chain(const std::vector<hp4::VdevId>& devices,
                             const std::vector<std::uint16_t>& ports) {
  run_replicated([&] {
    leader_->chain(devices, ports);
    return 0;
  });
}

std::uint64_t FabricController::add_rule(hp4::VdevId id,
                                         const hp4::VirtualRule& rule,
                                         const std::string& requester) {
  return run_replicated([&] { return leader_->add_rule(id, rule, requester); });
}

void FabricController::delete_rule(hp4::VdevId id, std::uint64_t vhandle,
                                   const std::string& requester) {
  run_replicated([&] {
    leader_->delete_rule(id, vhandle, requester);
    return 0;
  });
}

void FabricController::register_write(const std::string& reg,
                                      std::size_t index,
                                      const util::BitVec& v) {
  run_replicated([&] {
    leader_->register_write(reg, index, v);
    return 0;
  });
}

void FabricController::txn_begin() {
  std::lock_guard<std::mutex> lk(control_mu_);
  leader_->txn_begin();
}

std::uint64_t FabricController::txn_commit() {
  std::uint64_t target;
  {
    std::lock_guard<std::mutex> lk(control_mu_);
    target = leader_->txn_commit();
    ship_all_locked();
  }
  await_quorum(target);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return target;
}

void FabricController::txn_abort() {
  std::lock_guard<std::mutex> lk(control_mu_);
  leader_->txn_abort();
}

void FabricController::ship_tail(Slot& s) {
  if (!s.alive.load(std::memory_order_acquire) ||
      !s.connected.load(std::memory_order_acquire))
    return;
  auto tail = state::Journal::tail_from(leader_->dir(), s.shipped);
  state::Record rec;
  const std::uint64_t e = epoch_.load(std::memory_order_acquire) + 1;
  while (tail.next(&rec)) {
    if (s.local) {
      Msg m;
      m.kind = Msg::Kind::kApply;
      m.rec = rec;
      m.epoch = e;
      if (!s.local->post(std::move(m))) return;  // stopping under us
    } else {
      Frame f;
      f.type = FrameType::kApply;
      f.epoch = e;
      f.record = rec;
      send_frame(s, f);
      if (!s.alive.load(std::memory_order_acquire)) return;
    }
    s.shipped = rec.lsn;
  }
}

void FabricController::ship_all_locked() {
  for (auto& s : slots_) ship_tail(*s);
}

void FabricController::await_quorum(std::uint64_t target_lsn) {
  std::unique_lock<std::mutex> lk(ack_mu_);
  const auto acked = [&] {
    std::size_t n = 0;
    for (const auto& s : slots_) {
      if (s->alive.load(std::memory_order_acquire) &&
          s->connected.load(std::memory_order_acquire) &&
          s->acked >= target_lsn)
        ++n;
    }
    return n;
  };
  if (!ack_cv_.wait_for(lk, std::chrono::milliseconds(opts_.commit_timeout_ms),
                        [&] { return acked() >= quorum_; })) {
    throw ConfigError(
        "fabric: commit of lsn " + std::to_string(target_lsn) +
        " timed out with " + std::to_string(acked()) + "/" +
        std::to_string(quorum_) +
        " replica acks — below quorum the fabric blocks rather than diverge");
  }
  std::uint64_t c = committed_lsn_.load(std::memory_order_relaxed);
  while (target_lsn > c && !committed_lsn_.compare_exchange_weak(
                               c, target_lsn, std::memory_order_acq_rel)) {
  }
}

// --- data plane --------------------------------------------------------------

std::uint64_t FabricController::inject(const std::string& host,
                                       const net::Packet& p) {
  auto it = host_index_.find(host);
  if (it == host_index_.end())
    throw ConfigError("fabric: unknown host '" + host + "'");
  return inject_at(it->second.first, it->second.second, p);
}

std::uint64_t FabricController::inject_at(std::size_t node, std::uint16_t port,
                                          const net::Packet& p) {
  if (node >= slots_.size())
    throw ConfigError("fabric: node " + std::to_string(node) +
                      " out of range");
  {
    std::unique_lock<std::mutex> lk(fly_mu_);
    fly_cv_.wait(lk,
                 [&] { return inflight_total_ < opts_.inflight_watermark; });
  }
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
  route_to(node, PacketMsg{seq, port, 0, p});
  return seq;
}

void FabricController::drain() {
  std::unique_lock<std::mutex> lk(fly_mu_);
  fly_cv_.wait(lk, [&] { return inflight_total_ == 0; });
}

std::vector<FabricDelivery> FabricController::take_deliveries() {
  std::lock_guard<std::mutex> lk(deliver_mu_);
  std::vector<FabricDelivery> out;
  out.swap(deliveries_);
  return out;
}

void FabricController::route_to(std::size_t dst, PacketMsg&& pkt) {
  Slot& s = *slots_.at(dst);
  {
    std::lock_guard<std::mutex> lk(fly_mu_);
    if (!s.alive.load(std::memory_order_acquire)) return;  // dead node: drop
    ++inflight_total_;
    ++s.inflight;
  }
  if (s.local) {
    Msg m;
    m.kind = Msg::Kind::kPacket;
    m.pkt = std::move(pkt);
    if (s.local->post(std::move(m))) return;
    // Node closed between the check and the post: undo the accounting
    // (mark_dead may have zeroed it already).
    bool notify = false;
    {
      std::lock_guard<std::mutex> lk(fly_mu_);
      if (s.inflight > 0) {
        --s.inflight;
        --inflight_total_;
        notify = true;
      }
    }
    if (notify) fly_cv_.notify_all();
  } else {
    Frame f;
    f.type = FrameType::kPacket;
    f.seq = pkt.seq;
    f.dst_node = static_cast<std::uint32_t>(dst);
    f.port = pkt.port;
    f.hops = pkt.hops;
    f.bytes = packet_bytes(pkt.packet);
    send_frame(s, f);
  }
}

// --- membership & fault injection -------------------------------------------

void FabricController::disconnect(std::size_t node) {
  slots_.at(node)->connected.store(false, std::memory_order_release);
  ack_cv_.notify_all();
}

void FabricController::reconnect(std::size_t node) {
  Slot& s = *slots_.at(node);
  if (!s.alive.load(std::memory_order_acquire))
    throw ConfigError("fabric: node " + std::to_string(node) +
                      " is dead; restart it instead");
  s.connected.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lk(control_mu_);
  {
    std::lock_guard<std::mutex> ak(ack_mu_);
    s.shipped = std::min(s.shipped, s.acked);
  }
  ship_tail(s);
}

void FabricController::crash_node(std::size_t node, bool tear_journal_tail) {
  Slot& s = *slots_.at(node);
  if (s.local) {
    s.alive.store(false, std::memory_order_release);
    s.connected.store(false, std::memory_order_release);
    s.local->halt();  // drops the inbox backlog, like a SIGKILL would
    const std::string dir = s.local->store().dir();
    s.local.reset();
    mark_dead(s);
    if (tear_journal_tail) tear_journal(dir);
  } else {
    Frame f;
    f.type = FrameType::kCrash;
    send_frame(s, f);
    mark_dead(s);
    if (s.fd >= 0) ::shutdown(s.fd, SHUT_RDWR);
    if (s.reader.joinable()) s.reader.join();
    if (s.fd >= 0) {
      ::close(s.fd);
      s.fd = -1;
    }
  }
}

void FabricController::restart_node(std::size_t node) {
  Slot& s = *slots_.at(node);
  if (s.local || s.fd >= 0)
    throw ConfigError("fabric: node " + std::to_string(node) +
                      " is still running");
  NodeOptions no = opts_.node;
  no.store_dir = node_dir(opts_.store_dir, node);
  s.local = std::make_unique<FabricNode>(static_cast<std::uint32_t>(node), no,
                                         this);
  s.local->set_wiring(wirings_[node]);
  s.local->start();
  const std::uint64_t lsn = s.local->last_lsn();
  {
    std::lock_guard<std::mutex> ak(ack_mu_);
    s.acked = lsn;
    s.last_digest = s.local->digest();
  }
  s.alive.store(true, std::memory_order_release);
  s.connected.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lk(control_mu_);
  s.shipped = lsn;
  ship_tail(s);
}

void FabricController::attach_remote(std::size_t node, int fd) {
  Slot& s = *slots_.at(node);
  if (s.local)
    throw ConfigError("fabric: node " + std::to_string(node) +
                      " is in-process");
  if (s.reader.joinable()) s.reader.join();  // previous incarnation's reader
  if (s.fd >= 0) {
    ::close(s.fd);
    s.fd = -1;
  }
  std::string payload;
  if (!abi::read_frame(fd, payload))
    throw ConfigError("fabric: remote node hung up before hello");
  const Frame hello = decode(payload);
  if (hello.type != FrameType::kHello || hello.node != node)
    throw ConfigError("fabric: bad hello from remote node " +
                      std::to_string(node));
  Frame cfg;
  cfg.type = FrameType::kConfig;
  for (const auto& [port, l] : wirings_[node].links)
    cfg.links.push_back({port, l.dst_node, l.dst_port});
  for (const auto& [port, h] : wirings_[node].hosts)
    cfg.host_ports.emplace_back(port, h);
  if (!abi::write_frame(fd, encode(cfg)))
    throw ConfigError("fabric: remote node rejected config");
  s.fd = fd;
  {
    std::lock_guard<std::mutex> ak(ack_mu_);
    s.acked = hello.lsn;
    s.last_digest = hello.digest;
  }
  s.alive.store(true, std::memory_order_release);
  s.connected.store(true, std::memory_order_release);
  Slot* sp = &s;
  s.reader = std::thread([this, sp] { remote_reader(*sp); });
  std::lock_guard<std::mutex> lk(control_mu_);
  s.shipped = hello.lsn;
  ship_tail(s);
}

bool FabricController::alive(std::size_t node) const {
  return slots_.at(node)->alive.load(std::memory_order_acquire);
}

void FabricController::mark_dead(Slot& s) {
  s.alive.store(false, std::memory_order_release);
  s.connected.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(fly_mu_);
    inflight_total_ -= s.inflight;
    s.inflight = 0;
  }
  fly_cv_.notify_all();
  ack_cv_.notify_all();
  status_cv_.notify_all();
}

// --- transports --------------------------------------------------------------

void FabricController::send_frame(Slot& s, const Frame& f) {
  if (s.fd < 0) return;
  bool ok = false;
  {
    std::lock_guard<std::mutex> lk(s.write_mu);
    ok = abi::write_frame(s.fd, encode(f));
  }
  if (!ok) mark_dead(s);
}

void FabricController::remote_reader(Slot& s) {
  const int fd = s.fd;
  std::string payload;
  try {
    while (abi::read_frame(fd, payload)) {
      const Frame f = decode(payload);
      switch (f.type) {
        case FrameType::kAck:
          on_ack(f.node, f.lsn, f.digest);
          break;
        case FrameType::kResend:
          on_resend(f.node, f.lsn);
          break;
        case FrameType::kDone:
          on_done(f.node, f.count);
          break;
        case FrameType::kDeliver:
          on_deliver(f.node, f.port, host_name(f.node, f.port),
                     PacketMsg{f.seq, f.port, f.hops, to_packet(f.bytes)});
          break;
        case FrameType::kPacket:
          route_to(f.dst_node,
                   PacketMsg{f.seq, f.port, f.hops, to_packet(f.bytes)});
          break;
        case FrameType::kStatus: {
          {
            std::lock_guard<std::mutex> lk(status_mu_);
            s.status = f;
            s.status_ready = true;
          }
          status_cv_.notify_all();
          break;
        }
        default:
          break;
      }
    }
  } catch (const Error&) {
    // Torn transport frame / garbled body: the stream is unusable.
  }
  mark_dead(s);
}

// --- NodeCallbacks -----------------------------------------------------------

void FabricController::on_ack(std::uint32_t node, std::uint64_t lsn,
                              std::uint64_t digest) {
  Slot& s = *slots_.at(node);
  if (!s.connected.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lk(ack_mu_);
    if (lsn >= s.acked) {
      s.acked = lsn;
      s.last_digest = digest;
    }
  }
  ack_cv_.notify_all();
}

void FabricController::on_resend(std::uint32_t node, std::uint64_t from_lsn) {
  {
    std::lock_guard<std::mutex> lk(repair_mu_);
    repair_queue_.emplace_back(node, from_lsn);
  }
  repair_cv_.notify_one();
}

void FabricController::on_deliver(std::uint32_t node, std::uint16_t port,
                                  const std::string& host, PacketMsg&& pkt) {
  std::lock_guard<std::mutex> lk(deliver_mu_);
  deliveries_.push_back(
      {pkt.seq, node, port, host, std::move(pkt.packet)});
}

void FabricController::forward(std::uint32_t src_node, std::uint32_t dst_node,
                               PacketMsg&& pkt) {
  (void)src_node;
  if (dst_node >= slots_.size()) return;
  route_to(dst_node, std::move(pkt));
}

void FabricController::on_done(std::uint32_t node, std::uint32_t packets) {
  Slot& s = *slots_.at(node);
  {
    std::lock_guard<std::mutex> lk(fly_mu_);
    const std::uint64_t n = std::min<std::uint64_t>(packets, s.inflight);
    s.inflight -= n;
    inflight_total_ -= n;
  }
  fly_cv_.notify_all();
}

void FabricController::repair_loop() {
  for (;;) {
    std::vector<std::pair<std::size_t, std::uint64_t>> q;
    {
      std::unique_lock<std::mutex> lk(repair_mu_);
      repair_cv_.wait(lk,
                      [&] { return repair_stop_ || !repair_queue_.empty(); });
      if (repair_stop_) return;
      q.swap(repair_queue_);
    }
    std::lock_guard<std::mutex> lk(control_mu_);
    for (const auto& [id, from] : q) {
      Slot& s = *slots_.at(id);
      s.shipped = std::min(s.shipped, from);
      ship_tail(s);
    }
  }
}

// --- introspection -----------------------------------------------------------

std::uint64_t FabricController::leader_digest() {
  std::lock_guard<std::mutex> lk(control_mu_);
  return leader_->digest();
}

std::uint64_t FabricController::node_acked_lsn(std::size_t node) const {
  std::lock_guard<std::mutex> lk(ack_mu_);
  return slots_.at(node)->acked;
}

std::uint64_t FabricController::node_acked_digest(std::size_t node) const {
  std::lock_guard<std::mutex> lk(ack_mu_);
  return slots_.at(node)->last_digest;
}

FabricNode& FabricController::node(std::size_t i) {
  Slot& s = *slots_.at(i);
  if (!s.local)
    throw ConfigError("fabric: node " + std::to_string(i) +
                      " is not in-process");
  return *s.local;
}

std::string FabricController::host_name(std::size_t node,
                                        std::uint16_t port) const {
  auto it = host_by_port_.find({node, port});
  return it == host_by_port_.end() ? "?" : it->second;
}

std::string FabricController::status_json() {
  for (auto& s : slots_) {
    if (!s->local && s->alive.load(std::memory_order_acquire)) {
      {
        std::lock_guard<std::mutex> lk(status_mu_);
        s->status_ready = false;
      }
      Frame f;
      f.type = FrameType::kStatusReq;
      send_frame(*s, f);
    }
  }
  std::map<std::string, std::uint64_t> totals;
  std::ostringstream nodes_os;
  bool first = true;
  for (auto& s : slots_) {
    std::string nj;
    if (s->local) {
      nj = s->local->status_json();
      for (const auto& [k, v] : s->local->counters()) totals[k] += v;
    } else if (s->alive.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lk(status_mu_);
      status_cv_.wait_for(lk, std::chrono::seconds(2), [&] {
        return s->status_ready ||
               !s->alive.load(std::memory_order_acquire);
      });
      if (s->status_ready) {
        for (const auto& [k, v] : s->status.counters) totals[k] += v;
        nj = s->status.metrics_json;
      }
    }
    if (nj.empty())
      nj = "{\"node\": " + std::to_string(s->id) + ", \"alive\": false}";
    nodes_os << (first ? "" : ", ") << nj;
    first = false;
  }
  std::uint64_t inflight;
  {
    std::lock_guard<std::mutex> lk(fly_mu_);
    inflight = inflight_total_;
  }
  std::ostringstream os;
  os << "{\"fabric\": {\"nodes\": " << slots_.size()
     << ", \"quorum\": " << quorum_ << ", \"epoch\": " << epoch()
     << ", \"committed_lsn\": " << committed_lsn() << ", \"leader_digest\": \""
     << state::digest_hex(leader_digest()) << "\", \"inflight\": " << inflight
     << "}, \"totals\": {";
  first = true;
  for (const auto& [k, v] : totals) {
    os << (first ? "" : ", ") << "\"" << k << "\": " << v;
    first = false;
  }
  os << "}, \"nodes\": [" << nodes_os.str() << "]}";
  return os.str();
}

// --- follower process side ---------------------------------------------------

namespace {

class SocketCallbacks : public NodeCallbacks {
 public:
  explicit SocketCallbacks(int fd) : fd_(fd) {}

  // Write failures are deliberately ignored here: when the controller goes
  // away the serve loop sees EOF and shuts the node down.
  void send(const Frame& f) {
    std::lock_guard<std::mutex> lk(mu_);
    abi::write_frame(fd_, encode(f));
  }

  void on_ack(std::uint32_t node, std::uint64_t lsn,
              std::uint64_t digest) override {
    Frame f;
    f.type = FrameType::kAck;
    f.node = node;
    f.lsn = lsn;
    f.digest = digest;
    send(f);
  }
  void on_resend(std::uint32_t node, std::uint64_t from_lsn) override {
    Frame f;
    f.type = FrameType::kResend;
    f.node = node;
    f.lsn = from_lsn;
    send(f);
  }
  void on_deliver(std::uint32_t node, std::uint16_t port, const std::string&,
                  PacketMsg&& pkt) override {
    Frame f;
    f.type = FrameType::kDeliver;
    f.node = node;
    f.seq = pkt.seq;
    f.port = port;
    f.hops = pkt.hops;
    f.bytes = packet_bytes(pkt.packet);
    send(f);
  }
  void forward(std::uint32_t src_node, std::uint32_t dst_node,
               PacketMsg&& pkt) override {
    Frame f;
    f.type = FrameType::kPacket;
    f.node = src_node;
    f.seq = pkt.seq;
    f.dst_node = dst_node;
    f.port = pkt.port;
    f.hops = pkt.hops;
    f.bytes = packet_bytes(pkt.packet);
    send(f);
  }
  void on_done(std::uint32_t node, std::uint32_t packets) override {
    Frame f;
    f.type = FrameType::kDone;
    f.node = node;
    f.count = packets;
    send(f);
  }

 private:
  int fd_;
  std::mutex mu_;
};

}  // namespace

void serve_node(int fd, std::uint32_t id, NodeOptions opts) {
  std::signal(SIGPIPE, SIG_IGN);
  SocketCallbacks cb(fd);
  FabricNode node(id, std::move(opts), &cb);
  node.start();
  {
    Frame hello;
    hello.type = FrameType::kHello;
    hello.node = id;
    hello.lsn = node.last_lsn();
    hello.digest = node.digest();
    hello.epoch = node.epoch();
    cb.send(hello);
  }
  std::string payload;
  bool running = true;
  while (running) {
    bool more;
    try {
      more = abi::read_frame(fd, payload);
    } catch (const Error&) {
      break;  // torn transport framing — stream unusable
    }
    if (!more) break;
    Frame f;
    try {
      f = decode(payload);
    } catch (const ParseError&) {
      // Torn/garbled replication record: ask for the tail again instead of
      // applying garbage.
      Frame r;
      r.type = FrameType::kResend;
      r.node = id;
      r.lsn = node.last_lsn();
      cb.send(r);
      continue;
    }
    switch (f.type) {
      case FrameType::kConfig: {
        NodeWiring w;
        for (const auto& l : f.links)
          w.links[l.port] = {l.dst_node, l.dst_port};
        for (const auto& [port, host] : f.host_ports) w.hosts[port] = host;
        node.set_wiring(std::move(w));
        break;
      }
      case FrameType::kApply: {
        Msg m;
        m.kind = Msg::Kind::kApply;
        m.rec = f.record;
        m.epoch = f.epoch;
        node.post(std::move(m));
        break;
      }
      case FrameType::kPacket: {
        Msg m;
        m.kind = Msg::Kind::kPacket;
        m.pkt = PacketMsg{f.seq, f.port, f.hops, to_packet(f.bytes)};
        node.post(std::move(m));
        break;
      }
      case FrameType::kStatusReq: {
        Frame st;
        st.type = FrameType::kStatus;
        st.node = id;
        st.lsn = node.last_lsn();
        st.digest = node.digest();
        st.epoch = node.epoch();
        st.counters = node.counters();
        st.metrics_json = node.status_json();
        cb.send(st);
        break;
      }
      case FrameType::kShutdown:
        running = false;
        break;
      case FrameType::kCrash:
        std::_Exit(9);
      default:
        break;
    }
  }
  node.stop();
}

// --- unix-socket plumbing ----------------------------------------------------

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw ConfigError("fabric: socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

int listen_unix(const std::string& path) {
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error("fabric: socket(): " + std::string(strerror(errno)));
  sockaddr_un addr = make_addr(path);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int e = errno;
    ::close(fd);
    throw Error("fabric: bind(" + path + "): " + std::string(strerror(e)));
  }
  if (::listen(fd, 16) != 0) {
    const int e = errno;
    ::close(fd);
    throw Error("fabric: listen(" + path + "): " + std::string(strerror(e)));
  }
  return fd;
}

int accept_unix(int listen_fd, int timeout_ms) {
  pollfd p{listen_fd, POLLIN, 0};
  const int r = ::poll(&p, 1, timeout_ms);
  if (r == 0) throw Error("fabric: accept timed out");
  if (r < 0) throw Error("fabric: poll(): " + std::string(strerror(errno)));
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) throw Error("fabric: accept(): " + std::string(strerror(errno)));
  return fd;
}

int connect_unix(const std::string& path, int retries, int retry_ms) {
  sockaddr_un addr = make_addr(path);
  for (int i = 0; i < retries; ++i) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
      throw Error("fabric: socket(): " + std::string(strerror(errno)));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return fd;
    ::close(fd);
    ::usleep(static_cast<useconds_t>(retry_ms) * 1000);
  }
  throw Error("fabric: could not connect to " + path);
}

}  // namespace hyper4::fabric
