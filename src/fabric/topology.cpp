#include "fabric/topology.h"

#include <sstream>

#include "util/error.h"

namespace hyper4::fabric {

using util::ConfigError;

namespace {

void host_pair(FabricTopology& t, std::size_t node) {
  const std::string i = std::to_string(node);
  t.hosts.push_back({"h" + i + "a", node, 1});
  t.hosts.push_back({"h" + i + "b", node, 2});
}

}  // namespace

FabricTopology FabricTopology::line(std::size_t n) {
  if (n == 0) throw ConfigError("topology: line needs >= 1 node");
  FabricTopology t;
  t.preset = "line";
  t.nodes = n;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.wires.push_back({i, static_cast<std::uint16_t>(kTrunkBase + 1), i + 1,
                       kTrunkBase});
  }
  for (std::size_t i = 0; i < n; ++i) host_pair(t, i);
  return t;
}

FabricTopology FabricTopology::tree(std::size_t fanout, std::size_t n) {
  if (fanout == 0 || n == 0)
    throw ConfigError("topology: tree needs fanout >= 1 and >= 1 node");
  FabricTopology t;
  t.preset = "tree";
  t.nodes = n;
  for (std::size_t c = 1; c < n; ++c) {
    const std::size_t p = (c - 1) / fanout;
    const std::uint16_t slot = static_cast<std::uint16_t>((c - 1) % fanout);
    t.wires.push_back(
        {p, static_cast<std::uint16_t>(kTrunkBase + 1 + slot), c, kTrunkBase});
  }
  for (std::size_t i = 0; i < n; ++i) host_pair(t, i);
  return t;
}

FabricTopology FabricTopology::fat_tree(std::size_t k) {
  if (k < 2 || k % 2 != 0)
    throw ConfigError("topology: fat-tree needs an even k >= 2");
  const std::size_t half = k / 2;
  FabricTopology t;
  t.preset = "fat-tree";
  // Pod p: edges at p*k + j, aggs at p*k + half + j; cores after the pods.
  const std::size_t core_base = k * k;
  t.nodes = k * k + half * half;
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < half; ++j) {
      const std::size_t edge = p * k + j;
      for (std::size_t i = 0; i < half; ++i) {
        const std::size_t agg = p * k + half + i;
        t.wires.push_back({edge, static_cast<std::uint16_t>(kTrunkBase + i),
                           agg, static_cast<std::uint16_t>(kTrunkBase + j)});
      }
      for (std::size_t m = 0; m < half; ++m) {
        t.hosts.push_back({"h" + std::to_string(p) + "_" + std::to_string(j) +
                               "_" + std::to_string(m),
                           edge, static_cast<std::uint16_t>(1 + m)});
      }
    }
    for (std::size_t i = 0; i < half; ++i) {
      const std::size_t agg = p * k + half + i;
      for (std::size_t c = 0; c < half; ++c) {
        const std::size_t core = core_base + i * half + c;
        t.wires.push_back(
            {agg, static_cast<std::uint16_t>(kTrunkBase + half + c), core,
             static_cast<std::uint16_t>(kTrunkBase + p)});
      }
    }
  }
  return t;
}

FabricTopology FabricTopology::by_name(const std::string& preset,
                                       std::size_t nodes) {
  if (preset == "line") return line(nodes);
  if (preset == "tree") return tree(2, nodes);
  if (preset == "fat-tree") {
    std::size_t k = 2;
    while (k * k + (k / 2) * (k / 2) < nodes) k += 2;
    return fat_tree(k);
  }
  throw ConfigError("topology: unknown preset '" + preset +
                    "' (line | tree | fat-tree)");
}

std::string FabricTopology::describe() const {
  std::ostringstream os;
  os << "preset: " << preset << "\nnodes: " << nodes << "\n";
  for (const auto& w : wires)
    os << "wire: n" << w.a << ":p" << w.a_port << " <-> n" << w.b << ":p"
       << w.b_port << "\n";
  for (const auto& h : hosts)
    os << "host: " << h.name << " @ n" << h.node << ":p" << h.port << "\n";
  return os.str();
}

}  // namespace hyper4::fabric
