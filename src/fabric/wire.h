// The fabric replication/link frame codec. Frames ride the same transports
// everywhere: in-process links pass decoded messages directly, and the
// unix-socket transport carries these bodies inside src/abi length-prefixed
// frames (abi::write_frame / read_frame) — one framing discipline for the
// daemon and the fabric.
//
// The replication channel (kApply / kAck / kResend) ships verbatim
// state::Journal records: a follower's journal stays a byte-equivalent
// replay log of the leader's, which is what makes checkpoint + journal
// tail recovery work unchanged on a fabric member.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "state/journal.h"

namespace hyper4::fabric {

enum class FrameType : std::uint8_t {
  kHello = 1,      // node → ctl: id, last_lsn, digest, epoch (handshake)
  kConfig = 2,     // ctl → node: port wiring (links + host ports)
  kApply = 3,      // ctl → node: epoch + one leader journal record
  kAck = 4,        // node → ctl: id, applied lsn, post-apply digest
  kResend = 5,     // node → ctl: id, from_lsn — gap detected, reship
  kPacket = 6,     // either way: a routed packet (seq, dst node/port, hops)
  kDeliver = 7,    // node → ctl: host delivery
  kDone = 8,       // node → ctl: `count` packets finished at this node
  kStatusReq = 9,  // ctl → node
  kStatus = 10,    // node → ctl: lsn/digest/epoch + counters + metrics JSON
  kShutdown = 11,  // ctl → node: clean exit
  kCrash = 12,     // ctl → node: _exit() immediately (kill test hook)
};

struct Frame {
  FrameType type = FrameType::kHello;

  std::uint32_t node = 0;    // sender id (hello/ack/resend/deliver/status)
  std::uint64_t lsn = 0;     // hello/ack: applied tail; resend: from_lsn
  std::uint64_t digest = 0;  // hello/ack/status
  std::uint64_t epoch = 0;   // hello/apply/status

  state::Record record;  // kApply

  // kConfig
  struct LinkPort {
    std::uint16_t port = 0;
    std::uint32_t dst_node = 0;
    std::uint16_t dst_port = 0;
  };
  std::vector<LinkPort> links;
  std::vector<std::pair<std::uint16_t, std::string>> host_ports;

  // kPacket / kDeliver
  std::uint64_t seq = 0;
  std::uint32_t dst_node = 0;
  std::uint16_t port = 0;
  std::uint32_t hops = 0;
  std::string bytes;

  std::uint32_t count = 0;  // kDone

  // kStatus
  std::map<std::string, std::uint64_t> counters;
  std::string metrics_json;
};

std::string encode(const Frame& f);

// Throws util::ParseError on a truncated or garbled body — a torn final
// record on the replication stream is detected here, and the receiver
// requests a resend instead of applying a partial record.
Frame decode(const std::string& bytes);

}  // namespace hyper4::fabric
