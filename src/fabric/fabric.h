// The replicated multi-switch fabric (DESIGN.md "Fabric").
//
// A FabricController drives N FabricNode replicas with epoch-consistent
// control-plane updates: every management op is journaled on the leader
// store (the PR 5 DurableController), the journal tail is shipped to each
// replica over its replication channel, and the op commits — the call
// returns — only once a configurable quorum of replicas has acked the
// op's LSN. Below quorum, commits BLOCK (and time out with ConfigError);
// they never silently diverge.
//
// A replica that falls behind (gap, torn stream, crash) is repaired by
// reshipping its journal tail from its last acked LSN — recovery of a
// killed follower is literally the single-node path (checkpoint + journal
// tail) followed by a tail catch-up, and digests embedded in the records
// verify the follower byte-for-byte along the way.
//
// Transports: in-process nodes hand messages through their MPSC inboxes
// directly; remote nodes (serve_node, in another process) speak
// fabric::Frame bodies inside src/abi length-prefixed frames over a unix
// stream socket. The controller treats both identically.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fabric/node.h"
#include "fabric/topology.h"
#include "fabric/wire.h"

namespace hyper4::fabric {

struct FabricOptions {
  // Root directory: the leader store lives at <store_dir>/leader, node i's
  // at <store_dir>/node<i>.
  std::string store_dir;
  FabricTopology topology;
  // Replicas that must ack an op's LSN before it commits; 0 = all nodes.
  std::size_t quorum = 0;
  int commit_timeout_ms = 5000;
  // Template for every node (store_dir is overridden per node; persona and
  // store options are shared with the leader so replay is deterministic).
  NodeOptions node;
  state::StoreOptions leader_store{};
  // Node ids served by external processes (attach_remote) instead of being
  // constructed in-process.
  std::vector<std::size_t> remote_nodes;
  // Max packet traversals in flight fabric-wide; inject() blocks at the
  // watermark. Keep it below NodeOptions::inbox_capacity so a node's inbox
  // always has room for control records (see DESIGN.md).
  std::size_t inflight_watermark = 1024;
};

struct FabricDelivery {
  std::uint64_t seq = 0;
  std::uint32_t node = 0;
  std::uint16_t port = 0;
  std::string host;
  net::Packet packet;
};

class FabricController : public NodeCallbacks {
 public:
  explicit FabricController(FabricOptions opts);
  ~FabricController();

  FabricController(const FabricController&) = delete;
  FabricController& operator=(const FabricController&) = delete;

  const FabricTopology& topology() const { return opts_.topology; }
  std::size_t nodes() const { return slots_.size(); }

  // --- replicated control plane -------------------------------------------
  // Each op journals on the leader, ships to every live replica, and
  // returns after quorum ack (ConfigError on timeout — below quorum the
  // fabric refuses to commit). Inside a transaction ops buffer on the
  // leader and ship as ONE kTxn record at txn_commit().
  hp4::VdevId load_source(const std::string& name, const std::string& source,
                          const std::string& owner = "admin",
                          std::size_t quota = 1024);
  void attach_ports(hp4::VdevId id, const std::vector<std::uint16_t>& ports);
  void bind(hp4::VdevId id, std::optional<std::uint16_t> port = std::nullopt);
  void chain(const std::vector<hp4::VdevId>& devices,
             const std::vector<std::uint16_t>& ports);
  std::uint64_t add_rule(hp4::VdevId id, const hp4::VirtualRule& rule,
                         const std::string& requester = "admin");
  void delete_rule(hp4::VdevId id, std::uint64_t vhandle,
                   const std::string& requester = "admin");
  void register_write(const std::string& reg, std::size_t index,
                      const util::BitVec& v);
  void txn_begin();
  std::uint64_t txn_commit();
  void txn_abort();

  // --- data plane ----------------------------------------------------------
  // Inject at a topology host (or a raw node/port). Blocks while the
  // fabric-wide inflight count sits at the watermark. Returns the fabric
  // sequence number.
  std::uint64_t inject(const std::string& host, const net::Packet& p);
  std::uint64_t inject_at(std::size_t node, std::uint16_t port,
                          const net::Packet& p);
  // Wait until every injected packet has finished every traversal.
  void drain();
  std::vector<FabricDelivery> take_deliveries();

  // --- membership & fault injection ---------------------------------------
  // Stop shipping to / ignoring acks from a node (network partition). The
  // node stays up; reconnect() reships its tail.
  void disconnect(std::size_t node);
  void reconnect(std::size_t node);
  // Local node: halt it (drop inbox backlog, like SIGKILL) and destroy it;
  // optionally tear the final bytes off its journal (torn-record crash).
  // Remote node: send kCrash (the server _exit()s) and mark it dead.
  void crash_node(std::size_t node, bool tear_journal_tail = false);
  // Rebuild a crashed local node from its store directory (checkpoint +
  // journal tail recovery) and catch it up from its recovered LSN.
  void restart_node(std::size_t node);
  // Handshake an external serve_node process over a connected socket fd
  // (takes ownership of fd): reads kHello, ships wiring + journal tail.
  void attach_remote(std::size_t node, int fd);
  bool alive(std::size_t node) const;

  // --- introspection -------------------------------------------------------
  std::uint64_t committed_lsn() const {
    return committed_lsn_.load(std::memory_order_acquire);
  }
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  std::uint64_t leader_digest();
  std::uint64_t node_acked_lsn(std::size_t node) const;
  std::uint64_t node_acked_digest(std::size_t node) const;
  state::DurableController& leader() { return *leader_; }
  FabricNode& node(std::size_t i);
  // Fabric-wide JSON: {"fabric": {...}, "totals": {summed counters},
  // "nodes": [per-node status]}. Remote nodes are polled with kStatusReq.
  std::string status_json();

  // --- NodeCallbacks (node threads / remote readers call these) -----------
  void on_ack(std::uint32_t node, std::uint64_t lsn,
              std::uint64_t digest) override;
  void on_resend(std::uint32_t node, std::uint64_t from_lsn) override;
  void on_deliver(std::uint32_t node, std::uint16_t port,
                  const std::string& host, PacketMsg&& pkt) override;
  void forward(std::uint32_t src_node, std::uint32_t dst_node,
               PacketMsg&& pkt) override;
  void on_done(std::uint32_t node, std::uint32_t packets) override;

 private:
  struct Slot {
    std::size_t id = 0;
    std::unique_ptr<FabricNode> local;  // null for remote slots
    int fd = -1;                        // remote transport
    std::thread reader;
    std::mutex write_mu;  // serializes frames onto fd
    std::atomic<bool> alive{false};
    std::atomic<bool> connected{true};
    std::uint64_t shipped = 0;  // last LSN sent (control_mu_)
    std::uint64_t acked = 0;    // last LSN acked (ack_mu_)
    std::uint64_t last_digest = 0;  // digest at `acked` (ack_mu_)
    std::uint64_t inflight = 0;     // traversals pending here (fly_mu_)
    // kStatus reply (status_mu_).
    bool status_ready = false;
    Frame status;
  };

  std::uint64_t run_replicated(const std::function<std::uint64_t()>& op);
  // Ship the leader journal tail past slot.shipped (control_mu_ held).
  void ship_tail(Slot& s);
  void ship_all_locked();
  void await_quorum(std::uint64_t target_lsn);
  void send_frame(Slot& s, const Frame& f);
  void remote_reader(Slot& s);
  // Inflight bookkeeping + hand the packet to a node (local post or remote
  // kPacket frame).
  void route_to(std::size_t dst, PacketMsg&& pkt);
  void mark_dead(Slot& s);
  void repair_loop();
  std::string host_name(std::size_t node, std::uint16_t port) const;

  FabricOptions opts_;
  std::unique_ptr<state::DurableController> leader_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<NodeWiring> wirings_;
  std::map<std::string, std::pair<std::size_t, std::uint16_t>> host_index_;
  std::map<std::pair<std::size_t, std::uint16_t>, std::string> host_by_port_;

  // Leader journal + shipping cursors. NEVER held across a quorum wait.
  std::mutex control_mu_;

  mutable std::mutex ack_mu_;
  std::condition_variable ack_cv_;
  std::atomic<std::uint64_t> committed_lsn_{0};
  std::atomic<std::uint64_t> epoch_{0};

  // Fabric-wide inflight traversal accounting.
  std::mutex fly_mu_;
  std::condition_variable fly_cv_;
  std::uint64_t inflight_total_ = 0;

  std::mutex deliver_mu_;
  std::vector<FabricDelivery> deliveries_;
  std::atomic<std::uint64_t> seq_{0};

  std::mutex status_mu_;
  std::condition_variable status_cv_;

  // Resend repair runs on its own thread so a node thread reporting a gap
  // never ships records into its own (possibly full) inbox.
  std::mutex repair_mu_;
  std::condition_variable repair_cv_;
  std::vector<std::pair<std::size_t, std::uint64_t>> repair_queue_;
  bool repair_stop_ = false;
  std::thread repair_th_;

  std::size_t quorum_ = 0;
};

// --- follower process side -------------------------------------------------
// Serve one FabricNode over a connected stream socket until the peer hangs
// up or sends kShutdown: writes kHello, then dispatches kConfig / kApply /
// kPacket / kStatusReq frames into the node and relays its callbacks back
// as kAck / kResend / kDeliver / kPacket / kDone. A torn frame on the
// replication stream (decode ParseError) answers kResend from the node's
// journal tail instead of applying garbage. kCrash calls _exit(9).
void serve_node(int fd, std::uint32_t id, NodeOptions opts);

// Unix-socket plumbing shared by hyper4_fabric and the tests. listen_unix
// unlinks a stale path first; connect_unix retries while the server binds;
// accept_unix polls with a timeout. All throw util::Error on failure.
int listen_unix(const std::string& path);
int accept_unix(int listen_fd, int timeout_ms = 10000);
int connect_unix(const std::string& path, int retries = 100, int retry_ms = 50);

}  // namespace hyper4::fabric
