#include "fabric/wire.h"

#include "state/wire.h"
#include "util/error.h"

namespace hyper4::fabric {

using state::Reader;
using state::Writer;
using util::ParseError;

std::string encode(const Frame& f) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(f.type));
  switch (f.type) {
    case FrameType::kHello:
      w.u32(f.node);
      w.u64(f.lsn);
      w.u64(f.digest);
      w.u64(f.epoch);
      break;
    case FrameType::kConfig:
      w.u32(static_cast<std::uint32_t>(f.links.size()));
      for (const auto& l : f.links) {
        w.u16(l.port);
        w.u32(l.dst_node);
        w.u16(l.dst_port);
      }
      w.u32(static_cast<std::uint32_t>(f.host_ports.size()));
      for (const auto& [port, host] : f.host_ports) {
        w.u16(port);
        w.str(host);
      }
      break;
    case FrameType::kApply:
      w.u64(f.epoch);
      w.u64(f.record.lsn);
      w.u8(static_cast<std::uint8_t>(f.record.type));
      w.b(f.record.has_digest);
      w.u64(f.record.digest);
      w.str(f.record.body);
      break;
    case FrameType::kAck:
      w.u32(f.node);
      w.u64(f.lsn);
      w.u64(f.digest);
      break;
    case FrameType::kResend:
      w.u32(f.node);
      w.u64(f.lsn);
      break;
    case FrameType::kPacket:
    case FrameType::kDeliver:
      w.u32(f.node);
      w.u64(f.seq);
      w.u32(f.dst_node);
      w.u16(f.port);
      w.u32(f.hops);
      w.str(f.bytes);
      break;
    case FrameType::kDone:
      w.u32(f.node);
      w.u32(f.count);
      break;
    case FrameType::kStatusReq:
    case FrameType::kShutdown:
    case FrameType::kCrash:
      break;
    case FrameType::kStatus:
      w.u32(f.node);
      w.u64(f.lsn);
      w.u64(f.digest);
      w.u64(f.epoch);
      w.u32(static_cast<std::uint32_t>(f.counters.size()));
      for (const auto& [name, v] : f.counters) {
        w.str(name);
        w.u64(v);
      }
      w.str(f.metrics_json);
      break;
  }
  return w.take();
}

Frame decode(const std::string& bytes) {
  Reader r(bytes);
  Frame f;
  const std::uint8_t t = r.u8();
  if (t < 1 || t > static_cast<std::uint8_t>(FrameType::kCrash))
    throw ParseError("fabric frame: unknown type " + std::to_string(t));
  f.type = static_cast<FrameType>(t);
  switch (f.type) {
    case FrameType::kHello:
      f.node = r.u32();
      f.lsn = r.u64();
      f.digest = r.u64();
      f.epoch = r.u64();
      break;
    case FrameType::kConfig: {
      const std::uint32_t nl = r.u32();
      for (std::uint32_t i = 0; i < nl; ++i) {
        Frame::LinkPort l;
        l.port = r.u16();
        l.dst_node = r.u32();
        l.dst_port = r.u16();
        f.links.push_back(l);
      }
      const std::uint32_t nh = r.u32();
      for (std::uint32_t i = 0; i < nh; ++i) {
        const std::uint16_t port = r.u16();
        f.host_ports.emplace_back(port, r.str());
      }
      break;
    }
    case FrameType::kApply: {
      f.epoch = r.u64();
      f.record.lsn = r.u64();
      const std::uint8_t rt = r.u8();
      if (rt < 1 || rt > static_cast<std::uint8_t>(state::RecordType::kFsyncPoint))
        throw ParseError("fabric frame: bad record type " + std::to_string(rt));
      f.record.type = static_cast<state::RecordType>(rt);
      f.record.has_digest = r.b();
      f.record.digest = r.u64();
      f.record.body = r.str();
      break;
    }
    case FrameType::kAck:
      f.node = r.u32();
      f.lsn = r.u64();
      f.digest = r.u64();
      break;
    case FrameType::kResend:
      f.node = r.u32();
      f.lsn = r.u64();
      break;
    case FrameType::kPacket:
    case FrameType::kDeliver:
      f.node = r.u32();
      f.seq = r.u64();
      f.dst_node = r.u32();
      f.port = r.u16();
      f.hops = r.u32();
      f.bytes = r.str();
      break;
    case FrameType::kDone:
      f.node = r.u32();
      f.count = r.u32();
      break;
    case FrameType::kStatusReq:
    case FrameType::kShutdown:
    case FrameType::kCrash:
      break;
    case FrameType::kStatus: {
      f.node = r.u32();
      f.lsn = r.u64();
      f.digest = r.u64();
      f.epoch = r.u64();
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        std::string name = r.str();
        f.counters[name] = r.u64();
      }
      f.metrics_json = r.str();
      break;
    }
  }
  if (!r.done())
    throw ParseError("fabric frame: " + std::to_string(r.remaining()) +
                     " trailing bytes");
  return f;
}

}  // namespace hyper4::fabric
