#include "fabric/node.h"

#include <sstream>
#include <utility>

#include "engine/engine.h"
#include "state/digest.h"
#include "util/error.h"

namespace hyper4::fabric {

using util::ConfigError;

FabricNode::FabricNode(std::uint32_t id, NodeOptions opts, NodeCallbacks* cb)
    : id_(id),
      opts_(std::move(opts)),
      cb_(cb),
      inbox_(opts_.inbox_capacity),
      m_packets_(&metrics_.counter("packets")),
      m_outputs_(&metrics_.counter("outputs")),
      m_deliveries_(&metrics_.counter("deliveries")),
      m_forwards_(&metrics_.counter("forwards")),
      m_drops_unwired_(&metrics_.counter("drops_unwired")),
      m_loop_kills_(&metrics_.counter("loop_kills")),
      m_applied_(&metrics_.counter("applied_records")),
      m_duplicates_(&metrics_.counter("duplicate_records")),
      m_gaps_(&metrics_.counter("gap_events")),
      m_acks_(&metrics_.counter("acks")) {
  if (!cb_) throw ConfigError("fabric node: null callbacks");
  if (opts_.store_dir.empty())
    throw ConfigError("fabric node: store_dir required");
  store_ = std::make_unique<state::DurableController>(
      opts_.store_dir, opts_.persona, opts_.store);
  if (opts_.engine_workers > 0) {
    engine::EngineOptions eo;
    eo.workers = opts_.engine_workers;
    eo.collect_results = false;  // the egress hook is the result path
    eo.pin_workers = opts_.pin_workers;
    engine_ = std::make_unique<engine::TrafficEngine>(
        store_->controller().dataplane().program(), eo);
    store_->controller().attach_engine(engine_.get());
    engine_->set_egress_hook(
        [this](std::uint64_t eseq, const bm::ProcessResult& r) {
          Pending p;
          {
            std::lock_guard<std::mutex> lk(pending_mu_);
            auto it = pending_.find(eseq);
            if (it == pending_.end()) return;  // not a fabric packet
            p = it->second;
            pending_.erase(it);
          }
          m_packets_->inc();
          route(p.seq, p.hops, r);
          cb_->on_done(id_, 1);
        });
  }
}

FabricNode::~FabricNode() {
  stop();
  if (engine_) {
    store_->controller().attach_engine(nullptr);
    engine_.reset();
  }
}

void FabricNode::set_wiring(NodeWiring wiring) {
  auto snap = std::make_shared<const NodeWiring>(std::move(wiring));
  std::lock_guard<std::mutex> lk(wiring_mu_);
  wiring_ = std::move(snap);
}

void FabricNode::start() {
  if (started_) return;
  started_ = true;
  th_ = std::thread([this] { run(); });
}

void FabricNode::stop() {
  inbox_.close();
  if (th_.joinable()) th_.join();
  started_ = false;
}

void FabricNode::halt() {
  halt_.store(true, std::memory_order_release);
  stop();
}

bool FabricNode::post(Msg&& m) { return inbox_.push(std::move(m)); }

std::uint64_t FabricNode::digest() {
  std::lock_guard<std::mutex> lk(dp_mu_);
  return store_->digest();
}

std::map<std::string, std::uint64_t> FabricNode::counters() {
  auto snap = metrics_.snapshot();
  return snap.counters;
}

std::string FabricNode::status_json() {
  std::uint64_t d, lsn;
  {
    std::lock_guard<std::mutex> lk(dp_mu_);
    d = store_->digest();
    lsn = store_->last_lsn();
  }
  std::ostringstream os;
  os << "{\"node\": " << id_ << ", \"lsn\": " << lsn << ", \"digest\": \""
     << state::digest_hex(d) << "\", \"epoch\": " << epoch() << ", \"mode\": \""
     << (engine_ ? "engine" : "direct") << "\", \"metrics\": "
     << metrics_.to_json() << "}";
  return os.str();
}

bm::ProcessResult FabricNode::process_sync(std::uint16_t port,
                                           const net::Packet& p) {
  std::lock_guard<std::mutex> lk(dp_mu_);
  return store_->controller().dataplane().inject(port, p);
}

void FabricNode::run() {
  std::vector<Msg> batch;
  while (inbox_.pop_batch(batch, opts_.batch)) {
    if (halt_.load(std::memory_order_acquire)) return;
    for (auto& m : batch) {
      switch (m.kind) {
        case Msg::Kind::kApply:
          handle_apply(m);
          break;
        case Msg::Kind::kPacket:
          handle_packet(std::move(m.pkt));
          break;
        case Msg::Kind::kStop:
          return;
      }
    }
  }
}

void FabricNode::handle_apply(const Msg& m) {
  state::ReplicaApply res;
  std::uint64_t lsn = 0, d = 0;
  try {
    std::lock_guard<std::mutex> lk(dp_mu_);
    res = store_->apply_replicated(m.rec);
    lsn = store_->last_lsn();
    if (res != state::ReplicaApply::kGap) d = store_->digest();
  } catch (const util::Error&) {
    // Divergence (digest mismatch): nothing was journaled; withholding the
    // ack keeps this replica out of the quorum instead of poisoning it.
    metrics_.counter("replica_divergence").inc();
    return;
  }
  switch (res) {
    case state::ReplicaApply::kApplied: {
      m_applied_->inc();
      std::uint64_t e = epoch_.load(std::memory_order_relaxed);
      while (m.epoch > e &&
             !epoch_.compare_exchange_weak(e, m.epoch,
                                           std::memory_order_acq_rel)) {
      }
      m_acks_->inc();
      cb_->on_ack(id_, lsn, d);
      break;
    }
    case state::ReplicaApply::kDuplicate:
      // Retransmit (leader restart / post-resend overlap): already in the
      // journal; re-ack the tail so the leader's quorum math advances.
      m_duplicates_->inc();
      m_acks_->inc();
      cb_->on_ack(id_, lsn, d);
      break;
    case state::ReplicaApply::kGap:
      m_gaps_->inc();
      cb_->on_resend(id_, lsn);
      break;
  }
}

void FabricNode::handle_packet(PacketMsg&& pkt) {
  if (engine_) {
    const std::uint16_t port = pkt.port;
    std::uint64_t want;
    {
      // Pre-register the fabric metadata under the seq the engine is about
      // to assign (this thread is the sole injector, so seqs are assigned
      // in call order) — the egress hook may fire before inject returns.
      std::lock_guard<std::mutex> lk(pending_mu_);
      want = engine_next_seq_++;
      pending_[want] = Pending{pkt.seq, pkt.hops};
    }
    const std::uint64_t got = engine_->inject(port, std::move(pkt.packet));
    if (got != want)
      throw ConfigError("fabric node: engine seq skew (foreign injector?)");
    return;
  }
  bm::ProcessResult r;
  {
    std::lock_guard<std::mutex> lk(dp_mu_);
    r = store_->controller().dataplane().inject(pkt.port, pkt.packet);
  }
  m_packets_->inc();
  route(pkt.seq, pkt.hops, r);
  cb_->on_done(id_, 1);
}

void FabricNode::route(std::uint64_t seq, std::uint32_t hops,
                       const bm::ProcessResult& r) {
  std::shared_ptr<const NodeWiring> w;
  {
    std::lock_guard<std::mutex> lk(wiring_mu_);
    w = wiring_;
  }
  m_outputs_->inc(r.outputs.size());
  for (const auto& o : r.outputs) {
    if (w) {
      auto hit = w->hosts.find(o.port);
      if (hit != w->hosts.end()) {
        m_deliveries_->inc();
        cb_->on_deliver(id_, o.port, hit->second,
                        PacketMsg{seq, o.port, hops + 1, o.packet});
        continue;
      }
      auto lit = w->links.find(o.port);
      if (lit != w->links.end()) {
        if (hops + 1 > opts_.max_hops) {
          m_loop_kills_->inc();
          continue;
        }
        m_forwards_->inc();
        cb_->forward(id_, lit->second.dst_node,
                     PacketMsg{seq, lit->second.dst_port, hops + 1, o.packet});
        continue;
      }
    }
    m_drops_unwired_->inc();
  }
}

}  // namespace hyper4::fabric
