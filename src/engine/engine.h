// The concurrent, batched traffic engine.
//
// N workers each own a *private replica* of a bm::Switch compiled from the
// same p4::Program and carrying mirrored runtime state (tables with
// identical entry handles, registers, meters, counters, multicast/mirror
// config, logical clock, RNG state). Flows are sharded to workers by a
// stable hash of the parsed 5-tuple (engine/flow.h), so all packets of a
// flow hit the same replica in injection order — per-flow stateful
// semantics hold with no locks on the packet path.
//
// Data path (rebuilt for real wall-clock scaling — see DESIGN.md):
//   * one cacheline-padded SPSC ring per worker (ring.h) with batched
//     push/pop and a condvar slow path only when full/empty; producers are
//     serialized per ring by a tiny mutex, uncontended for one injector;
//   * a per-worker packet arena (arena.h) recycles net::Packet buffers from
//     the result path back to inject_batch(), so the steady-state inject
//     path performs zero heap allocations;
//   * a sequence-numbered reorder buffer (reorder.h) streams the
//     deterministic merge: results emit in injection order as the next
//     sequence completes instead of being sorted behind a whole-wave
//     barrier at drain();
//   * optional core-affinity pinning of workers (EngineOptions::pin_workers).
// The mutex-guarded BoundedQueue survives as a selectable fallback channel
// (EngineOptions::use_mutex_queue) with identical semantics.
//
// Control-plane operations (table_add / table_modify / ...) fan out to
// every replica atomically: the control thread takes every replica lock (in
// index order, so concurrent control ops cannot deadlock), applies the
// operation everywhere, and bumps a generation counter (epoch()). Workers
// hold their replica lock for the duration of one batch, so a control op
// lands between batches on every worker and never splits one.
//
// Determinism contract:
//   * workers=1 is bit-identical to calling bm::Switch::inject() directly
//     in injection order (same replica state, same order, same RNG), so
//     every native-vs-HyPer4 equivalence test extends to the engine.
//   * For flow-disjoint workloads (no cross-flow register/meter coupling in
//     the P4 program), the merged per-packet trace is identical for any
//     worker count: per-flow order is FIFO and results emit in injection-
//     sequence order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bm/switch.h"
#include "engine/arena.h"
#include "engine/flow.h"
#include "engine/metrics.h"
#include "engine/queue.h"
#include "engine/reorder.h"
#include "engine/ring.h"
#include "net/packet.h"
#include "p4/ir.h"

namespace hyper4::engine {

struct EngineOptions {
  std::size_t workers = 1;
  // Per-worker shard-ring capacity (rounded up to a power of two);
  // producers block (backpressure) when the owning worker's ring is full.
  std::size_t queue_capacity = 1024;
  // Max packets a worker takes per ring pop / replica-lock hold.
  std::size_t batch_size = 32;
  // Keep every per-packet ProcessResult for drain(). Disable for pure
  // throughput runs; drain() then reports numeric totals only.
  bool collect_results = true;
  // Attach a profiling tracer (obs::PipelineTracer, events off) to every
  // worker replica: per-stage and per-table nanosecond histograms, merged
  // into metrics() by export_profile(). Costs two clock reads per stage per
  // packet on the worker hot path; off by default.
  bool profile = false;
  // Pin worker i to core i % hardware_concurrency (Linux; no-op elsewhere).
  bool pin_workers = false;
  // Use the mutex-guarded BoundedQueue instead of the SPSC ring for the
  // shard hand-off — the fallback/differential path; semantics identical.
  bool use_mutex_queue = false;
  bm::Switch::Options switch_options{};
};

struct InjectItem {
  std::uint16_t port = 0;
  net::Packet packet;
};

// MergedResult lives in reorder.h (the streaming merge produces it).

// Merge per-packet results (already in the desired order) into totals.
// Exposed for tests and for callers that collect results themselves.
MergedResult merge_results(std::vector<bm::ProcessResult> per_packet);

// An alternative per-worker packet path (tiered execution, src/vm). When a
// factory is installed, each worker builds one instance over its private
// replica and routes packets through it instead of Switch::inject(); the
// path reads the replica's live tables, so control-plane fan-outs apply to
// it unchanged. A path must match inject() observably (outputs + TM
// counters) for the engine's determinism contract to hold.
class PacketPath {
 public:
  virtual ~PacketPath() = default;
  virtual bm::ProcessResult process(std::uint16_t port,
                                    const net::Packet& packet) = 0;
  // Implementation-defined counters (tier hit/fallback counts, compile
  // stats, ...). Keys are stable identifiers; values are cumulative. The
  // engine sums these across workers in packet_path_diagnostics().
  virtual std::map<std::string, std::uint64_t> diagnostics() const {
    return {};
  }
};

using PacketPathFactory =
    std::function<std::unique_ptr<PacketPath>(bm::Switch&)>;

// Streaming link egress hand-off (src/fabric): called on the worker thread
// once per packet, right after processing, with the packet's injection
// sequence and its full result. A fabric node routes each output to a peer
// link or host endpoint as it completes, without waiting for drain(). The
// hook runs under the worker's replica lock and must not call back into
// this engine's control plane (deadlock); it must be thread-safe across
// workers.
using EgressHook =
    std::function<void(std::uint64_t seq, const bm::ProcessResult& result)>;

class TrafficEngine {
 public:
  explicit TrafficEngine(p4::Program prog, EngineOptions opts = {});
  ~TrafficEngine();

  TrafficEngine(const TrafficEngine&) = delete;
  TrafficEngine& operator=(const TrafficEngine&) = delete;

  std::size_t workers() const { return workers_.size(); }
  const EngineOptions& options() const { return opts_; }
  // Read-only view of a worker's replica (diagnostics / tests). Do not use
  // while injection is in flight unless you hold no expectations about
  // intermediate state.
  const bm::Switch& replica(std::size_t i) const;

  // Generation counter: bumped once per control-plane fan-out.
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  // --- control plane (fans out to every replica, bumps epoch) -------------
  // Mirror full runtime state (tables, registers, meters, counters,
  // mcast/mirror config, clock, RNG) from a switch compiled from the same
  // program — e.g. one already configured by a native controller or DPMU.
  void sync_from(const bm::Switch& src);

  std::uint64_t table_add(const std::string& table, const std::string& action,
                          std::vector<bm::KeyParam> key,
                          std::vector<util::BitVec> action_args,
                          std::int32_t priority = -1);
  void table_set_default(const std::string& table, const std::string& action,
                         std::vector<util::BitVec> action_args = {});
  void table_modify(const std::string& table, const std::string& action,
                    std::uint64_t handle,
                    std::vector<util::BitVec> action_args);
  void table_delete(const std::string& table, std::uint64_t handle);
  void mirror_add(std::uint32_t session, std::uint16_t port);
  void mc_group_set(std::uint16_t group,
                    std::vector<std::pair<std::uint16_t, std::uint16_t>>
                        port_rid_pairs);
  void register_write(const std::string& reg, std::size_t index,
                      const util::BitVec& v);
  void set_time(double t);
  void advance_time(double dt);

  // Install (or, with nullptr, remove) an alternative packet path. Fans out
  // like a control op: every worker gets a fresh instance built over its
  // replica, swapped in between batches. The factory must be thread-safe to
  // call concurrently (one call per worker under that worker's replica
  // lock).
  void set_packet_path(PacketPathFactory factory);

  // Install (or, with nullptr, remove) the per-packet egress hand-off hook.
  // Fans out like a control op (all replica locks, one epoch bump), so the
  // swap lands between batches on every worker.
  void set_egress_hook(EgressHook hook);

  // Sum of every worker path's diagnostics() (empty map when no alternative
  // packet path is installed). Taken under each worker's replica lock, so
  // the read lands between batches — safe to call mid-run.
  std::map<std::string, std::uint64_t> packet_path_diagnostics() const;

  // Apply a batch of control operations as ONE fan-out: all replica locks
  // are taken, every op runs on every replica, and the epoch advances once
  // — a worker observes either none or all of the batch (transactional
  // propagation for src/state Txn commits). Ops must be deterministic
  // switch mutations; an op that throws aborts the batch mid-replica, so
  // callers needing all-or-nothing semantics validate on a source switch
  // first and use sync_from-style mirroring instead.
  void apply_atomic(const std::vector<std::function<void(bm::Switch&)>>& ops);

  // --- data plane ----------------------------------------------------------
  // Worker a packet would shard to (stable across runs and worker counts
  // modulo the worker count itself).
  std::size_t shard_of(const net::Packet& p) const {
    return static_cast<std::size_t>(flow_hash(p) % workers_.size());
  }

  // Enqueue one packet (moved through, no copy); blocks when the target
  // worker's ring is full. Returns the packet's injection sequence number.
  std::uint64_t inject(std::uint16_t port, net::Packet packet);
  // Enqueue a batch: flow-shards producer-side with per-shard staging (one
  // ring push per staged run, not per packet) and copies each packet into
  // an arena-recycled buffer — allocation-free at steady state. Concurrent
  // inject_batch calls serialize on an internal lock; interleave with
  // inject() freely.
  void inject_batch(std::span<const InjectItem> items);

  // Block until every packet enqueued so far has been processed, then
  // return (and clear) the merged results (streamed in injection-sequence
  // order; no end-of-wave sort).
  MergedResult drain();

  // Streaming consumption (collect_results only; throws ConfigError
  // otherwise): block until at least one not-yet-taken result is ready or
  // everything enqueued so far has been emitted, then return (and clear)
  // the ordered ready prefix — possibly empty when fully caught up. Lets a
  // caller overlap result processing with packet processing instead of
  // waiting for the whole wave.
  MergedResult collect_ready();

  // --- aggregate reads (sum across replicas) -------------------------------
  // Registers/meters are per-flow state and live in the flow's replica;
  // counters are additive, so the engine-wide value is the sum.
  std::uint64_t counter_packets_total(const std::string& counter,
                                      std::size_t index) const;
  std::uint64_t counter_bytes_total(const std::string& counter,
                                    std::size_t index) const;
  // Register state lives in the flow's replica, so an engine-wide read is
  // well-defined only with a single worker; throws ConfigError otherwise.
  // (The differential oracle pins workers=1 for stateful programs and uses
  // this to compare final register state against the native switch.)
  util::BitVec register_read(const std::string& reg, std::size_t index) const;
  bm::Switch::Stats stats_total() const;

  // Cumulative *CPU* time worker `i` has spent inside Switch::inject()
  // (per-thread clock, so co-scheduled workers on a small machine don't
  // bill each other) — the bottleneck-makespan measure the simulator's
  // throughput model uses.
  double busy_seconds(std::size_t i) const;
  double max_busy_seconds() const;
  void reset_busy();

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // With options().profile: merge every worker's per-stage / per-table
  // latency histograms into metrics() ("stage_ns_<stage>" and
  // "table_lookup_ns.<table>" histograms, nanosecond log2 buckets) and
  // reset the worker-side profiles so repeated exports don't double-count.
  // Safe to call mid-run: each worker's profile is read under its replica
  // lock, i.e. between batches. No-op when profiling is off.
  void export_profile();

 private:
  struct Job {
    std::uint64_t seq = 0;
    std::uint16_t port = 0;
    net::Packet packet;
  };

  struct Worker {
    std::size_t index = 0;
    std::unique_ptr<bm::Switch> sw;
    // Alternative packet path (set_packet_path); nullptr = Switch::inject.
    // Only touched under replica_mu, like the replica itself.
    std::unique_ptr<PacketPath> path;
    // Egress hand-off hook (set_egress_hook); shared across workers, the
    // per-worker copy is swapped under replica_mu like `path`.
    std::shared_ptr<const EgressHook> egress;
    // Profiling tracer attached to `sw` when EngineOptions::profile; its
    // histograms are only touched by the owning worker under replica_mu.
    std::unique_ptr<obs::PipelineTracer> tracer;
    // Shard hand-off: the SPSC ring, or the BoundedQueue fallback when
    // EngineOptions::use_mutex_queue (exactly one is non-null).
    std::unique_ptr<SpscRing<Job>> ring;
    std::unique_ptr<BoundedQueue<Job>> queue;
    // Serializes ring producers (the ring itself is SPSC). Uncontended in
    // the single-injector pattern; inject_batch holds it once per staged
    // run, not per packet.
    std::mutex prod_mu;
    // Packet-buffer recycler (worker produces spent buffers, inject_batch
    // consumes them under inject_mu_).
    std::unique_ptr<PacketArena> arena;
    // inject_batch staging (guarded by inject_mu_): jobs accumulated for
    // this shard, flushed as one ring push.
    std::vector<Job> stage;
    // Held by the worker for one batch; by control fan-outs for one op.
    std::mutex replica_mu;
    // Numeric totals accumulated when collect_results is off (with
    // collect_results the reorder buffer owns all accounting).
    std::mutex results_mu;
    bm::ProcessResult totals;
    std::uint64_t packets = 0;  // guarded by results_mu
    std::atomic<std::uint64_t> busy_ns{0};
    std::thread th;
  };

  void worker_loop(Worker& w);
  void flush_stage(Worker& w);
  // Lock every replica in index order, run fn(switch) on each, bump epoch.
  template <typename Fn>
  void fan_out(Fn&& fn);

  EngineOptions opts_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::mutex control_mu_;
  // Serializes inject_batch callers (staging buffers + arena consumer side).
  std::mutex inject_mu_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> processed_{0};
  std::mutex drain_mu_;
  std::condition_variable drained_cv_;
  ReorderBuffer reorder_;

  MetricsRegistry metrics_;
  // Hot-path metric handles, resolved once.
  Counter* m_packets_ = nullptr;
  Counter* m_outputs_ = nullptr;
  Counter* m_drops_ = nullptr;
  Counter* m_resubmits_ = nullptr;
  Counter* m_recirculates_ = nullptr;
  Counter* m_parse_errors_ = nullptr;
  Counter* m_loop_kills_ = nullptr;
  Counter* m_batches_ = nullptr;
  Counter* m_backpressure_ = nullptr;
  Counter* m_consumer_waits_ = nullptr;
  Counter* m_queue_prod_wakeups_ = nullptr;
  Counter* m_queue_cons_wakeups_ = nullptr;
  Counter* m_merge_stall_ns_ = nullptr;
  Counter* m_drain_wait_ns_ = nullptr;
  Counter* m_arena_fresh_ = nullptr;
  Counter* m_control_ops_ = nullptr;
  Counter* m_txn_batches_ = nullptr;
  Histogram* h_latency_us_ = nullptr;
  Histogram* h_stages_ = nullptr;
};

}  // namespace hyper4::engine
