#include "engine/flow.h"

#include <span>

namespace hyper4::engine {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::uint64_t h, std::span<const std::uint8_t> bytes) {
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_u32(std::uint64_t h, std::uint32_t v) {
  const std::uint8_t b[4] = {
      static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
      static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
  return fnv1a(h, b);
}

std::uint16_t rd16(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint16_t>((b[off] << 8) | b[off + 1]);
}

std::uint32_t rd32(std::span<const std::uint8_t> b, std::size_t off) {
  return (static_cast<std::uint32_t>(b[off]) << 24) |
         (static_cast<std::uint32_t>(b[off + 1]) << 16) |
         (static_cast<std::uint32_t>(b[off + 2]) << 8) |
         static_cast<std::uint32_t>(b[off + 3]);
}

constexpr std::size_t kEthLen = 14;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::uint8_t kProtoTcp = 6;
constexpr std::uint8_t kProtoUdp = 17;

}  // namespace

FlowKey flow_key(const net::Packet& p) {
  FlowKey k;
  const auto b = p.bytes();
  if (b.size() < kEthLen + 20) return k;
  if (rd16(b, 12) != kEtherTypeIpv4) return k;
  const std::uint8_t vihl = b[kEthLen];
  if ((vihl >> 4) != 4) return k;
  const std::size_t ihl = static_cast<std::size_t>(vihl & 0x0f) * 4;
  if (ihl < 20 || b.size() < kEthLen + ihl) return k;
  k.is_ipv4 = true;
  k.proto = b[kEthLen + 9];
  k.src_ip = rd32(b, kEthLen + 12);
  k.dst_ip = rd32(b, kEthLen + 16);
  if ((k.proto == kProtoTcp || k.proto == kProtoUdp) &&
      b.size() >= kEthLen + ihl + 4) {
    k.src_port = rd16(b, kEthLen + ihl);
    k.dst_port = rd16(b, kEthLen + ihl + 2);
  }
  return k;
}

std::uint64_t flow_hash(const FlowKey& k) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_u32(h, k.src_ip);
  h = fnv1a_u32(h, k.dst_ip);
  const std::uint8_t tail[5] = {
      k.proto, static_cast<std::uint8_t>(k.src_port >> 8),
      static_cast<std::uint8_t>(k.src_port),
      static_cast<std::uint8_t>(k.dst_port >> 8),
      static_cast<std::uint8_t>(k.dst_port)};
  return fnv1a(h, tail);
}

std::uint64_t flow_hash(const net::Packet& p) {
  const FlowKey k = flow_key(p);
  if (k.is_ipv4) return flow_hash(k);
  return fnv1a(kFnvOffset, p.bytes());
}

}  // namespace hyper4::engine
