// Thread-safe metrics for the traffic engine: named monotonic counters and
// fixed-bucket histograms, dumpable as JSON.
//
// The registry hands out stable pointers; the engine resolves every metric
// it touches once at construction and the per-packet path is then a couple
// of relaxed atomic adds — no map lookups, no locks. Relaxed ordering is
// sufficient because metrics are statistical: readers only need eventually-
// consistent totals, and drain() (which is a full synchronization point)
// happens-before any assertion a test makes on them.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hyper4::engine {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i], with
// an implicit +inf bucket at the end. Sum is kept in micro-units (the
// observation times 1e6, rounded) so it can live in an integer atomic.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);
  // Bulk merge: add `n` observations summing to `value_sum` into bucket
  // `bucket` (0..bounds().size(), the last being +inf). Used to fold
  // externally-aggregated histograms (e.g. obs::LatencyHist from per-worker
  // tracers) into a registry histogram without per-observation cost.
  void add(std::size_t bucket, std::uint64_t n, double value_sum);

  const std::vector<double>& bounds() const { return bounds_; }
  // Cumulative count of bucket i (observations <= bounds_[i]); index
  // bounds_.size() is the +inf bucket == total count.
  std::uint64_t bucket_count(std::size_t i) const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const {
    return static_cast<double>(sum_micro_.load(std::memory_order_relaxed)) /
           1e6;
  }
  double mean() const {
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }
  void reset();

 private:
  std::vector<double> bounds_;  // strictly increasing
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_micro_{0};
};

// A point-in-time copy of every metric, safe to take while writers are
// live: counter/bucket loads are relaxed atomic reads, so a snapshot is
// eventually consistent (per-metric totals may be mid-update relative to
// each other) but never racy. This is what profiling tools read mid-run;
// drain() remains the full synchronization point for exact totals.
struct MetricsSnapshot {
  struct Hist {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (+inf last)
    std::uint64_t count = 0;
    double sum = 0;
    double mean = 0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, Hist> histograms;
};

class MetricsRegistry {
 public:
  // Find-or-create. Returned references stay valid for the registry's
  // lifetime (metrics are never removed).
  Counter& counter(const std::string& name);
  // Bounds are fixed at first creation; a later call with the same name
  // returns the existing histogram regardless of `upper_bounds`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  // {"counters": {...}, "histograms": {name: {"buckets": [{"le": b,
  // "count": n}, ...], "count": n, "sum": s, "mean": m}}}. Bucket counts
  // are per-bucket (not cumulative); the final bucket's "le" is "inf".
  std::string to_json() const;

  // Thread-safe live snapshot; may be called concurrently with metric
  // updates and with counter()/histogram() registration.
  MetricsSnapshot snapshot() const;

  void reset();

 private:
  mutable std::mutex mu_;  // guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hyper4::engine
