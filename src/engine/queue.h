// Bounded multi-producer / multi-consumer work queue — the traffic
// engine's *fallback* shard channel (EngineOptions::use_mutex_queue) and
// the reference semantics for the SPSC ring (ring.h) that replaced it on
// the hot path. Producers block when the queue is full (backpressure),
// consumers pop in batches to amortize synchronization over many packets.
//
// A mutex + two condition variables is deliberately kept here: the blocking
// semantics give exact backpressure accounting, and having a second,
// differently-synchronized implementation of the same contract keeps the
// ring honest (the engine's determinism tests run against both).
//
// Wakeup discipline: pop_batch frees exactly n slots, so it wakes at most
// n blocked producers (notify_one per freed slot) instead of notify_all —
// the old thundering herd woke every producer for one slot and each loser
// re-took the mutex just to sleep again. close() is the only notify_all.
// Optional counters record actual producer/consumer wakeups (returns from
// a condvar wait, including spurious ones) for the engine's
// MetricsRegistry.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "engine/metrics.h"

namespace hyper4::engine {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity,
                        Counter* producer_wakeups = nullptr,
                        Counter* consumer_wakeups = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity),
        producer_wakeups_(producer_wakeups),
        consumer_wakeups_(consumer_wakeups) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while the queue is full. Returns false when the queue was
  // closed (the item is dropped), true otherwise. When `waited` is
  // non-null it is set to whether the producer had to block.
  bool push(T item, bool* waited = nullptr) {
    std::unique_lock<std::mutex> lk(mu_);
    if (waited) *waited = closed_ ? false : q_.size() >= capacity_;
    while (!closed_ && q_.size() >= capacity_) {
      not_full_.wait(lk);
      if (producer_wakeups_) producer_wakeups_->inc();
    }
    if (closed_) return false;
    q_.push_back(std::move(item));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Pops up to `max` items into `out` (cleared first), blocking while the
  // queue is empty. Returns false only when the queue is closed *and*
  // drained — the consumer's signal to exit.
  bool pop_batch(std::vector<T>& out, std::size_t max) {
    out.clear();
    std::unique_lock<std::mutex> lk(mu_);
    while (!closed_ && q_.empty()) {
      not_empty_.wait(lk);
      if (consumer_wakeups_) consumer_wakeups_->inc();
    }
    if (q_.empty()) return false;  // closed and drained
    const std::size_t n = std::min(max == 0 ? std::size_t{1} : max, q_.size());
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    lk.unlock();
    // n slots freed admit at most n blocked producers.
    for (std::size_t i = 0; i < n; ++i) not_full_.notify_one();
    return true;
  }

  // Wakes every blocked producer and consumer; subsequent pushes fail,
  // pop_batch drains what remains then reports closure.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<T> q_;
  std::size_t capacity_;
  bool closed_ = false;
  Counter* producer_wakeups_;
  Counter* consumer_wakeups_;
};

}  // namespace hyper4::engine
