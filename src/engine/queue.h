// Bounded multi-producer / multi-consumer work queue for the traffic
// engine. Producers block when the queue is full (backpressure — the
// engine's substitute for an unbounded ingress buffer), consumers pop in
// batches to amortize synchronization over many packets.
//
// A mutex + two condition variables is deliberately chosen over a lock-free
// ring: the queue is touched once per *batch* on the consumer side, so the
// lock is far off the per-packet hot path, and the blocking semantics give
// exact backpressure accounting for the metrics registry.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace hyper4::engine {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while the queue is full. Returns false when the queue was
  // closed (the item is dropped), true otherwise. When `waited` is
  // non-null it is set to whether the producer had to block.
  bool push(T item, bool* waited = nullptr) {
    std::unique_lock<std::mutex> lk(mu_);
    if (waited) *waited = closed_ ? false : q_.size() >= capacity_;
    not_full_.wait(lk, [&] { return closed_ || q_.size() < capacity_; });
    if (closed_) return false;
    q_.push_back(std::move(item));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Pops up to `max` items into `out` (cleared first), blocking while the
  // queue is empty. Returns false only when the queue is closed *and*
  // drained — the consumer's signal to exit.
  bool pop_batch(std::vector<T>& out, std::size_t max) {
    out.clear();
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return false;  // closed and drained
    const std::size_t n = std::min(max == 0 ? std::size_t{1} : max, q_.size());
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    lk.unlock();
    not_full_.notify_all();
    return true;
  }

  // Wakes every blocked producer and consumer; subsequent pushes fail,
  // pop_batch drains what remains then reports closure.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<T> q_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace hyper4::engine
