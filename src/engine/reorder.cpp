#include "engine/reorder.h"

#include <chrono>

namespace hyper4::engine {

namespace {

void accumulate_counts(bm::ProcessResult& into, const bm::ProcessResult& r) {
  into.resubmits += r.resubmits;
  into.recirculations += r.recirculations;
  into.clones_i2e += r.clones_i2e;
  into.clones_e2e += r.clones_e2e;
  into.multicast_copies += r.multicast_copies;
  into.drops += r.drops;
  into.parse_errors += r.parse_errors;
  into.loop_kills += r.loop_kills;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void ReorderBuffer::emit_locked(bm::ProcessResult&& r) {
  accumulate_counts(ready_.totals, r);
  ready_.totals.outputs.insert(ready_.totals.outputs.end(), r.outputs.begin(),
                               r.outputs.end());
  ready_.totals.applied.insert(ready_.totals.applied.end(), r.applied.begin(),
                               r.applied.end());
  ready_.totals.digests.insert(ready_.totals.digests.end(), r.digests.begin(),
                               r.digests.end());
  ready_.per_packet.push_back(std::move(r));
  ++ready_.packets;
  ++next_;
}

void ReorderBuffer::deliver(
    std::vector<std::pair<std::uint64_t, bm::ProcessResult>>& batch) {
  if (batch.empty()) return;
  const std::uint64_t t0 = stall_ns_ ? now_ns() : 0;
  bool emitted = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [seq, r] : batch) {
      if (seq == next_) {
        emit_locked(std::move(r));
        emitted = true;
      } else {
        pending_.emplace(seq, std::move(r));
      }
    }
    // A just-emitted sequence may unblock buffered successors.
    while (!pending_.empty() && pending_.begin()->first == next_) {
      emit_locked(std::move(pending_.begin()->second));
      pending_.erase(pending_.begin());
      emitted = true;
    }
  }
  batch.clear();
  if (emitted) emitted_cv_.notify_all();
  if (stall_ns_) stall_ns_->inc(now_ns() - t0);
}

std::uint64_t ReorderBuffer::next_seq() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_;
}

std::size_t ReorderBuffer::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_.size();
}

void ReorderBuffer::wait_emitted(std::uint64_t target) {
  std::unique_lock<std::mutex> lk(mu_);
  emitted_cv_.wait(lk, [&] { return next_ >= target; });
}

void ReorderBuffer::wait_any_ready(std::uint64_t target) {
  std::unique_lock<std::mutex> lk(mu_);
  emitted_cv_.wait(
      lk, [&] { return !ready_.per_packet.empty() || next_ >= target; });
}

MergedResult ReorderBuffer::take_ready() {
  std::lock_guard<std::mutex> lk(mu_);
  MergedResult out = std::move(ready_);
  ready_ = MergedResult{};
  return out;
}

}  // namespace hyper4::engine
