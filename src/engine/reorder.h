// Streaming deterministic merge: a sequence-numbered reorder buffer.
//
// Workers deliver completed (injection sequence, ProcessResult) batches in
// whatever order they finish; the buffer emits results the moment the next
// expected sequence completes — appending to an ordered ready list and a
// running MergedResult — instead of barriering on the whole wave and
// sorting at drain() time. drain() therefore only waits for the last
// straggler and moves the already-ordered data out; a streaming consumer
// (TrafficEngine::collect_ready, sim::Network::send_many) can take the
// emitted prefix while later packets are still in flight.
//
// Out-of-order residence is bounded by the engine's in-flight packet count
// (sum of shard-ring capacities + one batch per worker): a producer blocked
// on a full shard ring stops the global sequence from advancing, so the
// pending map can never grow past what the rings admit.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "bm/trace.h"
#include "engine/metrics.h"

namespace hyper4::engine {

// The aggregation of all results since the last drain().
struct MergedResult {
  // Numeric fields are sums over all packets. With collect_results,
  // outputs / applied / digests are concatenated in injection-sequence
  // order (deterministic); without, they are empty.
  bm::ProcessResult totals;
  // Per-packet results in injection-sequence order (collect_results only).
  std::vector<bm::ProcessResult> per_packet;
  std::uint64_t packets = 0;
};

class ReorderBuffer {
 public:
  // `stall_ns` (optional) accumulates wall nanoseconds workers spend inside
  // deliver() — lock wait plus insert/emit — the merge-stall share of the
  // serial-fraction evidence in BENCH_engine.json.
  explicit ReorderBuffer(Counter* stall_ns = nullptr) : stall_ns_(stall_ns) {}
  // Install/replace the stall counter (call before any deliver()).
  void set_stall_counter(Counter* c) { stall_ns_ = c; }

  ReorderBuffer(const ReorderBuffer&) = delete;
  ReorderBuffer& operator=(const ReorderBuffer&) = delete;

  // Deliver a batch of completed results (any order; sequences must be
  // unique). Moves the results in; `batch` is left cleared.
  void deliver(std::vector<std::pair<std::uint64_t, bm::ProcessResult>>& batch);

  // Every sequence < next_seq() has been emitted into the ready prefix.
  std::uint64_t next_seq() const;
  std::size_t pending() const;

  // Block until every sequence < `target` has been emitted.
  void wait_emitted(std::uint64_t target);
  // Block until the untaken ready prefix is non-empty OR every sequence
  // < `target` has been emitted (whichever first).
  void wait_any_ready(std::uint64_t target);

  // Move out everything emitted so far (ordered per-packet results plus the
  // incrementally merged totals). next_seq() keeps counting across takes.
  MergedResult take_ready();

 private:
  void emit_locked(bm::ProcessResult&& r);

  mutable std::mutex mu_;
  std::condition_variable emitted_cv_;
  std::uint64_t next_ = 0;  // next sequence to emit
  std::map<std::uint64_t, bm::ProcessResult> pending_;
  MergedResult ready_;  // emitted, not yet taken
  Counter* stall_ns_;
};

}  // namespace hyper4::engine
