#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <ctime>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "util/error.h"

namespace hyper4::engine {

using util::ConfigError;

namespace {

// Per-thread CPU time. Worker busy accounting must not include time the
// thread spent scheduled out (on a box with fewer cores than workers,
// wall time inside inject() would count the *other* workers' progress),
// so the makespan measure packets/max-busy stays meaningful anywhere.
std::uint64_t thread_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void accumulate(bm::ProcessResult& into, const bm::ProcessResult& r) {
  into.resubmits += r.resubmits;
  into.recirculations += r.recirculations;
  into.clones_i2e += r.clones_i2e;
  into.clones_e2e += r.clones_e2e;
  into.multicast_copies += r.multicast_copies;
  into.drops += r.drops;
  into.parse_errors += r.parse_errors;
  into.loop_kills += r.loop_kills;
}

void pin_to_core(std::size_t index) {
#if defined(__linux__)
  const unsigned n = std::thread::hardware_concurrency();
  if (n == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(index % n), &set);
  // Best effort: a restricted cpuset (container) may reject the mask.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)index;
#endif
}

}  // namespace

MergedResult merge_results(std::vector<bm::ProcessResult> per_packet) {
  MergedResult m;
  m.packets = per_packet.size();
  for (const auto& r : per_packet) {
    accumulate(m.totals, r);
    m.totals.outputs.insert(m.totals.outputs.end(), r.outputs.begin(),
                            r.outputs.end());
    m.totals.applied.insert(m.totals.applied.end(), r.applied.begin(),
                            r.applied.end());
    m.totals.digests.insert(m.totals.digests.end(), r.digests.begin(),
                            r.digests.end());
  }
  m.per_packet = std::move(per_packet);
  return m;
}

TrafficEngine::TrafficEngine(p4::Program prog, EngineOptions opts)
    : opts_(opts) {
  if (opts_.workers == 0)
    throw ConfigError("engine: worker count must be >= 1");
  if (opts_.batch_size == 0) opts_.batch_size = 1;

  m_packets_ = &metrics_.counter("packets");
  m_outputs_ = &metrics_.counter("outputs");
  m_drops_ = &metrics_.counter("drops");
  m_resubmits_ = &metrics_.counter("resubmits");
  m_recirculates_ = &metrics_.counter("recirculates");
  m_parse_errors_ = &metrics_.counter("parse_errors");
  m_loop_kills_ = &metrics_.counter("loop_kills");
  m_batches_ = &metrics_.counter("batches");
  m_backpressure_ = &metrics_.counter("backpressure_waits");
  m_consumer_waits_ = &metrics_.counter("consumer_waits");
  m_queue_prod_wakeups_ = &metrics_.counter("queue_producer_wakeups");
  m_queue_cons_wakeups_ = &metrics_.counter("queue_consumer_wakeups");
  m_merge_stall_ns_ = &metrics_.counter("merge_stall_ns");
  m_drain_wait_ns_ = &metrics_.counter("drain_wait_ns");
  m_arena_fresh_ = &metrics_.counter("arena_fresh_allocs");
  m_control_ops_ = &metrics_.counter("control_ops");
  m_txn_batches_ = &metrics_.counter("txn_batches");
  h_latency_us_ = &metrics_.histogram(
      "packet_latency_us",
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000});
  h_stages_ = &metrics_.histogram(
      "stages_per_packet", {0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64});
  reorder_.set_stall_counter(m_merge_stall_ns_);

  // Arena stock must exceed the worst-case in-flight buffer count (full
  // shard ring + one batch being processed + one batch staged) so a warmed
  // steady state never needs a fresh allocation.
  const std::size_t stock =
      std::max<std::size_t>(opts_.queue_capacity, 1) + 2 * opts_.batch_size;

  workers_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->sw = std::make_unique<bm::Switch>(prog, opts_.switch_options);
    if (opts_.profile) {
      obs::TracerOptions topts;
      topts.record_events = false;  // histograms only on the worker path
      topts.profile = true;
      w->tracer = std::make_unique<obs::PipelineTracer>(topts);
      w->sw->set_tracer(w->tracer.get());
    }
    if (opts_.use_mutex_queue) {
      w->queue = std::make_unique<BoundedQueue<Job>>(
          opts_.queue_capacity, m_queue_prod_wakeups_, m_queue_cons_wakeups_);
    } else {
      w->ring = std::make_unique<SpscRing<Job>>(
          opts_.queue_capacity, m_backpressure_, m_consumer_waits_);
    }
    w->arena = std::make_unique<PacketArena>(stock, m_arena_fresh_);
    w->stage.reserve(opts_.batch_size);
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_) {
    w->th = std::thread([this, &w = *w] { worker_loop(w); });
  }
}

TrafficEngine::~TrafficEngine() {
  for (auto& w : workers_) {
    if (w->ring) w->ring->close();
    if (w->queue) w->queue->close();
  }
  for (auto& w : workers_) {
    if (w->th.joinable()) w->th.join();
  }
}

const bm::Switch& TrafficEngine::replica(std::size_t i) const {
  if (i >= workers_.size())
    throw ConfigError("engine: no worker " + std::to_string(i));
  return *workers_[i]->sw;
}

void TrafficEngine::worker_loop(Worker& w) {
  if (opts_.pin_workers) pin_to_core(w.index);
  std::vector<Job> batch;
  batch.reserve(opts_.batch_size);
  std::vector<std::pair<std::uint64_t, bm::ProcessResult>> completed;
  if (opts_.collect_results) completed.reserve(opts_.batch_size);
  for (;;) {
    const bool alive = w.ring ? w.ring->pop_batch(batch, opts_.batch_size)
                              : w.queue->pop_batch(batch, opts_.batch_size);
    if (!alive) break;
    {
      std::lock_guard<std::mutex> replica_lock(w.replica_mu);
      for (auto& job : batch) {
        const std::uint64_t t0 = thread_cpu_ns();
        bm::ProcessResult r = w.path ? w.path->process(job.port, job.packet)
                                     : w.sw->inject(job.port, job.packet);
        const std::uint64_t ns = thread_cpu_ns() - t0;
        w.busy_ns.fetch_add(ns, std::memory_order_relaxed);
        h_latency_us_->observe(static_cast<double>(ns) / 1e3);
        h_stages_->observe(static_cast<double>(r.match_count()));
        m_packets_->inc();
        m_outputs_->inc(r.outputs.size());
        m_drops_->inc(r.drops);
        m_resubmits_->inc(r.resubmits);
        m_recirculates_->inc(r.recirculations);
        m_parse_errors_->inc(r.parse_errors);
        m_loop_kills_->inc(r.loop_kills);

        if (w.egress) (*w.egress)(job.seq, r);

        if (opts_.collect_results) {
          completed.emplace_back(job.seq, std::move(r));
        } else {
          std::lock_guard<std::mutex> results_lock(w.results_mu);
          ++w.packets;
          accumulate(w.totals, r);
        }
      }
    }
    // Stream the batch into the deterministic merge (emits every result
    // whose predecessors are all done) before recycling buffers, so a
    // drainer woken by the reorder buffer observes fully-processed state.
    if (!completed.empty()) reorder_.deliver(completed);
    for (auto& job : batch) w.arena->recycle(std::move(job.packet));
    m_batches_->inc();
    processed_.fetch_add(batch.size(), std::memory_order_acq_rel);
    // Take the drain lock (empty section) so a drainer that just evaluated
    // its predicate cannot miss this notification.
    { std::lock_guard<std::mutex> lk(drain_mu_); }
    drained_cv_.notify_all();
  }
}

template <typename Fn>
void TrafficEngine::fan_out(Fn&& fn) {
  std::lock_guard<std::mutex> control_lock(control_mu_);
  std::vector<std::unique_lock<std::mutex>> replica_locks;
  replica_locks.reserve(workers_.size());
  for (auto& w : workers_) replica_locks.emplace_back(w->replica_mu);
  // Apply to replica 0 first: validation errors (CommandError) are
  // deterministic functions of program + state, so a failure here fails
  // before any replica diverged.
  fn(*workers_[0]->sw);
  for (std::size_t i = 1; i < workers_.size(); ++i) fn(*workers_[i]->sw);
  epoch_.fetch_add(1, std::memory_order_release);
  m_control_ops_->inc();
}

void TrafficEngine::sync_from(const bm::Switch& src) {
  fan_out([&](bm::Switch& sw) { sw.sync_state_from(src); });
}

void TrafficEngine::set_packet_path(PacketPathFactory factory) {
  std::lock_guard<std::mutex> control_lock(control_mu_);
  std::vector<std::unique_lock<std::mutex>> replica_locks;
  replica_locks.reserve(workers_.size());
  for (auto& w : workers_) replica_locks.emplace_back(w->replica_mu);
  for (auto& w : workers_) {
    w->path = factory ? factory(*w->sw) : nullptr;
  }
  epoch_.fetch_add(1, std::memory_order_release);
  m_control_ops_->inc();
}

void TrafficEngine::set_egress_hook(EgressHook hook) {
  std::lock_guard<std::mutex> control_lock(control_mu_);
  std::vector<std::unique_lock<std::mutex>> replica_locks;
  replica_locks.reserve(workers_.size());
  for (auto& w : workers_) replica_locks.emplace_back(w->replica_mu);
  const auto shared =
      hook ? std::make_shared<const EgressHook>(std::move(hook)) : nullptr;
  for (auto& w : workers_) w->egress = shared;
  epoch_.fetch_add(1, std::memory_order_release);
  m_control_ops_->inc();
}

std::map<std::string, std::uint64_t> TrafficEngine::packet_path_diagnostics()
    const {
  std::map<std::string, std::uint64_t> sum;
  for (const auto& w : workers_) {
    std::lock_guard<std::mutex> lk(w->replica_mu);
    if (!w->path) continue;
    for (const auto& [k, v] : w->path->diagnostics()) sum[k] += v;
  }
  return sum;
}

void TrafficEngine::apply_atomic(
    const std::vector<std::function<void(bm::Switch&)>>& ops) {
  fan_out([&](bm::Switch& sw) {
    for (const auto& op : ops) op(sw);
  });
  m_txn_batches_->inc();
}

void TrafficEngine::export_profile() {
  if (!opts_.profile) return;
  obs::StageProfile merged;
  std::vector<std::string> names;
  for (auto& w : workers_) {
    // Between-batches synchronization point: the worker holds replica_mu
    // for the whole batch, so the profile is quiescent while we read it.
    std::lock_guard<std::mutex> lk(w->replica_mu);
    merged.merge(w->tracer->profile());
    if (names.empty()) names = w->tracer->table_names();
    w->tracer->reset_profile();
  }
  const std::vector<double> bounds = obs::latency_bucket_bounds();
  const auto fold = [&](const std::string& name,
                        const obs::LatencyHist& h) {
    if (!h.count) return;
    Histogram& dst = metrics_.histogram(name, bounds);
    bool sum_folded = false;
    for (std::size_t i = 0; i < obs::LatencyHist::kBuckets; ++i) {
      if (!h.buckets[i]) continue;
      dst.add(i, h.buckets[i],
              sum_folded ? 0.0 : static_cast<double>(h.sum_ns));
      sum_folded = true;
    }
  };
  for (std::size_t s = 0; s < obs::kNumStages; ++s) {
    fold(std::string("stage_ns_") +
             obs::stage_name(static_cast<obs::Stage>(s)),
         merged.stages[s]);
  }
  for (std::size_t t = 0; t < merged.per_table.size(); ++t) {
    fold("table_lookup_ns." +
             (t < names.size() ? names[t] : std::to_string(t)),
         merged.per_table[t]);
  }
}

std::uint64_t TrafficEngine::table_add(const std::string& table,
                                       const std::string& action,
                                       std::vector<bm::KeyParam> key,
                                       std::vector<util::BitVec> action_args,
                                       std::int32_t priority) {
  std::uint64_t handle = 0;
  bool first = true;
  fan_out([&](bm::Switch& sw) {
    const std::uint64_t h =
        sw.table_add(table, action, key, action_args, priority);
    if (first) {
      handle = h;
      first = false;
    } else if (h != handle) {
      throw ConfigError("engine: replica handle divergence on table_add to '" +
                        table + "' (" + std::to_string(handle) + " vs " +
                        std::to_string(h) + ")");
    }
  });
  return handle;
}

void TrafficEngine::table_set_default(const std::string& table,
                                      const std::string& action,
                                      std::vector<util::BitVec> action_args) {
  fan_out([&](bm::Switch& sw) {
    sw.table_set_default(table, action, action_args);
  });
}

void TrafficEngine::table_modify(const std::string& table,
                                 const std::string& action,
                                 std::uint64_t handle,
                                 std::vector<util::BitVec> action_args) {
  fan_out([&](bm::Switch& sw) {
    sw.table_modify(table, action, handle, action_args);
  });
}

void TrafficEngine::table_delete(const std::string& table,
                                 std::uint64_t handle) {
  fan_out([&](bm::Switch& sw) { sw.table_delete(table, handle); });
}

void TrafficEngine::mirror_add(std::uint32_t session, std::uint16_t port) {
  fan_out([&](bm::Switch& sw) { sw.mirror_add(session, port); });
}

void TrafficEngine::mc_group_set(
    std::uint16_t group,
    std::vector<std::pair<std::uint16_t, std::uint16_t>> port_rid_pairs) {
  fan_out([&](bm::Switch& sw) { sw.mc_group_set(group, port_rid_pairs); });
}

void TrafficEngine::register_write(const std::string& reg, std::size_t index,
                                   const util::BitVec& v) {
  fan_out([&](bm::Switch& sw) { sw.register_write(reg, index, v); });
}

void TrafficEngine::set_time(double t) {
  fan_out([&](bm::Switch& sw) { sw.set_time(t); });
}

void TrafficEngine::advance_time(double dt) {
  fan_out([&](bm::Switch& sw) { sw.advance_time(dt); });
}

std::uint64_t TrafficEngine::inject(std::uint16_t port, net::Packet packet) {
  const std::size_t shard = shard_of(packet);
  const std::uint64_t seq =
      enqueued_.fetch_add(1, std::memory_order_acq_rel);
  Worker& w = *workers_[shard];
  Job job{seq, port, std::move(packet)};
  if (w.queue) {
    bool waited = false;
    w.queue->push(std::move(job), &waited);
    if (waited) m_backpressure_->inc();
  } else {
    std::lock_guard<std::mutex> lk(w.prod_mu);
    w.ring->push(&job, 1);
  }
  return seq;
}

void TrafficEngine::flush_stage(Worker& w) {
  if (w.stage.empty()) return;
  if (w.queue) {
    for (auto& job : w.stage) {
      bool waited = false;
      w.queue->push(std::move(job), &waited);
      if (waited) m_backpressure_->inc();
    }
  } else {
    std::lock_guard<std::mutex> lk(w.prod_mu);
    w.ring->push(w.stage.data(), w.stage.size());
  }
  w.stage.clear();
}

void TrafficEngine::inject_batch(std::span<const InjectItem> items) {
  std::lock_guard<std::mutex> inject_lock(inject_mu_);
  for (const auto& item : items) {
    Worker& w = *workers_[shard_of(item.packet)];
    const std::uint64_t seq =
        enqueued_.fetch_add(1, std::memory_order_acq_rel);
    w.stage.push_back(
        Job{seq, item.port, w.arena->acquire(item.packet.bytes())});
    if (w.stage.size() >= opts_.batch_size) flush_stage(w);
  }
  for (auto& w : workers_) flush_stage(*w);
}

MergedResult TrafficEngine::drain() {
  const std::uint64_t target = enqueued_.load(std::memory_order_acquire);
  if (opts_.collect_results) {
    const std::uint64_t t0 = wall_ns();
    reorder_.wait_emitted(target);
    m_drain_wait_ns_->inc(wall_ns() - t0);
    return reorder_.take_ready();
  }
  const std::uint64_t t0 = wall_ns();
  {
    std::unique_lock<std::mutex> lk(drain_mu_);
    drained_cv_.wait(lk, [&] {
      return processed_.load(std::memory_order_acquire) >= target;
    });
  }
  m_drain_wait_ns_->inc(wall_ns() - t0);
  // All workers are now between batches for everything enqueued before the
  // call; collect the numeric totals under the results locks.
  MergedResult m;
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lk(w->results_mu);
    m.packets += w->packets;
    accumulate(m.totals, w->totals);
    w->totals = bm::ProcessResult{};
    w->packets = 0;
  }
  return m;
}

MergedResult TrafficEngine::collect_ready() {
  if (!opts_.collect_results) {
    throw ConfigError(
        "TrafficEngine::collect_ready needs collect_results=true");
  }
  reorder_.wait_any_ready(enqueued_.load(std::memory_order_acquire));
  return reorder_.take_ready();
}

std::uint64_t TrafficEngine::counter_packets_total(const std::string& counter,
                                                   std::size_t index) const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->sw->counter_packets(counter, index);
  return total;
}

std::uint64_t TrafficEngine::counter_bytes_total(const std::string& counter,
                                                 std::size_t index) const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->sw->counter_bytes(counter, index);
  return total;
}

util::BitVec TrafficEngine::register_read(const std::string& reg,
                                          std::size_t index) const {
  if (workers_.size() != 1) {
    throw util::ConfigError(
        "TrafficEngine::register_read: registers are per-flow replica state; "
        "an engine-wide read needs workers=1 (have " +
        std::to_string(workers_.size()) + ")");
  }
  return workers_[0]->sw->register_read(reg, index);
}

bm::Switch::Stats TrafficEngine::stats_total() const {
  bm::Switch::Stats s;
  for (const auto& w : workers_) {
    const auto& ws = w->sw->stats();
    s.packets_in += ws.packets_in;
    s.packets_out += ws.packets_out;
    s.drops += ws.drops;
    s.resubmits += ws.resubmits;
    s.recirculations += ws.recirculations;
    s.clones += ws.clones;
    s.parse_errors += ws.parse_errors;
    s.loop_kills += ws.loop_kills;
  }
  return s;
}

double TrafficEngine::busy_seconds(std::size_t i) const {
  if (i >= workers_.size())
    throw ConfigError("engine: no worker " + std::to_string(i));
  return static_cast<double>(
             workers_[i]->busy_ns.load(std::memory_order_relaxed)) /
         1e9;
}

double TrafficEngine::max_busy_seconds() const {
  double m = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i)
    m = std::max(m, busy_seconds(i));
  return m;
}

void TrafficEngine::reset_busy() {
  for (auto& w : workers_) w->busy_ns.store(0, std::memory_order_relaxed);
}

}  // namespace hyper4::engine
