#include "engine/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.h"

namespace hyper4::engine {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw util::ConfigError(
        "metrics: histogram bounds must be strictly increasing");
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const double micro = v * 1e6;
  sum_micro_.fetch_add(
      micro > 0 ? static_cast<std::uint64_t>(std::llround(micro)) : 0,
      std::memory_order_relaxed);
}

void Histogram::add(std::size_t bucket, std::uint64_t n, double value_sum) {
  buckets_.at(bucket).fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  const double micro = value_sum * 1e6;
  sum_micro_.fetch_add(
      micro > 0 ? static_cast<std::uint64_t>(std::llround(micro)) : 0,
      std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  return buckets_.at(i).load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_micro_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

namespace {

// Minimal JSON number formatting: integral values print without a decimal
// point; "inf" prints as a string (JSON has no infinity literal).
std::string num(double v) {
  if (std::isinf(v)) return "\"inf\"";
  std::ostringstream os;
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os << v;
  }
  return os.str();
}

}  // namespace

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Hist hs;
    hs.bounds = h->bounds();
    hs.buckets.reserve(hs.bounds.size() + 1);
    for (std::size_t i = 0; i <= hs.bounds.size(); ++i)
      hs.buckets.push_back(h->bucket_count(i));
    hs.count = h->count();
    hs.sum = h->sum();
    hs.mean = h->mean();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << v;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) os << ",";
      const double le = i < h.bounds.size()
                            ? h.bounds[i]
                            : std::numeric_limits<double>::infinity();
      os << "{\"le\":" << num(le) << ",\"count\":" << h.buckets[i] << "}";
    }
    os << "],\"count\":" << h.count << ",\"sum\":" << num(h.sum)
       << ",\"mean\":" << num(h.mean) << "}";
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace hyper4::engine
