// Flow classification for worker sharding.
//
// The engine preserves per-flow stateful semantics (registers, meters,
// per-entry counters touched by a flow) without hot-path locks by pinning
// every flow to one worker. The pin is a stable FNV-1a hash of the parsed
// 5-tuple — stable across runs, worker counts and platforms, so a given
// workload shards identically everywhere (which is what makes the
// determinism tests meaningful).
//
// Packets the lightweight classifier cannot interpret (non-IPv4, truncated)
// fall back to hashing the whole frame: still deterministic, still keeps
// byte-identical retransmissions on one worker.
#pragma once

#include <cstdint>

#include "net/packet.h"

namespace hyper4::engine {

struct FlowKey {
  bool is_ipv4 = false;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint8_t proto = 0;
  std::uint16_t src_port = 0;  // TCP/UDP only, else 0
  std::uint16_t dst_port = 0;

  bool operator==(const FlowKey&) const = default;
};

// Parse the 5-tuple from an Ethernet frame. `is_ipv4` is false when the
// frame is not a plain IPv4-over-Ethernet packet.
FlowKey flow_key(const net::Packet& p);

// Stable 64-bit hash of the key (FNV-1a over the tuple fields).
std::uint64_t flow_hash(const FlowKey& k);

// Hash of a packet: 5-tuple hash when parseable, whole-frame hash
// otherwise.
std::uint64_t flow_hash(const net::Packet& p);

}  // namespace hyper4::engine
