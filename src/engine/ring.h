// Bounded single-producer / single-consumer ring for the engine's per-shard
// packet hand-off — the hot-path replacement for the mutex-guarded
// BoundedQueue (queue.h, kept as the fallback).
//
// Layout and protocol:
//   * One ring per worker. The consumer is that worker's thread; the
//     producer side is serialized by the engine (each ring has a tiny
//     producer mutex taken outside the ring, uncontended in the dominant
//     single-injector pattern), so the ring itself only ever sees one
//     producer and one consumer.
//   * head_ (consumer cursor) and tail_ (producer cursor) live on separate
//     cache lines; each side keeps a cached copy of the other's cursor and
//     re-reads the shared atomic only when the cached value says the ring
//     is full/empty — the common batched push/pop touches one atomic store.
//   * Capacity is rounded up to a power of two (mask indexing); slots are
//     preallocated, so steady-state hand-off performs no heap allocation.
//   * Blocking is the slow path only: when the ring is full (producer) or
//     empty (consumer) the blocked side sets a waiting flag and sleeps on a
//     condvar; the other side checks the flag after publishing its cursor
//     and notifies under the mutex. All cursor/flag accesses that order the
//     sleep/notify race are seq_cst, so a publish and a waiting-flag store
//     cannot reorder past each other and no wakeup is lost.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "engine/metrics.h"

namespace hyper4::engine {

inline std::size_t ring_pow2_capacity(std::size_t want) {
  std::size_t c = 1;
  while (c < want) c <<= 1;
  return c;
}

template <typename T>
class SpscRing {
 public:
  // `producer_waits` / `consumer_waits` (optional) count slow-path sleep
  // events — the serial-fraction evidence BENCH_engine.json reports.
  explicit SpscRing(std::size_t capacity, Counter* producer_waits = nullptr,
                    Counter* consumer_waits = nullptr)
      : capacity_(ring_pow2_capacity(capacity == 0 ? 1 : capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_),
        producer_waits_(producer_waits),
        consumer_waits_(consumer_waits) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  // --- producer side -------------------------------------------------------
  // Move up to `n` items from `src` into the ring without blocking; returns
  // the number actually pushed (0 when full).
  std::size_t try_push(T* src, std::size_t n) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t + n > cached_head_ + capacity_)
      cached_head_ = head_.load(std::memory_order_acquire);
    const std::size_t can = static_cast<std::size_t>(
        std::min<std::uint64_t>(n, cached_head_ + capacity_ - t));
    for (std::size_t i = 0; i < can; ++i)
      slots_[(t + i) & mask_] = std::move(src[i]);
    if (can == 0) return 0;
    tail_.store(t + can, std::memory_order_seq_cst);
    if (consumer_waiting_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lk(mu_);
      not_empty_.notify_one();
    }
    return can;
  }

  bool try_push_one(T&& v) { return try_push(&v, 1) == 1; }

  // Blocking push of all `n` items. Returns false when the ring was closed
  // before everything was enqueued (the remainder is dropped; whatever was
  // already pushed will still be drained by the consumer).
  bool push(T* src, std::size_t n) {
    std::size_t done = 0;
    while (done < n) {
      if (closed_.load(std::memory_order_acquire)) return false;
      done += try_push(src + done, n - done);
      if (done < n) wait_not_full();
    }
    return true;
  }

  // --- consumer side -------------------------------------------------------
  // Pop up to `max` items into `out` (cleared first; capacity is reused),
  // blocking while the ring is empty. Returns false only when the ring is
  // closed *and* drained — the consumer's signal to exit.
  bool pop_batch(std::vector<T>& out, std::size_t max) {
    out.clear();
    if (max == 0) max = 1;
    for (;;) {
      const std::uint64_t h = head_.load(std::memory_order_relaxed);
      if (cached_tail_ == h)
        cached_tail_ = tail_.load(std::memory_order_acquire);
      if (cached_tail_ != h) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(max, cached_tail_ - h));
        for (std::size_t i = 0; i < n; ++i)
          out.push_back(std::move(slots_[(h + i) & mask_]));
        head_.store(h + n, std::memory_order_seq_cst);
        if (producer_waiting_.load(std::memory_order_seq_cst)) {
          std::lock_guard<std::mutex> lk(mu_);
          not_full_.notify_one();
        }
        return true;
      }
      if (closed_.load(std::memory_order_acquire)) {
        // Re-read once after observing closure: a final publish may have
        // raced the close.
        if (tail_.load(std::memory_order_acquire) == h) return false;
        cached_tail_ = tail_.load(std::memory_order_acquire);
        continue;
      }
      wait_not_empty();
    }
  }

  bool try_pop_one(T& out) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (cached_tail_ == h) cached_tail_ = tail_.load(std::memory_order_acquire);
    if (cached_tail_ == h) return false;
    out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_seq_cst);
    if (producer_waiting_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lk(mu_);
      not_full_.notify_one();
    }
    return true;
  }

  // Wakes both sides; subsequent pushes fail, pop_batch drains what remains
  // then reports closure.
  void close() {
    closed_.store(true, std::memory_order_seq_cst);
    std::lock_guard<std::mutex> lk(mu_);
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  void wait_not_full() {
    if (producer_waits_) producer_waits_->inc();
    std::unique_lock<std::mutex> lk(mu_);
    producer_waiting_.store(true, std::memory_order_seq_cst);
    not_full_.wait(lk, [&] {
      return closed_.load(std::memory_order_relaxed) ||
             tail_.load(std::memory_order_relaxed) -
                     head_.load(std::memory_order_relaxed) <
                 capacity_;
    });
    producer_waiting_.store(false, std::memory_order_seq_cst);
  }

  void wait_not_empty() {
    if (consumer_waits_) consumer_waits_->inc();
    std::unique_lock<std::mutex> lk(mu_);
    consumer_waiting_.store(true, std::memory_order_seq_cst);
    not_empty_.wait(lk, [&] {
      return closed_.load(std::memory_order_relaxed) ||
             tail_.load(std::memory_order_relaxed) !=
                 head_.load(std::memory_order_relaxed);
    });
    consumer_waiting_.store(false, std::memory_order_seq_cst);
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::vector<T> slots_;
  Counter* producer_waits_;
  Counter* consumer_waits_;

  // Consumer cache line: cursor + producer-cursor cache.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;  // consumer-private
  // Producer cache line.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;  // producer-private
  // Slow path (shared, cold).
  alignas(64) std::atomic<bool> closed_{false};
  std::atomic<bool> producer_waiting_{false};
  std::atomic<bool> consumer_waiting_{false};
  std::mutex mu_;
  std::condition_variable not_empty_, not_full_;
};

}  // namespace hyper4::engine
