// Per-worker packet-buffer arena: kills the per-packet allocation/copy on
// the injection path by recycling net::Packet buffers through the result
// path.
//
// Lifecycle of a buffer: inject_batch() acquires one (copying the caller's
// bytes into reused capacity), the Job carries it through the shard ring to
// the worker, and after Switch::inject() the worker recycles it back over a
// dedicated SPSC return ring (worker = single producer; the injector,
// serialized by the engine's inject lock, = single consumer). A fixed stock
// sized above the maximum in-flight count (shard ring capacity + worker
// batch) seeds circulation, so once every buffer has grown to the workload's
// packet size the steady-state acquire never touches the heap — enforced by
// tests/engine_alloc_test.cpp with the operator-new counter pattern.
//
// Overflow on the return ring (possible when callers also push extra
// buffers through TrafficEngine::inject, which moves the caller's own
// packet into circulation) simply drops the buffer — correct, just a lost
// recycling opportunity, counted nowhere because it cannot occur on the
// inject_batch steady state the allocation gate defends.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/ring.h"
#include "net/packet.h"

namespace hyper4::engine {

class PacketArena {
 public:
  // `fresh_allocs` (optional) counts acquires that found neither a recycled
  // buffer nor stock — each one is a heap allocation on the inject path.
  explicit PacketArena(std::size_t stock, Counter* fresh_allocs = nullptr)
      : returns_(ring_pow2_capacity(stock == 0 ? 1 : 2 * stock)),
        fresh_allocs_(fresh_allocs) {
    stock_.resize(stock);
  }

  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  // Injector side: a buffer holding a copy of `bytes`, reusing recycled
  // capacity when available.
  net::Packet acquire(std::span<const std::uint8_t> bytes) {
    net::Packet p;
    if (!returns_.try_pop_one(p)) {
      if (!stock_.empty()) {
        p = std::move(stock_.back());
        stock_.pop_back();
      } else if (fresh_allocs_) {
        fresh_allocs_->inc();
      }
    }
    p.assign(bytes);
    return p;
  }

  // Worker side: hand a spent buffer back (dropped when the return ring is
  // full).
  void recycle(net::Packet&& p) { returns_.try_push_one(std::move(p)); }

  // Buffers currently parked (diagnostics/tests).
  std::size_t idle() const { return stock_.size() + returns_.size(); }

 private:
  SpscRing<net::Packet> returns_;
  std::vector<net::Packet> stock_;  // injector-private free list
  Counter* fresh_allocs_;
};

}  // namespace hyper4::engine
