#include "obs/export.h"

#include <sstream>

namespace hyper4::obs {

namespace {

const char* index_kind_str(std::uint8_t k) {
  switch (k) {
    case 0: return "exact";
    case 1: return "lpm";
    case 2: return "ternary";
  }
  return "?";
}

void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

std::string format_event(const TraceEvent& e, const PipelineTracer& t) {
  std::ostringstream os;
  os << "[" << e.seq << "] " << event_kind_name(e.kind);
  switch (e.kind) {
    case EventKind::kInject:
    case EventKind::kEmit:
      os << " port=" << e.port << " bytes=" << e.aux;
      break;
    case EventKind::kTraversalStart:
    case EventKind::kEgressStart:
      os << " port=" << e.port << " itype=" << e.aux;
      break;
    case EventKind::kParserExtract:
      os << " " << t.instance_name(e.id);
      break;
    case EventKind::kParserAccept:
      os << " payload_offset=" << e.aux;
      break;
    case EventKind::kTableApply:
      os << " " << t.table_name(e.id) << (e.hit() ? " hit" : " miss");
      if (e.hit()) os << " entry=" << e.handle;
      os << " index=" << index_kind_str(e.index_kind());
      if (e.aux != kNoAction) os << " action=" << t.action_name(e.aux);
      if (e.egress()) os << " (egress)";
      break;
    case EventKind::kActionExec:
      os << " " << t.action_name(e.id) << " args=" << e.aux;
      break;
    case EventKind::kPrimitive:
      os << " op=" << e.id;
      break;
    case EventKind::kCloneI2E:
    case EventKind::kCloneE2E:
      os << " session=" << e.handle << " port=" << e.port;
      break;
    case EventKind::kMulticastCopy:
      os << " group=" << e.handle << " port=" << e.port
         << " rid=" << e.aux;
      break;
    case EventKind::kUnicast:
      os << " port=" << e.port;
      break;
    case EventKind::kDeparse:
      os << " bytes=" << e.aux;
      break;
    case EventKind::kDrop:
      if (e.egress()) os << " (egress)";
      break;
    case EventKind::kParseError:
    case EventKind::kResubmit:
    case EventKind::kRecirculate:
    case EventKind::kLoopKill:
      break;
  }
  if (e.dur_ns) os << " " << e.dur_ns << "ns";
  return os.str();
}

std::string format_events(const PipelineTracer& t, std::size_t limit) {
  const std::vector<TraceEvent> evs = t.events();
  const std::size_t n = evs.size();
  const std::size_t start = (limit && limit < n) ? n - limit : 0;
  std::ostringstream os;
  for (std::size_t i = start; i < n; ++i)
    os << format_event(evs[i], t) << "\n";
  if (t.dropped())
    os << "(" << t.dropped() << " older events overwritten by ring wrap)\n";
  return os.str();
}

namespace {

const char* event_category(EventKind k) {
  switch (k) {
    case EventKind::kParserExtract:
    case EventKind::kParserAccept:
    case EventKind::kParseError:
      return "parser";
    case EventKind::kTableApply:
      return "table";
    case EventKind::kActionExec:
    case EventKind::kPrimitive:
      return "action";
    case EventKind::kResubmit:
    case EventKind::kRecirculate:
    case EventKind::kCloneI2E:
    case EventKind::kCloneE2E:
    case EventKind::kMulticastCopy:
    case EventKind::kUnicast:
    case EventKind::kDrop:
    case EventKind::kLoopKill:
      return "tm";
    case EventKind::kDeparse:
      return "deparse";
    default:
      return "packet";
  }
}

}  // namespace

std::string chrome_trace_json(
    const std::vector<std::pair<std::string, const PipelineTracer*>>&
        tracers) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](auto&& fn) {
    if (!first) os << ",";
    first = false;
    fn();
  };
  for (std::size_t pid = 0; pid < tracers.size(); ++pid) {
    const auto& [pname, tr] = tracers[pid];
    emit([&] {
      os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"name\":";
      append_json_string(os, pname);
      os << "}}";
    });
    if (!tr) continue;
    for (const TraceEvent& e : tr->events()) {
      emit([&] {
        std::string name;
        switch (e.kind) {
          case EventKind::kTableApply:
            name = tr->table_name(e.id) + (e.hit() ? " hit" : " miss");
            break;
          case EventKind::kActionExec:
            name = tr->action_name(e.id);
            break;
          case EventKind::kParserExtract:
            name = "extract " + tr->instance_name(e.id);
            break;
          default:
            name = event_kind_name(e.kind);
        }
        os << "{\"name\":";
        append_json_string(os, name);
        os << ",\"cat\":\"" << event_category(e.kind) << "\"";
        const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
        if (e.dur_ns) {
          // Complete slice: start so the slice *ends* at the recorded
          // timestamp (events are recorded after the work they time).
          const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
          os << ",\"ph\":\"X\",\"ts\":" << (ts_us - dur_us)
             << ",\"dur\":" << dur_us;
        } else {
          os << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts_us;
        }
        os << ",\"pid\":" << pid << ",\"tid\":" << e.seq
           << ",\"args\":{\"port\":" << e.port << ",\"aux\":" << e.aux
           << ",\"handle\":" << e.handle << "}}";
      });
    }
  }
  os << "]}\n";
  return os.str();
}

namespace {

void hist_json(std::ostringstream& os, const LatencyHist& h) {
  os << "{\"count\":" << h.count << ",\"sum_ns\":" << h.sum_ns
     << ",\"mean_ns\":"
     << (h.count ? static_cast<double>(h.sum_ns) /
                       static_cast<double>(h.count)
                 : 0.0)
     << ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < LatencyHist::kBuckets; ++i) {
    if (!h.buckets[i]) continue;
    if (!first) os << ",";
    first = false;
    const std::uint64_t le = i == 0 ? 0 : (1ull << i) - 1;
    os << "{\"le_ns\":" << le << ",\"count\":" << h.buckets[i] << "}";
  }
  os << "]}";
}

}  // namespace

std::string profile_json(const StageProfile& p,
                         const std::vector<std::string>& table_names) {
  std::ostringstream os;
  os << "{\"stages\":{";
  for (std::size_t i = 0; i < kNumStages; ++i) {
    if (i) os << ",";
    os << "\"" << stage_name(static_cast<Stage>(i)) << "\":";
    hist_json(os, p.stages[i]);
  }
  os << "},\"tables\":{";
  bool first = true;
  for (std::size_t i = 0; i < p.per_table.size(); ++i) {
    if (!p.per_table[i].count) continue;
    if (!first) os << ",";
    first = false;
    append_json_string(
        os, i < table_names.size() ? table_names[i] : std::to_string(i));
    os << ":";
    hist_json(os, p.per_table[i]);
  }
  os << "}}\n";
  return os.str();
}

}  // namespace hyper4::obs
