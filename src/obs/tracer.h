// Pipeline observability: structured tracing + per-stage profiling for the
// behavioral-model switch.
//
// A PipelineTracer is attached to a bm::Switch as a raw pointer; the switch
// hot path pays exactly one predictable `if (tracer_)` branch per hook site
// when tracing is off. When on, every hook appends one fixed-size POD
// TraceEvent to a preallocated ring buffer (the ring wraps, keeping the most
// recent `capacity` events and counting the overwritten ones) and/or feeds a
// per-stage nanosecond histogram. Nothing in the record path allocates —
// that is enforced by tests/obs_overhead_test.cpp with a counting
// operator new.
//
// This header is self-contained on purpose: src/bm links against hp4_obs,
// never the other way around, so the tracer cannot know about switch types.
// The switch *binds* its table/action/instance name vectors into the tracer
// once at attach time; events then carry small integer ids that exporters
// and the hp4 trace decoder resolve through those bound names.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace hyper4::obs {

// What happened. Values are stable — golden trace fixtures and the Chrome
// exporter depend on them only through names, but keep appends at the end.
enum class EventKind : std::uint8_t {
  kInject = 0,       // packet entered the switch     port, aux=bytes
  kTraversalStart,   // parser-side work item begins  port, aux=instance type
  kEgressStart,      // egress-side work item begins  port=egress, aux=itype
  kParserExtract,    // header extracted              id=instance
  kParserAccept,     // parser reached accept         aux=payload offset
  kParseError,       // parser dropped the packet
  kTableApply,       // table looked up               id=table, handle=entry,
                     //   flags hit/egress + index kind, aux=executed action
                     //   id (kNoAction when the miss had no default action)
  kActionExec,       // action body ran               id=action, aux=arg count
  kPrimitive,        // one primitive executed        id=op code
  kResubmit,         // TM: back to the parser
  kRecirculate,      // TM: deparsed bytes re-parsed
  kCloneI2E,         // TM: ingress-to-egress clone   handle=session, port
  kCloneE2E,         // TM: egress-to-egress clone    handle=session, port
  kMulticastCopy,    // TM: one copy of a group       handle=group, port
  kUnicast,          // TM: scheduled to egress       port=egress_spec
  kDrop,             // packet instance dropped
  kLoopKill,         // traversal budget exhausted
  kDeparse,          // headers serialized            aux=bytes out
  kEmit,             // packet left the switch        port, aux=bytes
};

const char* event_kind_name(EventKind k);

// flags bits
inline constexpr std::uint8_t kFlagHit = 1u << 0;
inline constexpr std::uint8_t kFlagEgress = 1u << 1;
// Index kind of the applied table (RuntimeTable::IndexKind), 2 bits.
inline constexpr std::uint8_t kFlagIndexShift = 2;
inline constexpr std::uint8_t kFlagIndexMask = 0x3u << kFlagIndexShift;

// Sentinel for "no action ran" in kTableApply::aux.
inline constexpr std::uint64_t kNoAction = ~0ull;

// Fixed-size POD record; 40 bytes, trivially copyable, ring-buffer friendly.
struct TraceEvent {
  EventKind kind = EventKind::kInject;
  std::uint8_t flags = 0;
  std::uint16_t port = 0;
  std::uint32_t id = 0;       // table / action / instance / primitive id
  std::uint32_t seq = 0;      // work-item ordinal within this tracer
  std::uint32_t dur_ns = 0;   // duration, 0 when timestamps are off
  std::uint64_t handle = 0;   // entry handle / clone session / mcast group
  std::uint64_t aux = 0;      // kind-specific payload (see EventKind)
  std::uint64_t ts_ns = 0;    // since tracer construction, 0 when off

  bool hit() const { return flags & kFlagHit; }
  bool egress() const { return flags & kFlagEgress; }
  std::uint8_t index_kind() const {
    return static_cast<std::uint8_t>((flags & kFlagIndexMask) >>
                                     kFlagIndexShift);
  }
};
static_assert(sizeof(TraceEvent) == 40, "keep TraceEvent cache-friendly");

// Pipeline stages the profiler distinguishes. kDeparse covers checksum
// update + deparse (they run back to back and are both "serialize" work).
enum class Stage : std::uint8_t {
  kParser = 0,
  kLookup,   // table lookups only (the compiled-index hot path)
  kAction,   // action body execution
  kTm,       // traffic-manager bookkeeping (clones, resubmit, queueing)
  kDeparse,
};
inline constexpr std::size_t kNumStages = 5;
const char* stage_name(Stage s);

// Log2-bucketed nanosecond histogram: bucket 0 counts 0ns, bucket i counts
// [2^(i-1), 2^i - 1] ns. 40 buckets cover > 500 s. Plain (non-atomic)
// counters — a tracer belongs to exactly one switch, and engine workers
// only touch their replica's tracer under the replica mutex.
struct LatencyHist {
  static constexpr std::size_t kBuckets = 40;
  std::uint64_t buckets[kBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;

  void observe(std::uint64_t ns);
  void merge(const LatencyHist& o);
  void reset();
};

// Upper bounds matching LatencyHist buckets for export into
// engine::MetricsRegistry: {0, 1, 3, 7, ..., 2^(kBuckets-2) - 1}; the
// registry's implicit +inf bucket aligns with our last bucket.
std::vector<double> latency_bucket_bounds();

// Per-stage + per-table nanosecond profile.
struct StageProfile {
  LatencyHist stages[kNumStages];
  std::vector<LatencyHist> per_table;  // sized at bind()

  void merge(const StageProfile& o);
  void reset();
};

struct TracerOptions {
  std::size_t capacity = 1u << 16;  // ring slots (events)
  bool record_events = true;        // fill the ring
  bool record_primitives = false;   // also one event per primitive (chatty)
  bool profile = false;             // feed StageProfile histograms
  // Stamp ts_ns/dur_ns on events. Implied by profile. Off = deterministic
  // traces (golden fixtures) and no clock reads on the hot path.
  bool timestamps = false;
};

class PipelineTracer {
 public:
  explicit PipelineTracer(TracerOptions opts = {});

  // Called by Switch::set_tracer: copies the program's name tables so the
  // tracer (and everything downstream: exporters, decoder) can resolve ids
  // without reaching back into bm. Re-binding with different names clears
  // recorded events (ids would dangle).
  void bind(std::vector<std::string> table_names,
            std::vector<std::string> action_names,
            std::vector<std::string> instance_names);

  const TracerOptions& options() const { return opts_; }
  bool recording() const { return opts_.record_events; }
  bool profiling() const { return opts_.profile; }
  bool timing() const { return opts_.timestamps || opts_.profile; }

  // ---- hot path (allocation-free) ----------------------------------------
  // Starts a new work item (parser or egress traversal); subsequent events
  // carry its ordinal. Returns the ordinal.
  std::uint32_t begin_work(EventKind k, std::uint16_t port, std::uint64_t aux);
  void record(EventKind k, std::uint8_t flags, std::uint16_t port,
              std::uint32_t id, std::uint64_t handle, std::uint64_t aux,
              std::uint32_t dur_ns = 0);
  void observe_stage(Stage s, std::uint64_t ns) {
    profile_.stages[static_cast<std::size_t>(s)].observe(ns);
  }
  void observe_table(std::size_t table_id, std::uint64_t ns) {
    if (table_id < profile_.per_table.size())
      profile_.per_table[table_id].observe(ns);
  }
  // Monotonic nanoseconds since tracer construction.
  std::uint64_t clock_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  // ---- cold path ---------------------------------------------------------
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  // Total events ever recorded / overwritten by ring wrap.
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const {
    return total_ - static_cast<std::uint64_t>(size_);
  }
  // Events oldest-first (chronological).
  std::vector<TraceEvent> events() const;
  void clear();  // events only; profile survives

  const StageProfile& profile() const { return profile_; }
  void reset_profile() { profile_.reset(); }

  const std::vector<std::string>& table_names() const { return table_names_; }
  const std::vector<std::string>& action_names() const {
    return action_names_;
  }
  const std::vector<std::string>& instance_names() const {
    return instance_names_;
  }
  const std::string& table_name(std::uint32_t id) const;
  const std::string& action_name(std::uint64_t id) const;
  const std::string& instance_name(std::uint32_t id) const;

 private:
  TracerOptions opts_;
  std::vector<TraceEvent> ring_;  // preallocated to opts_.capacity
  std::size_t head_ = 0;          // next write slot
  std::size_t size_ = 0;          // valid events (<= capacity)
  std::uint64_t total_ = 0;
  std::uint32_t cur_seq_ = 0;
  StageProfile profile_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::string> table_names_, action_names_, instance_names_;
};

}  // namespace hyper4::obs
