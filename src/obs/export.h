// Exporters for PipelineTracer data:
//  - format_event / format_events: one-line human-readable dump (CLI).
//  - chrome_trace_json: Chrome trace_event format ("Trace Event Format",
//    JSON object with a traceEvents array) loadable in about://tracing /
//    Perfetto. Each named tracer becomes one process row.
//  - profile_json: per-stage and per-table latency histograms as JSON.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/tracer.h"

namespace hyper4::obs {

// "[3] table_apply ipv4_lpm hit entry=2 index=lpm action=set_nhop 412ns"
std::string format_event(const TraceEvent& e, const PipelineTracer& t);

// The most recent `limit` events, one per line (0 = all retained).
std::string format_events(const PipelineTracer& t, std::size_t limit = 0);

// Chrome trace_event JSON for one or more tracers; the pair's first member
// names the process row ("native", "persona", "worker0", ...). Events with
// a duration export as complete ("X") slices, the rest as instants.
std::string chrome_trace_json(
    const std::vector<std::pair<std::string, const PipelineTracer*>>& tracers);

// {"stages":{name:{count,sum_ns,mean_ns,buckets:[{le_ns,count},...]}},
//  "tables":{...}} — zero-count buckets are omitted.
std::string profile_json(const StageProfile& p,
                         const std::vector<std::string>& table_names);

}  // namespace hyper4::obs
