#include "obs/tracer.h"

#include <bit>

namespace hyper4::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kInject: return "inject";
    case EventKind::kTraversalStart: return "traversal_start";
    case EventKind::kEgressStart: return "egress_start";
    case EventKind::kParserExtract: return "parser_extract";
    case EventKind::kParserAccept: return "parser_accept";
    case EventKind::kParseError: return "parse_error";
    case EventKind::kTableApply: return "table_apply";
    case EventKind::kActionExec: return "action_exec";
    case EventKind::kPrimitive: return "primitive";
    case EventKind::kResubmit: return "resubmit";
    case EventKind::kRecirculate: return "recirculate";
    case EventKind::kCloneI2E: return "clone_i2e";
    case EventKind::kCloneE2E: return "clone_e2e";
    case EventKind::kMulticastCopy: return "mcast_copy";
    case EventKind::kUnicast: return "unicast";
    case EventKind::kDrop: return "drop";
    case EventKind::kLoopKill: return "loop_kill";
    case EventKind::kDeparse: return "deparse";
    case EventKind::kEmit: return "emit";
  }
  return "?";
}

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kParser: return "parser";
    case Stage::kLookup: return "lookup";
    case Stage::kAction: return "action";
    case Stage::kTm: return "tm";
    case Stage::kDeparse: return "deparse";
  }
  return "?";
}

void LatencyHist::observe(std::uint64_t ns) {
  std::size_t idx =
      ns == 0 ? 0 : static_cast<std::size_t>(std::bit_width(ns));
  if (idx >= kBuckets) idx = kBuckets - 1;
  ++buckets[idx];
  ++count;
  sum_ns += ns;
}

void LatencyHist::merge(const LatencyHist& o) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += o.buckets[i];
  count += o.count;
  sum_ns += o.sum_ns;
}

void LatencyHist::reset() { *this = LatencyHist{}; }

std::vector<double> latency_bucket_bounds() {
  std::vector<double> b;
  b.reserve(LatencyHist::kBuckets - 1);
  b.push_back(0.0);
  for (std::size_t i = 1; i + 1 < LatencyHist::kBuckets; ++i)
    b.push_back(static_cast<double>((1ull << i) - 1));
  return b;
}

void StageProfile::merge(const StageProfile& o) {
  for (std::size_t i = 0; i < kNumStages; ++i) stages[i].merge(o.stages[i]);
  if (per_table.size() < o.per_table.size())
    per_table.resize(o.per_table.size());
  for (std::size_t i = 0; i < o.per_table.size(); ++i)
    per_table[i].merge(o.per_table[i]);
}

void StageProfile::reset() {
  for (auto& s : stages) s.reset();
  for (auto& t : per_table) t.reset();
}

PipelineTracer::PipelineTracer(TracerOptions opts)
    : opts_(opts),
      ring_(opts.record_events ? (opts.capacity ? opts.capacity : 1) : 0),
      epoch_(std::chrono::steady_clock::now()) {}

void PipelineTracer::bind(std::vector<std::string> table_names,
                          std::vector<std::string> action_names,
                          std::vector<std::string> instance_names) {
  if (table_names != table_names_ || action_names != action_names_ ||
      instance_names != instance_names_) {
    clear();
  }
  table_names_ = std::move(table_names);
  action_names_ = std::move(action_names);
  instance_names_ = std::move(instance_names);
  profile_.per_table.resize(table_names_.size());
}

std::uint32_t PipelineTracer::begin_work(EventKind k, std::uint16_t port,
                                         std::uint64_t aux) {
  ++cur_seq_;
  record(k, 0, port, 0, 0, aux);
  return cur_seq_;
}

void PipelineTracer::record(EventKind k, std::uint8_t flags,
                            std::uint16_t port, std::uint32_t id,
                            std::uint64_t handle, std::uint64_t aux,
                            std::uint32_t dur_ns) {
  if (ring_.empty()) return;  // profile-only tracer: nothing to retain
  ++total_;
  TraceEvent& e = ring_[head_];
  e.kind = k;
  e.flags = flags;
  e.port = port;
  e.id = id;
  e.seq = cur_seq_;
  e.dur_ns = dur_ns;
  e.handle = handle;
  e.aux = aux;
  e.ts_ns = opts_.timestamps ? clock_ns() : 0;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (size_ < ring_.size()) ++size_;
}

std::vector<TraceEvent> PipelineTracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // head_ is the next write slot; the oldest retained event is at head_
  // when the ring has wrapped, else at 0.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

void PipelineTracer::clear() {
  head_ = 0;
  size_ = 0;
  total_ = 0;
  cur_seq_ = 0;
}

namespace {
const std::string kUnknown = "?";
}  // namespace

const std::string& PipelineTracer::table_name(std::uint32_t id) const {
  return id < table_names_.size() ? table_names_[id] : kUnknown;
}

const std::string& PipelineTracer::action_name(std::uint64_t id) const {
  return id < action_names_.size()
             ? action_names_[static_cast<std::size_t>(id)]
             : kUnknown;
}

const std::string& PipelineTracer::instance_name(std::uint32_t id) const {
  return id < instance_names_.size() ? instance_names_[id] : kUnknown;
}

}  // namespace hyper4::obs
