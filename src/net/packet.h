// Raw packet buffer plus convenience accessors.
//
// A Packet is just bytes on a wire; all protocol interpretation lives in
// header views (headers.h) or in the P4 parser (src/bm). Packets compare
// byte-for-byte, which is how the native-vs-emulated equivalence tests
// decide success.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hyper4::net {

class Packet {
 public:
  Packet() = default;
  explicit Packet(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}

  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }

  std::span<const std::uint8_t> bytes() const { return bytes_; }
  std::span<std::uint8_t> mutable_bytes() { return bytes_; }

  std::uint8_t at(std::size_t i) const { return bytes_.at(i); }

  void append(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  // Replace the contents with a copy of `data`, reusing the existing
  // capacity — the engine's packet arena recycles buffers through this, so
  // a warmed buffer absorbs a new packet without touching the heap.
  void assign(std::span<const std::uint8_t> data) {
    bytes_.assign(data.begin(), data.end());
  }
  std::size_t capacity() const { return bytes_.capacity(); }
  void append_byte(std::uint8_t b) { bytes_.push_back(b); }

  // Drop everything past `len` bytes (P4 truncate primitive).
  void truncate(std::size_t len) {
    if (bytes_.size() > len) bytes_.resize(len);
  }

  bool operator==(const Packet&) const = default;

  // Hex dump, two digits per byte, space-separated every 4 bytes.
  std::string to_hex() const;

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace hyper4::net
