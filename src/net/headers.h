// Protocol header constants and packet builders for the protocols the
// paper's four network functions operate on: Ethernet, ARP, IPv4, ICMP,
// TCP, UDP.
//
// These builders produce ground-truth packets for tests, examples and the
// simulator; the P4 programs themselves define their own header layouts in
// the IR and never depend on this file.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "net/packet.h"

namespace hyper4::net {

using MacAddr = std::array<std::uint8_t, 6>;

// Parse "aa:bb:cc:dd:ee:ff".
MacAddr mac_from_string(const std::string& s);
std::string mac_to_string(const MacAddr& m);
std::uint64_t mac_to_u64(const MacAddr& m);
MacAddr mac_from_u64(std::uint64_t v);

// Parse dotted quad "10.0.0.1" into host-order uint32.
std::uint32_t ipv4_from_string(const std::string& s);
std::string ipv4_to_string(std::uint32_t ip);

// EtherTypes / protocol numbers.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;
inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;
inline constexpr std::uint16_t kArpOpRequest = 1;
inline constexpr std::uint16_t kArpOpReply = 2;

inline constexpr std::size_t kEthHeaderLen = 14;
inline constexpr std::size_t kArpHeaderLen = 28;
inline constexpr std::size_t kIpv4HeaderLen = 20;  // no options
inline constexpr std::size_t kTcpHeaderLen = 20;   // no options
inline constexpr std::size_t kUdpHeaderLen = 8;
inline constexpr std::size_t kIcmpHeaderLen = 8;

struct EthHeader {
  MacAddr dst{};
  MacAddr src{};
  std::uint16_t ethertype = 0;
};

struct ArpHeader {
  std::uint16_t htype = 1;       // Ethernet
  std::uint16_t ptype = kEtherTypeIpv4;
  std::uint8_t hlen = 6;
  std::uint8_t plen = 4;
  std::uint16_t oper = kArpOpRequest;
  MacAddr sha{};
  std::uint32_t spa = 0;
  MacAddr tha{};
  std::uint32_t tpa = 0;
};

struct Ipv4Header {
  std::uint8_t version = 4;
  std::uint8_t ihl = 5;
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_len = kIpv4HeaderLen;
  std::uint16_t identification = 0;
  std::uint16_t flags_frag = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;  // 0 = compute on serialize
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = kUdpHeaderLen;
  std::uint16_t checksum = 0;
};

struct IcmpHeader {
  std::uint8_t type = 8;  // echo request
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;  // 0 = compute on serialize
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;
};

// Serializers append to a packet in network order.
void append_eth(Packet& p, const EthHeader& h);
void append_arp(Packet& p, const ArpHeader& h);
// Appends the IPv4 header; if h.checksum == 0 the correct checksum is
// computed over the serialized header.
void append_ipv4(Packet& p, Ipv4Header h);
void append_tcp(Packet& p, const TcpHeader& h);
void append_udp(Packet& p, const UdpHeader& h);
void append_icmp(Packet& p, IcmpHeader h,
                 std::span<const std::uint8_t> payload = {});

// Convenience whole-packet builders (payload appended last; ipv4.total_len
// is fixed up automatically from the actual sizes).
Packet make_arp_request(const MacAddr& sender_mac, std::uint32_t sender_ip,
                        std::uint32_t target_ip);
Packet make_arp_reply(const MacAddr& sender_mac, std::uint32_t sender_ip,
                      const MacAddr& target_mac, std::uint32_t target_ip);
Packet make_ipv4_tcp(const EthHeader& eth, Ipv4Header ip, TcpHeader tcp,
                     std::size_t payload_len = 0, std::uint8_t fill = 0);
Packet make_ipv4_udp(const EthHeader& eth, Ipv4Header ip, UdpHeader udp,
                     std::size_t payload_len = 0, std::uint8_t fill = 0);
Packet make_ipv4_icmp_echo(const EthHeader& eth, Ipv4Header ip, IcmpHeader icmp,
                           std::size_t payload_len = 0, std::uint8_t fill = 0);

// Lightweight decoders for assertions in tests (return nullopt when the
// packet is too short).
std::optional<EthHeader> read_eth(const Packet& p);
std::optional<ArpHeader> read_arp(const Packet& p, std::size_t offset = kEthHeaderLen);
std::optional<Ipv4Header> read_ipv4(const Packet& p, std::size_t offset = kEthHeaderLen);
std::optional<TcpHeader> read_tcp(const Packet& p, std::size_t offset);
std::optional<UdpHeader> read_udp(const Packet& p, std::size_t offset);

}  // namespace hyper4::net
