// RFC 1071 internet checksum (the "csum16" field-list calculation in P4-14).
#pragma once

#include <cstdint>
#include <span>

namespace hyper4::net {

// One's-complement sum over 16-bit big-endian words; odd trailing byte is
// padded with a zero low byte. Returns the final complemented checksum.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace hyper4::net
