#include "net/packet.h"

namespace hyper4::net {

std::string Packet::to_hex() const {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes_.size() * 2 + bytes_.size() / 4);
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    if (i != 0 && i % 4 == 0) out.push_back(' ');
    out.push_back(kHex[bytes_[i] >> 4]);
    out.push_back(kHex[bytes_[i] & 0xf]);
  }
  return out;
}

}  // namespace hyper4::net
