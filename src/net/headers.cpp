#include "net/headers.h"

#include <cstdio>

#include "net/checksum.h"
#include "util/error.h"
#include "util/strings.h"

namespace hyper4::net {

namespace {

// Ethernet enforces a 60-byte minimum frame (before FCS); short frames are
// zero-padded on the wire. The whole-packet builders reproduce this, which
// also guarantees the HyPer4 parse ladder can always extract a program's
// rounded byte requirement (see DESIGN.md).
constexpr std::size_t kMinFrame = 60;

void pad_min_frame(Packet& p) {
  while (p.size() < kMinFrame) p.append_byte(0);
}

void put16(Packet& p, std::uint16_t v) {
  p.append_byte(static_cast<std::uint8_t>(v >> 8));
  p.append_byte(static_cast<std::uint8_t>(v & 0xff));
}

void put32(Packet& p, std::uint32_t v) {
  put16(p, static_cast<std::uint16_t>(v >> 16));
  put16(p, static_cast<std::uint16_t>(v & 0xffff));
}

std::uint16_t get16(std::span<const std::uint8_t> b, std::size_t i) {
  return static_cast<std::uint16_t>(b[i] << 8 | b[i + 1]);
}

std::uint32_t get32(std::span<const std::uint8_t> b, std::size_t i) {
  return static_cast<std::uint32_t>(get16(b, i)) << 16 | get16(b, i + 2);
}

}  // namespace

MacAddr mac_from_string(const std::string& s) {
  auto parts = util::split_keep_empty(s, ':');
  if (parts.size() != 6)
    throw util::ParseError("mac_from_string: expected 6 octets in '" + s + "'");
  MacAddr m{};
  for (std::size_t i = 0; i < 6; ++i) {
    m[i] = static_cast<std::uint8_t>(util::parse_uint("0x" + parts[i]));
  }
  return m;
}

std::string mac_to_string(const MacAddr& m) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1],
                m[2], m[3], m[4], m[5]);
  return buf;
}

std::uint64_t mac_to_u64(const MacAddr& m) {
  std::uint64_t v = 0;
  for (auto b : m) v = (v << 8) | b;
  return v;
}

MacAddr mac_from_u64(std::uint64_t v) {
  MacAddr m{};
  for (std::size_t i = 6; i-- > 0;) {
    m[i] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return m;
}

std::uint32_t ipv4_from_string(const std::string& s) {
  auto parts = util::split_keep_empty(s, '.');
  if (parts.size() != 4)
    throw util::ParseError("ipv4_from_string: expected 4 octets in '" + s + "'");
  std::uint32_t ip = 0;
  for (const auto& part : parts) {
    auto v = util::parse_uint(part);
    if (v > 255) throw util::ParseError("ipv4_from_string: octet > 255");
    ip = (ip << 8) | static_cast<std::uint32_t>(v);
  }
  return ip;
}

std::string ipv4_to_string(std::uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

void append_eth(Packet& p, const EthHeader& h) {
  p.append(h.dst);
  p.append(h.src);
  put16(p, h.ethertype);
}

void append_arp(Packet& p, const ArpHeader& h) {
  put16(p, h.htype);
  put16(p, h.ptype);
  p.append_byte(h.hlen);
  p.append_byte(h.plen);
  put16(p, h.oper);
  p.append(h.sha);
  put32(p, h.spa);
  p.append(h.tha);
  put32(p, h.tpa);
}

void append_ipv4(Packet& p, Ipv4Header h) {
  Packet hdr;
  hdr.append_byte(static_cast<std::uint8_t>(h.version << 4 | (h.ihl & 0xf)));
  hdr.append_byte(h.dscp_ecn);
  put16(hdr, h.total_len);
  put16(hdr, h.identification);
  put16(hdr, h.flags_frag);
  hdr.append_byte(h.ttl);
  hdr.append_byte(h.protocol);
  put16(hdr, h.checksum);
  put32(hdr, h.src);
  put32(hdr, h.dst);
  if (h.checksum == 0) {
    const std::uint16_t c = internet_checksum(hdr.bytes());
    hdr.mutable_bytes()[10] = static_cast<std::uint8_t>(c >> 8);
    hdr.mutable_bytes()[11] = static_cast<std::uint8_t>(c & 0xff);
  }
  p.append(hdr.bytes());
}

void append_tcp(Packet& p, const TcpHeader& h) {
  put16(p, h.src_port);
  put16(p, h.dst_port);
  put32(p, h.seq);
  put32(p, h.ack);
  p.append_byte(static_cast<std::uint8_t>(h.data_offset << 4));
  p.append_byte(h.flags);
  put16(p, h.window);
  put16(p, h.checksum);
  put16(p, h.urgent);
}

void append_udp(Packet& p, const UdpHeader& h) {
  put16(p, h.src_port);
  put16(p, h.dst_port);
  put16(p, h.length);
  put16(p, h.checksum);
}

void append_icmp(Packet& p, IcmpHeader h, std::span<const std::uint8_t> payload) {
  Packet hdr;
  hdr.append_byte(h.type);
  hdr.append_byte(h.code);
  put16(hdr, h.checksum);
  put16(hdr, h.identifier);
  put16(hdr, h.sequence);
  hdr.append(payload);
  if (h.checksum == 0) {
    const std::uint16_t c = internet_checksum(hdr.bytes());
    hdr.mutable_bytes()[2] = static_cast<std::uint8_t>(c >> 8);
    hdr.mutable_bytes()[3] = static_cast<std::uint8_t>(c & 0xff);
  }
  p.append(hdr.bytes());
}

Packet make_arp_request(const MacAddr& sender_mac, std::uint32_t sender_ip,
                        std::uint32_t target_ip) {
  Packet p;
  EthHeader eth;
  eth.dst = MacAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
  eth.src = sender_mac;
  eth.ethertype = kEtherTypeArp;
  append_eth(p, eth);
  ArpHeader arp;
  arp.oper = kArpOpRequest;
  arp.sha = sender_mac;
  arp.spa = sender_ip;
  arp.tha = MacAddr{};
  arp.tpa = target_ip;
  append_arp(p, arp);
  pad_min_frame(p);
  return p;
}

Packet make_arp_reply(const MacAddr& sender_mac, std::uint32_t sender_ip,
                      const MacAddr& target_mac, std::uint32_t target_ip) {
  Packet p;
  EthHeader eth;
  eth.dst = target_mac;
  eth.src = sender_mac;
  eth.ethertype = kEtherTypeArp;
  append_eth(p, eth);
  ArpHeader arp;
  arp.oper = kArpOpReply;
  arp.sha = sender_mac;
  arp.spa = sender_ip;
  arp.tha = target_mac;
  arp.tpa = target_ip;
  append_arp(p, arp);
  pad_min_frame(p);
  return p;
}

namespace {

Packet make_ipv4_l4(const EthHeader& eth, Ipv4Header ip, std::size_t l4_len,
                    std::size_t payload_len, std::uint8_t fill,
                    const auto& append_l4) {
  Packet p;
  EthHeader e = eth;
  e.ethertype = kEtherTypeIpv4;
  append_eth(p, e);
  ip.total_len =
      static_cast<std::uint16_t>(kIpv4HeaderLen + l4_len + payload_len);
  append_ipv4(p, ip);
  append_l4(p);
  for (std::size_t i = 0; i < payload_len; ++i) p.append_byte(fill);
  pad_min_frame(p);
  return p;
}

}  // namespace

Packet make_ipv4_tcp(const EthHeader& eth, Ipv4Header ip, TcpHeader tcp,
                     std::size_t payload_len, std::uint8_t fill) {
  ip.protocol = kIpProtoTcp;
  return make_ipv4_l4(eth, ip, kTcpHeaderLen, payload_len, fill,
                      [&](Packet& p) { append_tcp(p, tcp); });
}

Packet make_ipv4_udp(const EthHeader& eth, Ipv4Header ip, UdpHeader udp,
                     std::size_t payload_len, std::uint8_t fill) {
  ip.protocol = kIpProtoUdp;
  udp.length = static_cast<std::uint16_t>(kUdpHeaderLen + payload_len);
  return make_ipv4_l4(eth, ip, kUdpHeaderLen, payload_len, fill,
                      [&](Packet& p) { append_udp(p, udp); });
}

Packet make_ipv4_icmp_echo(const EthHeader& eth, Ipv4Header ip, IcmpHeader icmp,
                           std::size_t payload_len, std::uint8_t fill) {
  ip.protocol = kIpProtoIcmp;
  std::vector<std::uint8_t> payload(payload_len, fill);
  return make_ipv4_l4(eth, ip, kIcmpHeaderLen, payload_len, fill,
                      [&](Packet& p) { append_icmp(p, icmp, payload); });
}

std::optional<EthHeader> read_eth(const Packet& p) {
  if (p.size() < kEthHeaderLen) return std::nullopt;
  auto b = p.bytes();
  EthHeader h;
  std::copy(b.begin(), b.begin() + 6, h.dst.begin());
  std::copy(b.begin() + 6, b.begin() + 12, h.src.begin());
  h.ethertype = get16(b, 12);
  return h;
}

std::optional<ArpHeader> read_arp(const Packet& p, std::size_t offset) {
  if (p.size() < offset + kArpHeaderLen) return std::nullopt;
  auto b = p.bytes();
  ArpHeader h;
  h.htype = get16(b, offset);
  h.ptype = get16(b, offset + 2);
  h.hlen = b[offset + 4];
  h.plen = b[offset + 5];
  h.oper = get16(b, offset + 6);
  std::copy(b.begin() + static_cast<std::ptrdiff_t>(offset + 8),
            b.begin() + static_cast<std::ptrdiff_t>(offset + 14), h.sha.begin());
  h.spa = get32(b, offset + 14);
  std::copy(b.begin() + static_cast<std::ptrdiff_t>(offset + 18),
            b.begin() + static_cast<std::ptrdiff_t>(offset + 24), h.tha.begin());
  h.tpa = get32(b, offset + 24);
  return h;
}

std::optional<Ipv4Header> read_ipv4(const Packet& p, std::size_t offset) {
  if (p.size() < offset + kIpv4HeaderLen) return std::nullopt;
  auto b = p.bytes();
  Ipv4Header h;
  h.version = b[offset] >> 4;
  h.ihl = b[offset] & 0xf;
  h.dscp_ecn = b[offset + 1];
  h.total_len = get16(b, offset + 2);
  h.identification = get16(b, offset + 4);
  h.flags_frag = get16(b, offset + 6);
  h.ttl = b[offset + 8];
  h.protocol = b[offset + 9];
  h.checksum = get16(b, offset + 10);
  h.src = get32(b, offset + 12);
  h.dst = get32(b, offset + 16);
  return h;
}

std::optional<TcpHeader> read_tcp(const Packet& p, std::size_t offset) {
  if (p.size() < offset + kTcpHeaderLen) return std::nullopt;
  auto b = p.bytes();
  TcpHeader h;
  h.src_port = get16(b, offset);
  h.dst_port = get16(b, offset + 2);
  h.seq = get32(b, offset + 4);
  h.ack = get32(b, offset + 8);
  h.data_offset = b[offset + 12] >> 4;
  h.flags = b[offset + 13];
  h.window = get16(b, offset + 14);
  h.checksum = get16(b, offset + 16);
  h.urgent = get16(b, offset + 18);
  return h;
}

std::optional<UdpHeader> read_udp(const Packet& p, std::size_t offset) {
  if (p.size() < offset + kUdpHeaderLen) return std::nullopt;
  auto b = p.bytes();
  UdpHeader h;
  h.src_port = get16(b, offset);
  h.dst_port = get16(b, offset + 2);
  h.length = get16(b, offset + 4);
  h.checksum = get16(b, offset + 6);
  return h;
}

}  // namespace hyper4::net
