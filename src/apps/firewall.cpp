#include "apps/apps.h"
#include "p4/builder.h"

namespace hyper4::apps {

using namespace p4;

Program firewall() {
  ProgramBuilder b("firewall");
  b.header_type("ethernet_t",
                {{"dstAddr", 48}, {"srcAddr", 48}, {"etherType", 16}});
  b.header_type("ipv4_t", {{"version", 4},
                           {"ihl", 4},
                           {"diffserv", 8},
                           {"totalLen", 16},
                           {"identification", 16},
                           {"flags", 3},
                           {"fragOffset", 13},
                           {"ttl", 8},
                           {"protocol", 8},
                           {"hdrChecksum", 16},
                           {"srcAddr", 32},
                           {"dstAddr", 32}});
  b.header_type("tcp_t", {{"srcPort", 16},
                          {"dstPort", 16},
                          {"seqNo", 32},
                          {"ackNo", 32},
                          {"dataOffset", 4},
                          {"res", 4},
                          {"flags", 8},
                          {"window", 16},
                          {"checksum", 16},
                          {"urgentPtr", 16}});
  b.header_type("udp_t",
                {{"srcPort", 16}, {"dstPort", 16}, {"length_", 16}, {"checksum", 16}});
  b.header("ethernet_t", "ethernet");
  b.header("ipv4_t", "ipv4");
  b.header("tcp_t", "tcp");
  b.header("udp_t", "udp");

  b.parser("start")
      .extract("ethernet")
      .select_field("ethernet", "etherType")
      .when(net::kEtherTypeIpv4, "parse_ipv4")
      .otherwise(kParserAccept);
  b.parser("parse_ipv4")
      .extract("ipv4")
      .select_field("ipv4", "protocol")
      .when(net::kIpProtoTcp, "parse_tcp")
      .when(net::kIpProtoUdp, "parse_udp")
      .otherwise(kParserAccept);
  b.parser("parse_tcp").extract("tcp").to_ingress();
  b.parser("parse_udp").extract("udp").to_ingress();

  b.action("nop").no_op();
  b.action("forward", {{"port", kPortWidth}})
      .modify_field({kStandardMetadata, kFieldEgressSpec}, Param(0));
  b.action("_drop").drop();
  b.action("fw_drop").drop();

  b.table("dmac")
      .key_exact({"ethernet", "dstAddr"})
      .action_ref("forward")
      .action_ref("_drop")
      .default_action("_drop");
  b.table("ip_filter")
      .key_ternary({"ipv4", "srcAddr"})
      .key_ternary({"ipv4", "dstAddr"})
      .action_ref("fw_drop")
      .action_ref("nop")
      .default_action("nop");
  // TCP and UDP ports share one stage; validity bits disambiguate.
  b.table("l4_filter")
      .key_valid("tcp")
      .key_ternary({"tcp", "dstPort"})
      .key_valid("udp")
      .key_ternary({"udp", "dstPort"})
      .action_ref("fw_drop")
      .action_ref("nop")
      .default_action("nop");

  auto ing = b.ingress();
  const std::size_t n_dmac = ing.apply("dmac");
  const std::size_t n_if = ing.branch(Expr::valid("ipv4"));
  const std::size_t n_ip = ing.apply("ip_filter");
  const std::size_t n_l4 = ing.apply("l4_filter");
  ing.on_default(n_dmac, n_if);
  ing.on_true(n_if, n_ip);
  ing.on_false(n_if, p4::kEndOfControl);
  ing.on_default(n_ip, n_l4);
  return b.build();
}

}  // namespace hyper4::apps
