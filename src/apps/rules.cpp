#include <sstream>

#include "apps/apps.h"
#include "bm/cli.h"
#include "util/error.h"
#include "util/strings.h"

namespace hyper4::apps {

std::vector<std::pair<std::string, p4::Program>> all_programs() {
  std::vector<std::pair<std::string, p4::Program>> out;
  out.emplace_back("l2_sw", l2_switch());
  out.emplace_back("router", ipv4_router());
  out.emplace_back("arp_proxy", arp_proxy());
  out.emplace_back("firewall", firewall());
  return out;
}

p4::Program program_by_name(const std::string& name) {
  if (name == "l2_sw" || name == "l2_switch") return l2_switch();
  if (name == "router" || name == "ipv4_router") return ipv4_router();
  if (name == "arp_proxy") return arp_proxy();
  if (name == "firewall") return firewall();
  throw util::ConfigError(
      "unknown app program '" + name + "'" +
      util::did_you_mean(name, {"l2_sw", "l2_switch", "router", "ipv4_router",
                                "arp_proxy", "firewall"}));
}

Rule l2_forward(const std::string& mac, std::uint16_t port) {
  return Rule{"dmac", "forward", {mac}, {std::to_string(port)}, -1};
}

Rule router_accept_mac(const std::string& mac) {
  return Rule{"dmac_check", "nop", {mac}, {}, -1};
}

Rule router_route(const std::string& prefix, std::size_t prefix_len,
                  const std::string& nhop_ip, std::uint16_t port) {
  return Rule{"ipv4_lpm",
              "set_nhop",
              {prefix + "/" + std::to_string(prefix_len)},
              {nhop_ip, std::to_string(port)},
              -1};
}

Rule router_arp_entry(const std::string& nhop_ip, const std::string& mac) {
  return Rule{"forward", "set_dmac", {nhop_ip}, {mac}, -1};
}

Rule router_port_mac(std::uint16_t port, const std::string& mac) {
  return Rule{"send_frame", "rewrite_mac", {std::to_string(port)}, {mac}, -1};
}

Rule arp_proxy_entry(const std::string& ip, const std::string& mac) {
  return Rule{"arp_resp",
              "arp_reply",
              {"1", "1&&&0xffff", ip + "&&&0xffffffff"},
              {mac},
              10};
}

Rule arp_proxy_l2_forward(const std::string& mac, std::uint16_t port) {
  return Rule{"dmac", "forward", {mac}, {std::to_string(port)}, -1};
}

Rule firewall_l2_forward(const std::string& mac, std::uint16_t port) {
  return Rule{"dmac", "forward", {mac}, {std::to_string(port)}, -1};
}

Rule firewall_block_ip(const std::string& src_ip, const std::string& src_mask,
                       const std::string& dst_ip, const std::string& dst_mask,
                       std::int32_t priority) {
  return Rule{"ip_filter",
              "fw_drop",
              {src_ip + "&&&" + src_mask, dst_ip + "&&&" + dst_mask},
              {},
              priority};
}

Rule firewall_block_tcp_dport(std::uint16_t dport, std::int32_t priority) {
  return Rule{"l4_filter",
              "fw_drop",
              {"1", std::to_string(dport) + "&&&0xffff", "0", "0&&&0"},
              {},
              priority};
}

Rule firewall_block_udp_dport(std::uint16_t dport, std::int32_t priority) {
  return Rule{"l4_filter",
              "fw_drop",
              {"0", "0&&&0", "1", std::to_string(dport) + "&&&0xffff"},
              {},
              priority};
}

std::uint64_t apply_rule(bm::Switch& sw, const Rule& rule) {
  std::ostringstream line;
  line << "table_add " << rule.table << " " << rule.action;
  for (const auto& k : rule.keys) line << " " << k;
  line << " =>";
  for (const auto& a : rule.args) line << " " << a;
  if (rule.priority >= 0) line << " " << rule.priority;
  const bm::CliResult r = bm::run_cli_command(sw, line.str());
  if (!r.ok) throw util::CommandError("apply_rule: " + r.message);
  return r.handle;
}

void apply_rules(bm::Switch& sw, const std::vector<Rule>& rules) {
  for (const auto& r : rules) apply_rule(sw, r);
}

}  // namespace hyper4::apps
