#include "apps/apps.h"
#include "p4/builder.h"

namespace hyper4::apps {

using namespace p4;

Program ipv4_router() {
  ProgramBuilder b("ipv4_router");
  b.header_type("ethernet_t",
                {{"dstAddr", 48}, {"srcAddr", 48}, {"etherType", 16}});
  b.header_type("ipv4_t", {{"version", 4},
                           {"ihl", 4},
                           {"diffserv", 8},
                           {"totalLen", 16},
                           {"identification", 16},
                           {"flags", 3},
                           {"fragOffset", 13},
                           {"ttl", 8},
                           {"protocol", 8},
                           {"hdrChecksum", 16},
                           {"srcAddr", 32},
                           {"dstAddr", 32}});
  b.header_type("router_meta_t", {{"nhop_ipv4", 32}});
  b.header("ethernet_t", "ethernet");
  b.header("ipv4_t", "ipv4");
  b.metadata("router_meta_t", "meta");

  b.parser("start")
      .extract("ethernet")
      .select_field("ethernet", "etherType")
      .when(net::kEtherTypeIpv4, "parse_ipv4")
      .otherwise(kParserDrop);  // a pure router: non-IPv4 is not handled
  b.parser("parse_ipv4").extract("ipv4").to_ingress();

  b.action("nop").no_op();
  b.action("_drop").drop();
  // Set next hop, output port, and decrement TTL (add 0xff mod 2^8).
  b.action("set_nhop", {{"nhop_ipv4", 32}, {"port", kPortWidth}})
      .modify_field({"meta", "nhop_ipv4"}, Param(0))
      .modify_field({kStandardMetadata, kFieldEgressSpec}, Param(1))
      .add_to_field({"ipv4", "ttl"}, Const(8, 0xff));
  b.action("set_dmac", {{"dmac", 48}})
      .modify_field({"ethernet", "dstAddr"}, Param(0));
  b.action("rewrite_mac", {{"smac", 48}})
      .modify_field({"ethernet", "srcAddr"}, Param(0));

  // Only frames addressed to the router's MAC are routed.
  b.table("dmac_check")
      .key_exact({"ethernet", "dstAddr"})
      .action_ref("nop")
      .action_ref("_drop")
      .default_action("_drop");
  b.table("ipv4_lpm")
      .key_lpm({"ipv4", "dstAddr"})
      .action_ref("set_nhop")
      .action_ref("_drop")
      .default_action("_drop");
  b.table("forward")
      .key_exact({"meta", "nhop_ipv4"})
      .action_ref("set_dmac")
      .action_ref("_drop")
      .default_action("_drop");
  b.table("send_frame")
      .key_exact({kStandardMetadata, kFieldEgressPort})
      .action_ref("rewrite_mac")
      .action_ref("_drop")
      .default_action("_drop");

  // dmac_check runs after ipv4_lpm: P4-14 drop merely sets egress_spec, so
  // set_nhop ordered later would overwrite (un-drop) the MAC filter; and it
  // must precede forward, which rewrites the destination MAC it reads.
  auto ing = b.ingress();
  ing.apply("ipv4_lpm");
  ing.then_apply("dmac_check");
  ing.then_apply("forward");
  b.egress().apply("send_frame");

  b.field_list("ipv4_checksum_list",
               {{"ipv4", "version"},
                {"ipv4", "ihl"},
                {"ipv4", "diffserv"},
                {"ipv4", "totalLen"},
                {"ipv4", "identification"},
                {"ipv4", "flags"},
                {"ipv4", "fragOffset"},
                {"ipv4", "ttl"},
                {"ipv4", "protocol"},
                {"ipv4", "srcAddr"},
                {"ipv4", "dstAddr"}});
  b.checksum({"ipv4", "hdrChecksum"}, "ipv4_checksum_list");
  return b.build();
}

}  // namespace hyper4::apps
