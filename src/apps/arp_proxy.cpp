#include "apps/apps.h"
#include "p4/builder.h"

namespace hyper4::apps {

using namespace p4;

Program arp_proxy() {
  ProgramBuilder b("arp_proxy");
  b.header_type("ethernet_t",
                {{"dstAddr", 48}, {"srcAddr", 48}, {"etherType", 16}});
  b.header_type("arp_t", {{"htype", 16},
                          {"ptype", 16},
                          {"hlen", 8},
                          {"plen", 8},
                          {"oper", 16},
                          {"sha", 48},
                          {"spa", 32},
                          {"tha", 48},
                          {"tpa", 32}});
  b.header_type("arp_meta_t", {{"tmp_ip", 32}});
  b.header("ethernet_t", "ethernet");
  b.header("arp_t", "arp");
  b.metadata("arp_meta_t", "meta");

  b.parser("start")
      .extract("ethernet")
      .select_field("ethernet", "etherType")
      .when(net::kEtherTypeArp, "parse_arp")
      .otherwise(kParserAccept);  // non-ARP traffic is switched at L2
  b.parser("parse_arp").extract("arp").to_ingress();

  b.action("nop").no_op();
  b.action("forward", {{"port", kPortWidth}})
      .modify_field({kStandardMetadata, kFieldEgressSpec}, Param(0));
  b.action("_drop").drop();
  // The paper's nine-primitive ARP reply builder (§6.1): turn the request
  // around in place, answering with the proxied MAC.
  b.action("arp_reply", {{"mac", 48}})
      .modify_field({"ethernet", "dstAddr"}, F("ethernet", "srcAddr"))
      .modify_field({"arp", "oper"}, Const(16, net::kArpOpReply))
      .modify_field({"arp", "tha"}, F("arp", "sha"))
      .modify_field({"arp", "sha"}, Param(0))
      .modify_field({"ethernet", "srcAddr"}, Param(0))
      .modify_field({"meta", "tmp_ip"}, F("arp", "spa"))
      .modify_field({"arp", "spa"}, F("arp", "tpa"))
      .modify_field({"arp", "tpa"}, F("meta", "tmp_ip"))
      .modify_field({kStandardMetadata, kFieldEgressSpec},
                    F(kStandardMetadata, kFieldIngressPort));

  b.table("smac")
      .key_exact({"ethernet", "srcAddr"})
      .action_ref("nop")
      .default_action("nop");
  // Hit = this is an ARP request for a proxied IP; build the reply. The
  // reply then traverses dmac like any other frame (egress_spec already
  // points back at the requester's port if dmac has no entry).
  b.table("arp_resp")
      .key_valid("arp")
      .key_ternary({"arp", "oper"})
      .key_ternary({"arp", "tpa"})
      .action_ref("arp_reply")
      .action_ref("nop")
      .default_action("nop");
  b.table("dmac")
      .key_exact({"ethernet", "dstAddr"})
      .action_ref("forward")
      .action_ref("_drop")
      .default_action("_drop");
  // Egress monitoring hook with a direct counter (ARP replies served are
  // the hits of arp_seen-attached entries).
  b.table("arp_monitor")
      .key_valid("arp")
      .action_ref("nop")
      .default_action("nop")
      .direct_counter("arp_seen");
  b.counter("arp_seen", 0, "arp_monitor");

  auto ing = b.ingress();
  ing.apply("smac");
  ing.then_apply("arp_resp");
  ing.then_apply("dmac");
  b.egress().apply("arp_monitor");
  return b.build();
}

}  // namespace hyper4::apps
