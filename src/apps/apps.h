// The paper's four native P4 network functions (§3.1):
//   1. a layer-2 Ethernet switch,
//   2. an IPv4 router,
//   3. an ARP proxy answering ARP requests on behalf of IPv4 hosts,
//   4. a firewall filtering on IPv4/TCP/UDP sources and destinations.
//
// Each program is expressed in the P4 IR and can run either natively on a
// bm::Switch or emulated by the HyPer4 persona. Runtime table state is
// described by target-program-level Rules, which a native controller
// applies directly and the DPMU translates into persona entries — the same
// Rule feeds both paths, which is what makes the equivalence tests honest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bm/switch.h"
#include "net/headers.h"
#include "p4/ir.h"

namespace hyper4::apps {

// --- programs --------------------------------------------------------------

// Two match stages: smac (learning point, no_op) and dmac (forward/port).
p4::Program l2_switch();

// Four match stages: dmac_check (router MAC filter), ipv4_lpm (set next
// hop + TTL decrement), forward (next-hop IP → dst MAC), and send_frame
// (egress: source MAC rewrite). Recomputes the IPv4 header checksum.
p4::Program ipv4_router();

// Four match stages on the ARP-request path: smac, arp_resp (the paper's
// nine-primitive ARP reply builder), dmac, and an egress monitor table.
p4::Program arp_proxy();

// Three match stages: dmac (L2 forwarding), ip_filter (ternary IPv4
// src/dst), l4_filter (ternary TCP/UDP ports gated on header validity).
p4::Program firewall();

// All four, keyed by the names used throughout the benches.
std::vector<std::pair<std::string, p4::Program>> all_programs();
p4::Program program_by_name(const std::string& name);

// --- runtime rules -----------------------------------------------------------

// One table entry in the *target program's* terms. Key/argument tokens use
// the CLI value syntax (bm/cli.h).
struct Rule {
  std::string table;
  std::string action;
  std::vector<std::string> keys;
  std::vector<std::string> args;
  std::int32_t priority = -1;  // required for ternary tables
};

// l2_switch: forward dst MAC on `port`.
Rule l2_forward(const std::string& mac, std::uint16_t port);

// ipv4_router: accept frames addressed to the router's MAC.
Rule router_accept_mac(const std::string& mac);
// route `prefix/len` to next hop `nhop_ip` out of `port`.
Rule router_route(const std::string& prefix, std::size_t prefix_len,
                  const std::string& nhop_ip, std::uint16_t port);
// next-hop IP → destination MAC.
Rule router_arp_entry(const std::string& nhop_ip, const std::string& mac);
// egress port → source MAC rewrite.
Rule router_port_mac(std::uint16_t port, const std::string& mac);

// arp_proxy: answer requests for `ip` with `mac`.
Rule arp_proxy_entry(const std::string& ip, const std::string& mac);
// arp_proxy also forwards like an L2 switch.
Rule arp_proxy_l2_forward(const std::string& mac, std::uint16_t port);

// firewall: L2 forwarding plus filters. Filters with empty mask strings
// wildcard that dimension.
Rule firewall_l2_forward(const std::string& mac, std::uint16_t port);
Rule firewall_block_ip(const std::string& src_ip, const std::string& src_mask,
                       const std::string& dst_ip, const std::string& dst_mask,
                       std::int32_t priority);
Rule firewall_block_tcp_dport(std::uint16_t dport, std::int32_t priority);
Rule firewall_block_udp_dport(std::uint16_t dport, std::int32_t priority);

// Apply a rule to a native switch running the corresponding program.
std::uint64_t apply_rule(bm::Switch& sw, const Rule& rule);
void apply_rules(bm::Switch& sw, const std::vector<Rule>& rules);

}  // namespace hyper4::apps
