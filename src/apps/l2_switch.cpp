#include "apps/apps.h"
#include "p4/builder.h"

namespace hyper4::apps {

using namespace p4;

Program l2_switch() {
  ProgramBuilder b("l2_switch");
  b.header_type("ethernet_t",
                {{"dstAddr", 48}, {"srcAddr", 48}, {"etherType", 16}});
  b.header("ethernet_t", "ethernet");

  b.parser("start").extract("ethernet").to_ingress();

  b.action("nop").no_op();
  b.action("forward", {{"port", kPortWidth}})
      .modify_field({kStandardMetadata, kFieldEgressSpec}, Param(0));
  b.action("_drop").drop();

  // smac is the learning point: a hit means the source is known; the
  // controller installs entries out of band.
  b.table("smac")
      .key_exact({"ethernet", "srcAddr"})
      .action_ref("nop")
      .default_action("nop");
  b.table("dmac")
      .key_exact({"ethernet", "dstAddr"})
      .action_ref("forward")
      .action_ref("_drop")
      .default_action("_drop");

  auto ing = b.ingress();
  ing.apply("smac");
  ing.then_apply("dmac");
  return b.build();
}

}  // namespace hyper4::apps
