// Per-vdev bytecode compiler: flattens one program's traversal through a
// configured persona switch into a vm::Unit (see bytecode.h).
//
// Inputs are the LIVE persona tables: the compiler enumerates the vparse
// and per-stage match entries installed for `program` to compute which
// (stage, source) blocks are reachable and how many primitive slots each
// can run, then emits a linear dispatch ladder covering exactly that set.
// The epoch sum of those tables is recorded in the unit; the executor
// recompiles when it drifts (a rule add/delete can change reachability).
//
// Throws util::ConfigError when the persona configuration is outside the
// compiled tier's envelope (ingress meter enabled, a pruning table carrying
// an unrecognized action, a missing persona table) — the executor treats
// that as "fall back to the interpreted persona", never as a hard error.
#pragma once

#include <cstdint>

#include "hp4/persona.h"
#include "vm/bytecode.h"

namespace hyper4::bm {
class Switch;
}

namespace hyper4::vm {

Unit compile_unit(const bm::Switch& sw, const hp4::PersonaConfig& cfg,
                  std::uint16_t program);

// The live epoch sum over the same tables compile_unit prunes from
// (vparse + every stage match table); compared against
// Unit::pruned_epoch_sum to detect staleness.
std::uint64_t pruning_epoch_sum(const bm::Switch& sw,
                                const hp4::PersonaConfig& cfg);

}  // namespace hyper4::vm
