// Flat bytecode for the tiered-execution backend (ROADMAP item 2).
//
// A Unit is the compiled form of ONE virtual device's traversal through the
// persona: the stage-dispatch ladder collapsed to conditional branches on
// the next_table register, every reachable (stage, source) match block laid
// out linearly, and the primitive-slot machinery reduced to a single kPrims
// op per block. Table lookups stay LIVE — they reuse the compiled match
// indexes of bm::RuntimeTable (PR 3), so entry add/delete/modify is picked
// up immediately — but everything the compiler *pruned by content* (which
// stages are reachable, how many primitive slots a block can run) is baked,
// and the Unit records the epoch sum of the tables it was pruned from so
// the executor can detect staleness and recompile (see DESIGN.md "Tiered
// execution").
//
// Units serialize (encode/decode with a magic + version header) so the
// verifier can be tested against hostile byte streams, and disassemble for
// debuggability (`vm disasm` in the bm CLI).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hyper4::vm {

// Narrow (u64) register file. Wide state (extracted / ext_meta / tmp) is
// addressed implicitly by the kernels, never by bytecode operands.
enum Reg : std::uint8_t {
  kRProgram = 0,   // hp4_meta.program        (16)
  kRNumBytes,      // hp4_meta.numbytes       (8)
  kRBytesExt,      // hp4_meta.bytes_extracted(8)
  kRValidity,      // hp4_meta.vvalidity      (32)
  kRNext,          // hp4_meta.next_table     (16)
  kRMatchId,       // hp4_meta.match_id       (32)
  kRActionId,      // hp4_meta.action_id      (16)
  kRPrimCount,     // hp4_meta.prim_count     (8)
  kRVIngress,      // hp4_meta.virt_ingress   (16)
  kRVEgress,       // hp4_meta.virt_egress    (16)
  kRResize,        // hp4_meta.resize         (8)
  kRCsum,          // hp4_meta.csum_offset    (8)
  kRegCount,
};

const char* reg_name(Reg r);

// Key-construction / miss-semantics selector for kLookup.
enum class LookupMode : std::uint8_t {
  kSetupB = 0,   // exact   [bytes_extracted]
  kVparse,       // ternary [program, extracted]
  kStageExt,     // ternary [program, vvalidity, extracted]
  kStageMeta,    // ternary [program, vvalidity, ext_meta]
  kStageStd,     // ternary [program, virt_ingress, virt_egress]
  kVnet,         // ternary [program, virt_egress]
  kEgCsum,       // exact   [csum_offset]
  kEgWriteback,  // exact   [resize]
  kModeCount,
};

const char* lookup_mode_name(LookupMode m);

enum class Op : std::uint8_t {
  kHalt = 0,   // end of section (ingress → traffic manager, egress → deparse)
  kLookup,     // a = table registry index, mode = LookupMode
  kPrims,      // a = stage, b = slot limit, c = base into prim_tables
  kJeq,        // mode = Reg, b = immediate, c = target pc
  kJmp,        // c = target pc
  kFallback,   // b = reason code; abort bytecode, re-run via Switch::inject
  kOpCount,
};

const char* op_name(Op o);

struct Instr {
  std::uint8_t op = 0;    // Op
  std::uint8_t mode = 0;  // LookupMode for kLookup, Reg for kJeq
  std::uint16_t a = 0;    // table index / stage
  std::uint32_t b = 0;    // immediate / slot limit / reason
  std::uint32_t c = 0;    // jump target / prim_tables base

  friend bool operator==(const Instr&, const Instr&) = default;
};

// Tables referenced per primitive slot, in prim_tables order.
inline constexpr std::size_t kPrimSlotTables = 7;
enum PrimSlotTable : std::size_t {
  kPtSetup = 0,  // tbl_prim_setup  [program, action_id] → prim_type
  kPtMod,        // tbl_prim_exec …kMod    [program, action_id, match_id]
  kPtAdd,        //                …kAddSub [program, action_id, match_id]
  kPtDrop,       //                …kDrop   [program]
  kPtResize,     //                …kResize [program, action_id, match_id]
  kPtNoop,       //                …kNoop   [program]
  kPtTx,         // tbl_prim_tx    [program]
};

struct Unit {
  std::uint16_t program = 0;  // vdev program id this unit was compiled for
  std::uint32_t egress_pc = 0;
  std::vector<Instr> code;
  // Table-name registry; kLookup.a and prim_tables values index into it.
  std::vector<std::string> tables;
  // Flattened (stage, slot) → kPrimSlotTables registry indexes; kPrims.c is
  // a base into this array, covering kPrims.b slots.
  std::vector<std::uint32_t> prim_tables;
  // Structural bounds the unit was compiled against (checked by verify()).
  std::uint16_t num_stages = 0;
  std::uint16_t max_primitives = 0;
  // Number of pr[] single-byte header instances the persona parses — the
  // unit's "header id" space; writeback can never address beyond it.
  std::uint16_t pr_headers = 0;
  // Epoch sum over the pruning inputs (vparse + stage tables) at compile
  // time; the executor compares it against the live sum per packet.
  std::uint64_t pruned_epoch_sum = 0;

  std::string disassemble() const;
};

// Serialized form: "HP4VM001" magic, then little-endian fields. Total size
// is self-describing; decode() throws util::ParseError on truncation, bad
// magic, or count fields that disagree with the stream length.
std::vector<std::uint8_t> encode(const Unit& u);
Unit decode(const std::vector<std::uint8_t>& bytes);

// Structural verification; returns the list of violated invariants (empty
// when the unit is well-formed). verify_or_throw wraps it in ConfigError.
// Invariants (see DESIGN.md): every opcode/mode/register id in range, every
// jump target and egress_pc inside the code, every table reference inside
// the registry, prim slot windows inside prim_tables, no fall-through past
// the end of code, and structural bounds (stage ≤ num_stages, slot limit ≤
// max_primitives, pr_headers sane).
std::vector<std::string> verify(const Unit& u);
void verify_or_throw(const Unit& u);

}  // namespace hyper4::vm
