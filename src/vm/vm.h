// Tiered execution: the flat VM backend (see DESIGN.md "Tiered execution").
//
// VmExecutor runs packets through a persona-configured bm::Switch WITHOUT
// the control-graph interpreter: per virtual device (program id) it compiles
// a vm::Unit (compiler.h) — the persona's dispatch ladder flattened to
// conditional branches on the next_table register — and drives it with a
// tight dispatch loop over a u64 register file plus three wide scratch
// BitVecs (extracted / ext_meta / tmp). Table lookups stay LIVE against the
// switch's RuntimeTables (reusing the compiled match indexes), so rule
// add/delete/modify is picked up immediately; only content-derived pruning
// (reachable stages, slot limits) is baked, guarded by an epoch sum the
// executor re-checks per traversal.
//
// Transparency contract: process() is observably equivalent to
// Switch::inject() (outputs + TM counters, and tracer events / stage
// profiles when a tracer is attached). Any construct outside the compiled
// tier's envelope — compile failure, unknown action id at exec time, an
// ingress meter — makes the executor FALL BACK to the interpreted persona
// for that packet via Switch::inject(), counted in stats(), never silently
// wrong. Fallback restarts the whole packet, so persona table hit counters
// can be bumped twice for a fallen-back packet (a documented diagnostics-
// only deviation); outputs and TM counters are always taken from exactly
// one tier.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bm/cli.h"
#include "bm/switch.h"
#include "engine/engine.h"
#include "hp4/persona.h"
#include "net/packet.h"
#include "vm/bytecode.h"

namespace hyper4::vm {

struct VmStats {
  std::uint64_t packets_bytecode = 0;  // fully served by the compiled tier
  std::uint64_t packets_fallback = 0;  // restarted via Switch::inject
  std::uint64_t compiles = 0;          // first-time unit compiles
  std::uint64_t recompiles = 0;        // epoch-drift recompiles
  std::uint64_t compile_failures = 0;  // compile attempts that threw
  // Why packets fell back, by reason string (bounded: reasons are a small
  // fixed set of code sites).
  std::map<std::string, std::uint64_t> fallback_reasons;
};

class VmExecutor : public engine::PacketPath {
 public:
  // The switch must be (or be configured as) a HyPer4 persona generated
  // from `cfg`; constructs that are merely *absent* (no entries yet) are
  // fine — units compile lazily per program id on first use.
  VmExecutor(bm::Switch& sw, hp4::PersonaConfig cfg);

  // Observably equivalent to sw.inject(port, packet); see header comment.
  bm::ProcessResult process(std::uint16_t port,
                            const net::Packet& packet) override;

  const VmStats& stats() const { return stats_; }

  // engine::PacketPath diagnostics: stats() flattened to stable keys
  // (fallback reasons as "fallback.<reason>") so the engine can aggregate
  // tier behavior across workers without knowing the VM's types.
  std::map<std::string, std::uint64_t> diagnostics() const override;

  const bm::Switch& switch_ref() const { return sw_; }
  const hp4::PersonaConfig& config() const { return cfg_; }

  // Attach an external tracer (nullptr detaches). The switch's name tables
  // are bound into it, so events resolve exactly like Switch-emitted ones.
  void set_tracer(obs::PipelineTracer* t);
  obs::PipelineTracer* tracer() const { return tracer_; }

  // Compile (or fetch the cached, epoch-fresh) unit for a program id.
  // Throws util::ConfigError when the program is outside the compiled
  // tier's envelope — the packet path treats that as fallback.
  const Unit& unit(std::uint16_t program);
  // Human-readable bytecode listing for `vm disasm` / debugging.
  std::string disassemble(std::uint16_t program);
  // Drop every cached unit (next packet recompiles).
  void invalidate();
  std::size_t cached_units() const { return units_.size(); }

 private:
  // Action kernels: the persona's action bodies reimplemented over the VM
  // register file. kUnknown marks an action id the executor has no kernel
  // for (a non-persona action installed at runtime) → fallback.
  enum class Kernel : std::uint8_t {
    kNoop = 0,       // a_setup_skip / a_exec_noop / a_tx
    kSetProgram,
    kSetProgramResub,
    kConcat,         // arg = byte count
    kSetParse,
    kParseMiss,
    kMatchResult,
    kMatchMiss,
    kLoadPrim,
    kModExtConst,
    kModExtExt,
    kModExtMeta,
    kModMetaConst,
    kModMetaMeta,
    kModMetaExt,
    kModMetaVingress,
    kModVegressConst,
    kModVegressMeta,
    kModVegressVingress,
    kAddExt,
    kAddMeta,
    kVirtDrop,
    kResizeSet,
    kResizeInsert,
    kResizeRemove,
    kVfwdPhys,
    kVfwdVdev,
    kVfwdMcast,
    kVdrop,
    kIpv4Csum,       // arg = byte offset
    kWriteback,      // arg = byte count
    kUnknown,
  };
  struct KernelRef {
    Kernel id = Kernel::kUnknown;
    std::uint32_t arg = 0;
  };

  // A compiled unit bound to this switch: table pointers and tracer table
  // ids resolved once so the packet path does no name lookups.
  struct BoundUnit {
    Unit unit;
    std::vector<bm::RuntimeTable*> tables;   // by unit table registry index
    std::vector<std::uint32_t> table_ids;    // tracer ids, same indexing
  };

  // One queued packet instance (parser- or egress-side). Slots are pooled
  // across packets; the wide vectors keep their capacity, so the steady
  // state allocates nothing but output packets.
  struct VmWork {
    enum class Where : std::uint8_t { kParser, kEgress } where =
        Where::kParser;
    std::vector<std::uint8_t> packet;  // traversal bytes (parser: input;
                                       // egress: bytes that were parsed)
    std::uint16_t ingress_port = 0;
    p4::InstanceType itype = p4::InstanceType::kNormal;
    // Parser-side: preserved resubmit/recirculate field list
    // {program, numbytes, virt_ingress}.
    bool has_preserved = false;
    std::uint64_t p_program = 0, p_numbytes = 0, p_vingress = 0;
    // Egress-side snapshot (state as at end of ingress).
    std::uint64_t regs[kRegCount] = {};
    util::BitVec ext;
    bool recirc_flag = false;
    std::uint16_t egress_port = 0;
    std::uint16_t egress_rid = 0;
    std::size_t payload_offset = 0;
    std::uint16_t unit_program = 0;  // unit whose egress section applies
  };

  // ---- compilation / caching ----
  BoundUnit& bound_unit(std::uint16_t program);  // throws ConfigError
  BoundUnit bind(Unit u) const;
  std::uint64_t live_epoch_sum() const;

  // ---- packet path ----
  struct RunState;  // per-process() transient view (defined in vm.cpp)
  void run(std::uint16_t port, const net::Packet& packet,
           bm::ProcessResult& res);
  bm::ProcessResult run_fallback(std::uint16_t port, const net::Packet& packet,
                                 const char* reason);
  bool run_parser(const VmWork& w, RunState& rs);
  void run_code(const BoundUnit& bu, std::uint32_t pc, RunState& rs);
  void run_prims(const BoundUnit& bu, const Instr& in, RunState& rs);
  // key_scratch_ must already hold the probe key; applies the table with
  // the interpreter's exact accounting (AppliedTable, kTableApply/
  // kActionExec events, profile hooks, hit_bytes) and runs the kernel.
  void apply_filled(bm::RuntimeTable* t, std::uint32_t table_id, RunState& rs);
  void build_key(LookupMode mode, const bm::RuntimeTable& t, RunState& rs);
  void exec_kernel(std::size_t action_id,
                   const std::vector<util::BitVec>& args, RunState& rs);

  [[noreturn]] void bail(const char* reason);  // throws FallbackSignal

  bm::Switch& sw_;
  hp4::PersonaConfig cfg_;
  VmStats stats_;
  obs::PipelineTracer* tracer_ = nullptr;

  // action id → kernel, indexed by compiled action id. Built in the ctor
  // from the persona's known action names; ids not found stay kUnknown.
  std::vector<KernelRef> kernels_;

  // Pruning tables (vparse + stage match tables), resolved once for the
  // per-traversal epoch staleness check.
  std::vector<const bm::RuntimeTable*> pruning_tables_;
  // setup_a, resolved once (applied by the host prologue, ternary
  // [program, ingress_port]).
  bm::RuntimeTable* setup_a_ = nullptr;
  std::uint32_t setup_a_id_ = 0;
  // pr[] stack element instance ids for kParserExtract events.
  std::vector<std::uint32_t> pr_instance_ids_;

  std::map<std::uint16_t, BoundUnit> units_;
  // Programs ever compiled (distinguishes recompiles from first compiles).
  std::set<std::uint16_t> ever_compiled_;
  // Programs whose compile failed at the current epoch sum — memoized so a
  // hot fallback path doesn't recompile per packet.
  std::map<std::uint16_t, std::uint64_t> failed_at_epoch_;

  // Cached config-derived constants.
  std::vector<std::size_t> ladder_;  // cfg_.parse_ladder()
  std::size_t ebits_ = 0;            // cfg_.extracted_bits
  std::size_t mbits_ = 0;            // cfg_.meta_bits

  // ---- pooled per-packet machinery ----
  std::vector<VmWork> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> queue_;  // FIFO of slot indexes
  std::vector<util::BitVec> key_scratch_;
  util::BitVec ext_, meta_, tmp_;
  std::vector<std::uint8_t> out_scratch_;

  std::uint32_t alloc_slot();
  void reset_pool();
};

// PacketPath factory for TrafficEngine::set_packet_path: every worker gets
// a VmExecutor over its private replica.
engine::PacketPathFactory engine_fast_path(hp4::PersonaConfig cfg);

// `vm` CLI command family for bm::run_cli_command extensions:
//   vm status | vm compile <program> | vm disasm <program> | vm stats
// The returned extensions reference `vm` and must not outlive it.
bm::CliExtensions vm_cli_extensions(VmExecutor& vm);

}  // namespace hyper4::vm
