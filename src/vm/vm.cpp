#include "vm/vm.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "p4/ir.h"
#include "util/error.h"
#include "vm/compiler.h"

namespace hyper4::vm {

namespace {

// Thrown by bail(): aborts the bytecode attempt for the current packet and
// makes process() restart it through the interpreted persona.
struct FallbackSignal {
  const char* reason;
};

constexpr std::uint64_t kEspecMask = (1u << p4::kPortWidth) - 1;

}  // namespace

// Per-process() transient state: one traversal's register file, scalar
// standard-metadata mirror, and flags. The wide vectors (ext/meta/tmp) live
// on the executor so their storage persists across packets.
struct VmExecutor::RunState {
  bm::ProcessResult* res = nullptr;
  obs::PipelineTracer* tr = nullptr;
  bool timing = false;
  bool prof = false;

  std::uint64_t regs[kRegCount] = {};
  std::uint64_t espec = 0;      // standard_metadata.egress_spec (9 bits)
  std::uint64_t mcast = 0;      // standard_metadata.mcast_grp (16 bits)
  std::uint64_t prim_type = 0;  // hp4_meta.prim_type (8 bits)
  bool resubmit_flag = false;
  bool recirc_flag = false;
  bool in_egress = false;

  const std::uint8_t* pkt = nullptr;  // current traversal's input bytes
  std::size_t pkt_size = 0;
  std::size_t payload_offset = 0;  // bytes the parser consumed

  bool wb_ran = false;      // a write-back action executed in egress
  std::uint32_t wb_len = 0;  // its byte count
};

// ---------------------------------------------------------------------------
// Construction

VmExecutor::VmExecutor(bm::Switch& sw, hp4::PersonaConfig cfg)
    : sw_(sw), cfg_(std::move(cfg)) {
  cfg_.validate();
  auto need = [&](const std::string& name) -> bm::RuntimeTable& {
    if (!sw_.has_table(name))
      throw util::ConfigError("vm: switch is not a persona (no table '" +
                              name + "')");
    return sw_.mutable_table(name);
  };

  pruning_tables_.push_back(&need(hp4::tbl_vparse()));
  for (std::size_t s = 1; s <= cfg_.num_stages; ++s) {
    for (hp4::MatchSource m :
         {hp4::MatchSource::kExtracted, hp4::MatchSource::kMeta,
          hp4::MatchSource::kStdMeta}) {
      pruning_tables_.push_back(&need(hp4::tbl_stage_match(s, m)));
    }
  }
  setup_a_ = &need(hp4::tbl_setup_a());
  setup_a_id_ = static_cast<std::uint32_t>(sw_.table_index(hp4::tbl_setup_a()));

  for (auto inst : sw_.layout().stack_elements(hp4::kPrStack))
    pr_instance_ids_.push_back(static_cast<std::uint32_t>(inst));

  // Kernel registry: compiled action id → reimplemented body. Names absent
  // from the program (e.g. meter actions when the meter is off) are skipped;
  // any id that stays kUnknown triggers fallback if it ever executes.
  auto bind_kernel = [&](const std::string& name, Kernel k,
                         std::uint32_t arg = 0) {
    std::size_t id;
    try {
      id = sw_.action_id(name);
    } catch (const util::Error&) {
      return;
    }
    if (id >= kernels_.size()) kernels_.resize(id + 1);
    kernels_[id] = KernelRef{k, arg};
  };
  bind_kernel(hp4::kActSetupSkip, Kernel::kNoop);
  bind_kernel(hp4::kActExecNoop, Kernel::kNoop);
  bind_kernel(hp4::kActTx, Kernel::kNoop);
  bind_kernel(hp4::kActSetProgram, Kernel::kSetProgram);
  bind_kernel(hp4::kActSetProgramResub, Kernel::kSetProgramResub);
  bind_kernel(hp4::kActSetParse, Kernel::kSetParse);
  bind_kernel(hp4::kActParseMiss, Kernel::kParseMiss);
  bind_kernel(hp4::kActMatchResult, Kernel::kMatchResult);
  bind_kernel(hp4::kActMatchMiss, Kernel::kMatchMiss);
  bind_kernel(hp4::kActLoadPrim, Kernel::kLoadPrim);
  bind_kernel(hp4::kActModExtConst, Kernel::kModExtConst);
  bind_kernel(hp4::kActModExtExt, Kernel::kModExtExt);
  bind_kernel(hp4::kActModExtMeta, Kernel::kModExtMeta);
  bind_kernel(hp4::kActModMetaConst, Kernel::kModMetaConst);
  bind_kernel(hp4::kActModMetaMeta, Kernel::kModMetaMeta);
  bind_kernel(hp4::kActModMetaExt, Kernel::kModMetaExt);
  bind_kernel(hp4::kActModMetaVingress, Kernel::kModMetaVingress);
  bind_kernel(hp4::kActModVegressConst, Kernel::kModVegressConst);
  bind_kernel(hp4::kActModVegressMeta, Kernel::kModVegressMeta);
  bind_kernel(hp4::kActModVegressVingress, Kernel::kModVegressVingress);
  bind_kernel(hp4::kActAddExt, Kernel::kAddExt);
  bind_kernel(hp4::kActAddMeta, Kernel::kAddMeta);
  bind_kernel(hp4::kActVirtDrop, Kernel::kVirtDrop);
  bind_kernel(hp4::kActResizeSet, Kernel::kResizeSet);
  bind_kernel(hp4::kActResizeInsert, Kernel::kResizeInsert);
  bind_kernel(hp4::kActResizeRemove, Kernel::kResizeRemove);
  bind_kernel(hp4::kActVfwdPhys, Kernel::kVfwdPhys);
  bind_kernel(hp4::kActVfwdVdev, Kernel::kVfwdVdev);
  bind_kernel(hp4::kActVfwdMcast, Kernel::kVfwdMcast);
  bind_kernel(hp4::kActVdrop, Kernel::kVdrop);
  for (std::size_t n : cfg_.parse_ladder())
    bind_kernel(hp4::act_concat(n), Kernel::kConcat,
                static_cast<std::uint32_t>(n));
  for (std::size_t n : cfg_.writeback_ladder())
    bind_kernel(hp4::act_writeback(n), Kernel::kWriteback,
                static_cast<std::uint32_t>(n));
  for (std::size_t off : cfg_.ipv4_csum_offsets)
    bind_kernel(hp4::act_ipv4_csum(off), Kernel::kIpv4Csum,
                static_cast<std::uint32_t>(off));

  ladder_ = cfg_.parse_ladder();
  ebits_ = cfg_.extracted_bits;
  mbits_ = cfg_.meta_bits;
  ext_ = util::BitVec(ebits_);
  meta_ = util::BitVec(mbits_);
  tmp_ = util::BitVec(ebits_);
  key_scratch_.resize(3);  // widest persona key arity
}

void VmExecutor::set_tracer(obs::PipelineTracer* t) {
  tracer_ = t;
  if (tracer_) sw_.bind_tracer_names(*tracer_);
}

// ---------------------------------------------------------------------------
// Compilation cache

std::uint64_t VmExecutor::live_epoch_sum() const {
  std::uint64_t sum = 0;
  for (const bm::RuntimeTable* t : pruning_tables_) sum += t->index_epoch();
  return sum;
}

VmExecutor::BoundUnit VmExecutor::bind(Unit u) const {
  BoundUnit bu;
  bu.tables.reserve(u.tables.size());
  bu.table_ids.reserve(u.tables.size());
  for (const std::string& name : u.tables) {
    bu.tables.push_back(&sw_.mutable_table(name));
    bu.table_ids.push_back(static_cast<std::uint32_t>(sw_.table_index(name)));
  }
  bu.unit = std::move(u);
  return bu;
}

VmExecutor::BoundUnit& VmExecutor::bound_unit(std::uint16_t program) {
  const std::uint64_t live = live_epoch_sum();
  auto it = units_.find(program);
  if (it != units_.end() && it->second.unit.pruned_epoch_sum == live)
    return it->second;

  auto fit = failed_at_epoch_.find(program);
  if (fit != failed_at_epoch_.end()) {
    if (fit->second == live)
      throw util::ConfigError(
          "vm: program " + std::to_string(program) +
          " is outside the compiled tier (memoized at current epoch)");
    failed_at_epoch_.erase(fit);
  }

  try {
    Unit u = compile_unit(sw_, cfg_, program);
    if (ever_compiled_.count(program) != 0)
      ++stats_.recompiles;
    else
      ++stats_.compiles;
    ever_compiled_.insert(program);
    auto [pos, inserted] = units_.insert_or_assign(program, bind(std::move(u)));
    (void)inserted;
    return pos->second;
  } catch (const util::Error&) {
    ++stats_.compile_failures;
    failed_at_epoch_[program] = live;
    throw;
  }
}

const Unit& VmExecutor::unit(std::uint16_t program) {
  return bound_unit(program).unit;
}

std::string VmExecutor::disassemble(std::uint16_t program) {
  return bound_unit(program).unit.disassemble();
}

void VmExecutor::invalidate() {
  units_.clear();
  failed_at_epoch_.clear();
}

std::map<std::string, std::uint64_t> VmExecutor::diagnostics() const {
  std::map<std::string, std::uint64_t> d;
  d["packets_bytecode"] = stats_.packets_bytecode;
  d["packets_fallback"] = stats_.packets_fallback;
  d["compiles"] = stats_.compiles;
  d["recompiles"] = stats_.recompiles;
  d["compile_failures"] = stats_.compile_failures;
  d["cached_units"] = units_.size();
  for (const auto& [reason, n] : stats_.fallback_reasons)
    d["fallback." + reason] += n;
  return d;
}

// ---------------------------------------------------------------------------
// Work-slot pool

std::uint32_t VmExecutor::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t idx = free_slots_.back();
    free_slots_.pop_back();
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void VmExecutor::reset_pool() {
  queue_.clear();
  free_slots_.clear();
  free_slots_.reserve(slots_.size());
  for (std::size_t i = slots_.size(); i-- > 0;)
    free_slots_.push_back(static_cast<std::uint32_t>(i));
}

// ---------------------------------------------------------------------------
// Fallback

void VmExecutor::bail(const char* reason) { throw FallbackSignal{reason}; }

bm::ProcessResult VmExecutor::run_fallback(std::uint16_t port,
                                           const net::Packet& packet,
                                           const char* reason) {
  ++stats_.packets_fallback;
  ++stats_.fallback_reasons[reason];
  return sw_.inject(port, packet);
}

// ---------------------------------------------------------------------------
// Table application (interpreter-exact accounting)

void VmExecutor::build_key(LookupMode mode, const bm::RuntimeTable& t,
                           RunState& rs) {
  const auto& ks = t.keys();
  auto scalar = [&](std::size_t i, std::uint64_t v) {
    key_scratch_[i].assign(ks[i].width, v);
  };
  switch (mode) {
    case LookupMode::kSetupB:
      if (ks.size() != 1) bail("key-arity");
      scalar(0, rs.regs[kRBytesExt]);
      break;
    case LookupMode::kVparse:
      if (ks.size() != 2) bail("key-arity");
      scalar(0, rs.regs[kRProgram]);
      key_scratch_[1].assign(ext_);
      break;
    case LookupMode::kStageExt:
      if (ks.size() != 3) bail("key-arity");
      scalar(0, rs.regs[kRProgram]);
      scalar(1, rs.regs[kRValidity]);
      key_scratch_[2].assign(ext_);
      break;
    case LookupMode::kStageMeta:
      if (ks.size() != 3) bail("key-arity");
      scalar(0, rs.regs[kRProgram]);
      scalar(1, rs.regs[kRValidity]);
      key_scratch_[2].assign(meta_);
      break;
    case LookupMode::kStageStd:
      if (ks.size() != 3) bail("key-arity");
      scalar(0, rs.regs[kRProgram]);
      scalar(1, rs.regs[kRVIngress]);
      scalar(2, rs.regs[kRVEgress]);
      break;
    case LookupMode::kVnet:
      if (ks.size() != 2) bail("key-arity");
      scalar(0, rs.regs[kRProgram]);
      scalar(1, rs.regs[kRVEgress]);
      break;
    case LookupMode::kEgCsum:
      if (ks.size() != 1) bail("key-arity");
      scalar(0, rs.regs[kRCsum]);
      break;
    case LookupMode::kEgWriteback:
      if (ks.size() != 1) bail("key-arity");
      scalar(0, rs.regs[kRResize]);
      break;
    default:
      bail("bad-lookup-mode");
  }
}

void VmExecutor::apply_filled(bm::RuntimeTable* t, std::uint32_t table_id,
                              RunState& rs) {
  const auto& keys = t->keys();
  std::size_t ternary_total = 0;
  bool uses_ternary = false;
  for (const auto& spec : keys) {
    if (spec.type == p4::MatchType::kTernary ||
        spec.type == p4::MatchType::kLpm) {
      uses_ternary = true;
      ternary_total += spec.width;
    }
  }

  const std::uint64_t lk_t0 = rs.timing ? rs.tr->clock_ns() : 0;
  bm::TableEntry* entry = t->lookup(key_scratch_);
  std::uint64_t lookup_ns = 0;
  if (rs.timing) {
    lookup_ns = rs.tr->clock_ns() - lk_t0;
    if (rs.prof) {
      rs.tr->observe_stage(obs::Stage::kLookup, lookup_ns);
      rs.tr->observe_table(table_id, lookup_ns);
    }
  }

  bm::AppliedTable applied;
  applied.table = t->name();
  applied.hit = entry != nullptr;
  applied.used_ternary = uses_ternary;
  applied.ternary_bits_total = uses_ternary ? ternary_total : 0;
  if (entry) {
    applied.entry_handle = entry->handle;
    if (uses_ternary) {
      std::size_t active = 0;
      for (std::size_t i = 0; i < keys.size(); ++i) {
        const auto& spec = keys[i];
        if (spec.type == p4::MatchType::kTernary && entry->key[i].mask) {
          active += entry->key[i].mask->popcount();
        } else if (spec.type == p4::MatchType::kLpm) {
          active += *entry->key[i].prefix_len;
        }
      }
      applied.ternary_bits_active = active;
    }
  }
  rs.res->applied.push_back(applied);

  std::size_t ran_action = 0;
  bool ran = false;
  const std::uint64_t act_t0 = rs.timing ? rs.tr->clock_ns() : 0;
  if (entry) {
    exec_kernel(entry->action, entry->action_args, rs);
    ran_action = entry->action;
    ran = true;
    entry->hit_bytes += rs.pkt_size;
  } else if (t->has_default()) {
    exec_kernel(t->default_action(), t->default_args(), rs);
    ran_action = t->default_action();
    ran = true;
  }
  std::uint64_t action_ns = 0;
  if (rs.timing) {
    action_ns = rs.tr->clock_ns() - act_t0;
    if (rs.prof) rs.tr->observe_stage(obs::Stage::kAction, action_ns);
  }
  if (rs.tr) {
    std::uint8_t flags = 0;
    if (entry) flags |= obs::kFlagHit;
    if (rs.in_egress) flags |= obs::kFlagEgress;
    flags |= static_cast<std::uint8_t>(
        (static_cast<std::uint8_t>(t->index_kind()) << obs::kFlagIndexShift) &
        obs::kFlagIndexMask);
    rs.tr->record(obs::EventKind::kTableApply, flags, 0, table_id,
                  entry ? entry->handle : 0,
                  ran ? static_cast<std::uint64_t>(ran_action) : obs::kNoAction,
                  static_cast<std::uint32_t>(lookup_ns + action_ns));
  }
}

// ---------------------------------------------------------------------------
// Action kernels

void VmExecutor::exec_kernel(std::size_t action_id,
                             const std::vector<util::BitVec>& args,
                             RunState& rs) {
  if (rs.tr)
    rs.tr->record(obs::EventKind::kActionExec,
                  rs.in_egress ? obs::kFlagEgress : 0, 0,
                  static_cast<std::uint32_t>(action_id), 0, args.size());

  const KernelRef k =
      action_id < kernels_.size() ? kernels_[action_id] : KernelRef{};
  auto need = [&](std::size_t n) {
    if (args.size() < n) bail("action-args");
  };
  auto* regs = rs.regs;

  // tmp = ((src zero-extended to E) & smask) >> sshift << dshift, then
  // dst = (dst & ~dmask) | (tmp & dmask) — the persona's mod_via_tmp.
  auto mod_via = [&](const util::BitVec& src, util::BitVec& dst) {
    tmp_.assign(src);
    tmp_.set_width(ebits_);
    tmp_.and_assign(args[0]);
    tmp_.shr_assign(args[1].low_u64());
    tmp_.shl_assign(args[2].low_u64());
    dst.andnot_assign(args[3]);
    tmp_.and_assign(args[3]);
    dst.or_assign(tmp_);
  };
  // tmp = (dst & mask) >> shift; tmp += delta (mod 2^E); tmp <<= shift;
  // dst = (dst & ~mask) | (tmp & mask) — the persona's add_via_tmp.
  auto add_via = [&](util::BitVec& dst) {
    tmp_.assign(dst);
    tmp_.set_width(ebits_);
    tmp_.and_assign(args[1]);
    tmp_.shr_assign(args[2].low_u64());
    tmp_.add_assign(args[0]);
    tmp_.shl_assign(args[2].low_u64());
    dst.andnot_assign(args[1]);
    tmp_.and_assign(args[1]);
    dst.or_assign(tmp_);
  };

  switch (k.id) {
    case Kernel::kNoop:
      break;
    case Kernel::kSetProgram:
      need(3);
      regs[kRProgram] = args[0].low_u64() & 0xffff;
      regs[kRNumBytes] = args[1].low_u64() & 0xff;
      regs[kRVIngress] = args[2].low_u64() & 0xffff;
      break;
    case Kernel::kSetProgramResub:
      need(3);
      regs[kRProgram] = args[0].low_u64() & 0xffff;
      regs[kRNumBytes] = args[1].low_u64() & 0xff;
      regs[kRVIngress] = args[2].low_u64() & 0xffff;
      rs.resubmit_flag = true;
      break;
    case Kernel::kConcat: {
      // extracted = pr[0] .. pr[n-1], left-justified; unextracted pr bytes
      // read as zero (their PHV fields were never written).
      const std::uint32_t n = k.arg;
      if (8u * n > ebits_) bail("concat-width");
      ext_.assign(ebits_, 0);
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint8_t byte =
            i < rs.payload_offset ? rs.pkt[i] : std::uint8_t{0};
        if (byte != 0) ext_.set_bits_u64(ebits_ - 8 * (i + 1), 8, byte);
      }
      regs[kRResize] = regs[kRBytesExt] & 0xff;
      break;
    }
    case Kernel::kSetParse:
      need(3);
      regs[kRValidity] = args[0].low_u64() & 0xffffffff;
      regs[kRNext] = args[1].low_u64() & 0xffff;
      regs[kRCsum] = args[2].low_u64() & 0xff;
      break;
    case Kernel::kParseMiss:
      regs[kRNext] = 0;
      regs[kRVEgress] = hp4::kVirtDrop;
      break;
    case Kernel::kMatchResult:
      need(4);
      regs[kRMatchId] = args[0].low_u64() & 0xffffffff;
      regs[kRActionId] = args[1].low_u64() & 0xffff;
      regs[kRPrimCount] = args[2].low_u64() & 0xff;
      regs[kRNext] = args[3].low_u64() & 0xffff;
      break;
    case Kernel::kMatchMiss:
      regs[kRNext] = 0;
      regs[kRPrimCount] = 0;
      break;
    case Kernel::kLoadPrim:
      need(1);
      rs.prim_type = args[0].low_u64() & 0xff;
      break;
    case Kernel::kModExtConst:
      need(2);
      ext_.andnot_assign(args[1]);
      tmp_.assign(args[0]);
      tmp_.and_assign(args[1]);
      ext_.or_assign(tmp_);
      break;
    case Kernel::kModExtExt:
      need(4);
      mod_via(ext_, ext_);
      break;
    case Kernel::kModExtMeta:
      need(4);
      mod_via(meta_, ext_);
      break;
    case Kernel::kModMetaConst:
      need(2);
      meta_.andnot_assign(args[1]);
      tmp_.assign(args[0]);
      tmp_.and_assign(args[1]);
      meta_.or_assign(tmp_);
      break;
    case Kernel::kModMetaMeta:
      need(4);
      mod_via(meta_, meta_);
      break;
    case Kernel::kModMetaExt:
      need(4);
      mod_via(ext_, meta_);
      break;
    case Kernel::kModMetaVingress:
      need(2);
      tmp_.assign(ebits_, regs[kRVIngress]);
      tmp_.shl_assign(args[0].low_u64());
      meta_.andnot_assign(args[1]);
      tmp_.and_assign(args[1]);
      meta_.or_assign(tmp_);
      break;
    case Kernel::kModVegressConst:
      need(1);
      regs[kRVEgress] = args[0].low_u64() & 0xffff;
      break;
    case Kernel::kModVegressMeta:
      need(2);
      tmp_.assign(meta_);
      tmp_.set_width(ebits_);
      tmp_.and_assign(args[0]);
      tmp_.shr_assign(args[1].low_u64());
      regs[kRVEgress] = tmp_.bits_u64(0, 16);
      break;
    case Kernel::kModVegressVingress:
      regs[kRVEgress] = regs[kRVIngress];
      break;
    case Kernel::kAddExt:
      need(3);
      add_via(ext_);
      break;
    case Kernel::kAddMeta:
      need(3);
      add_via(meta_);
      break;
    case Kernel::kVirtDrop:
      regs[kRVEgress] = hp4::kVirtDrop;
      break;
    case Kernel::kResizeSet:
      need(1);
      regs[kRResize] = args[0].low_u64() & 0xff;
      break;
    case Kernel::kResizeInsert:
      need(4);
      tmp_.assign(ext_);
      tmp_.and_assign(args[2]);
      tmp_.shr_assign(args[3].low_u64());
      ext_.and_assign(args[1]);
      ext_.or_assign(tmp_);
      regs[kRResize] = (regs[kRResize] + args[0].low_u64()) & 0xff;
      break;
    case Kernel::kResizeRemove:
      need(4);
      tmp_.assign(ext_);
      tmp_.and_assign(args[2]);
      tmp_.shl_assign(args[3].low_u64());
      ext_.and_assign(args[1]);
      ext_.or_assign(tmp_);
      regs[kRResize] = (regs[kRResize] + args[0].low_u64()) & 0xff;
      break;
    case Kernel::kVfwdPhys:
      need(1);
      rs.espec = args[0].low_u64() & kEspecMask;
      break;
    case Kernel::kVfwdVdev:
      need(3);
      regs[kRProgram] = args[0].low_u64() & 0xffff;
      regs[kRNumBytes] = args[1].low_u64() & 0xff;
      regs[kRVIngress] = args[2].low_u64() & 0xffff;
      rs.recirc_flag = true;
      break;
    case Kernel::kVfwdMcast:
      need(1);
      rs.mcast = args[0].low_u64() & 0xffff;
      break;
    case Kernel::kVdrop:
      // The drop primitive: egress would set the drop flag, but the persona
      // never references a_vdrop from an egress table — treat it as outside
      // the tier if it somehow shows up there.
      if (rs.in_egress) bail("egress-drop");
      rs.espec = p4::kDropPort;
      break;
    case Kernel::kIpv4Csum: {
      // RFC 1071 over the 9 non-checksum words of the IPv4 header at byte
      // offset `arg` in `extracted`, folded exactly like the generated
      // action: two masked folds, one unmasked carry add, complement.
      const std::size_t off = k.arg;
      if ((off + 20) * 8 > ebits_) bail("csum-offset");
      std::uint64_t sum = 0;
      for (std::size_t w = 0; w < 10; ++w) {
        if (w == 5) continue;
        sum += ext_.bits_u64(ebits_ - 8 * off - 16 * (w + 1), 16);
      }
      sum = (sum & 0xffff) + (sum >> 16);
      sum = (sum & 0xffff) + (sum >> 16);
      sum = sum + (sum >> 16);
      sum = (sum ^ 0xffff) & 0xffff;
      ext_.set_bits_u64(ebits_ - 8 * off - 96, 16, sum);
      break;
    }
    case Kernel::kWriteback:
      if (8u * k.arg > ebits_) bail("writeback-width");
      rs.wb_ran = true;
      rs.wb_len = k.arg;
      break;
    case Kernel::kUnknown:
    default:
      bail("unknown-action");
  }
}

// ---------------------------------------------------------------------------
// Parser (host loop mirroring the persona's guarded extraction ladder)

bool VmExecutor::run_parser(const VmWork& w, RunState& rs) {
  (void)w;
  std::size_t extracted = 0;
  auto extend_to = [&](std::size_t target) -> bool {
    for (std::size_t i = extracted; i < target; ++i) {
      // Mirror the interpreter: bounds are checked per single-byte header,
      // before its extract event.
      if (i >= rs.pkt_size || i >= pr_instance_ids_.size()) {
        ++rs.res->parse_errors;
        return false;
      }
      if (rs.tr)
        rs.tr->record(obs::EventKind::kParserExtract, 0, 0,
                      pr_instance_ids_[i], 0, 0);
    }
    extracted = target;
    return true;
  };

  if (!extend_to(ladder_[0])) return false;
  const std::uint64_t numbytes = rs.regs[kRNumBytes] & 0xff;
  std::size_t pos = 0;
  while (pos + 1 < ladder_.size()) {
    // Select: continue only when numbytes names a deeper ladder value.
    bool deeper = false;
    for (std::size_t j = pos + 1; j < ladder_.size(); ++j) {
      if (numbytes == ladder_[j]) {
        deeper = true;
        break;
      }
    }
    if (!deeper) break;
    // Guard: the persona compares the low 16 bits of packet_length.
    const std::size_t target = ladder_[pos + 1];
    if ((rs.pkt_size & 0xffff) < target) break;
    if (!extend_to(target)) return false;
    ++pos;
  }

  rs.regs[kRBytesExt] = extracted & 0xff;
  rs.payload_offset = extracted;
  return true;
}

// ---------------------------------------------------------------------------
// Bytecode dispatch

void VmExecutor::run_prims(const BoundUnit& bu, const Instr& in,
                           RunState& rs) {
  auto* regs = rs.regs;
  for (std::uint32_t p = 1; p <= in.b; ++p) {
    // Slot guard: (prim_count >= p) false skips every remaining slot.
    if (regs[kRPrimCount] < p) break;
    const std::size_t base = in.c + std::size_t{p - 1} * kPrimSlotTables;
    if (base + kPrimSlotTables > bu.unit.prim_tables.size())
      bail("prim-window");
    const std::uint32_t* win = &bu.unit.prim_tables[base];

    // Setup: [program, action_id] → prim_type (default: noop).
    {
      bm::RuntimeTable* t = bu.tables[win[kPtSetup]];
      const auto& ks = t->keys();
      if (ks.size() != 2) bail("key-arity");
      key_scratch_[0].assign(ks[0].width, regs[kRProgram]);
      key_scratch_[1].assign(ks[1].width, regs[kRActionId]);
      apply_filled(t, bu.table_ids[win[kPtSetup]], rs);
    }

    // Exec: dispatch on the loaded primitive type, exactly like the
    // persona's if-ladder (anything unrecognized runs the noop table).
    std::size_t which;
    switch (rs.prim_type) {
      case static_cast<std::uint64_t>(hp4::PrimType::kMod):
        which = kPtMod;
        break;
      case static_cast<std::uint64_t>(hp4::PrimType::kAddSub):
        which = kPtAdd;
        break;
      case static_cast<std::uint64_t>(hp4::PrimType::kDrop):
        which = kPtDrop;
        break;
      case static_cast<std::uint64_t>(hp4::PrimType::kResize):
        which = kPtResize;
        break;
      default:
        which = kPtNoop;
        break;
    }
    {
      bm::RuntimeTable* t = bu.tables[win[which]];
      const auto& ks = t->keys();
      if (which == kPtMod || which == kPtAdd || which == kPtResize) {
        if (ks.size() != 3) bail("key-arity");
        key_scratch_[0].assign(ks[0].width, regs[kRProgram]);
        key_scratch_[1].assign(ks[1].width, regs[kRActionId]);
        key_scratch_[2].assign(ks[2].width, regs[kRMatchId]);
      } else {
        if (ks.size() != 1) bail("key-arity");
        key_scratch_[0].assign(ks[0].width, regs[kRProgram]);
      }
      apply_filled(t, bu.table_ids[win[which]], rs);
    }

    // Transition: [program] (counters/trace only; the action is a_tx).
    {
      bm::RuntimeTable* t = bu.tables[win[kPtTx]];
      const auto& ks = t->keys();
      if (ks.size() != 1) bail("key-arity");
      key_scratch_[0].assign(ks[0].width, regs[kRProgram]);
      apply_filled(t, bu.table_ids[win[kPtTx]], rs);
    }
  }
}

void VmExecutor::run_code(const BoundUnit& bu, std::uint32_t start_pc,
                          RunState& rs) {
  const auto& code = bu.unit.code;
  std::size_t pc = start_pc;
  std::size_t steps = 0;
  const std::size_t step_limit = code.size() * 8 + 64;
  while (true) {
    if (pc >= code.size()) bail("pc-overrun");
    if (++steps > step_limit) bail("runaway-bytecode");
    const Instr& in = code[pc];
    switch (static_cast<Op>(in.op)) {
      case Op::kHalt:
        return;
      case Op::kLookup: {
        if (in.a >= bu.tables.size()) bail("table-index");
        bm::RuntimeTable* t = bu.tables[in.a];
        build_key(static_cast<LookupMode>(in.mode), *t, rs);
        apply_filled(t, bu.table_ids[in.a], rs);
        ++pc;
        break;
      }
      case Op::kPrims:
        run_prims(bu, in, rs);
        ++pc;
        break;
      case Op::kJeq:
        if (in.mode >= kRegCount) bail("bad-register");
        pc = (rs.regs[in.mode] == in.b) ? in.c : pc + 1;
        break;
      case Op::kJmp:
        pc = in.c;
        break;
      case Op::kFallback:
        bail("bytecode-fallback");
      default:
        bail("bad-opcode");
    }
  }
}

// ---------------------------------------------------------------------------
// The host traversal loop (mirrors Switch::inject's traffic manager)

void VmExecutor::run(std::uint16_t port, const net::Packet& packet,
                     bm::ProcessResult& res) {
  RunState rs;
  rs.res = &res;
  rs.tr = tracer_;
  rs.timing = tracer_ && tracer_->timing();
  rs.prof = tracer_ && tracer_->profiling();
  obs::PipelineTracer* const tr = rs.tr;

  if (tr)
    tr->record(obs::EventKind::kInject, 0, port, 0, 0, packet.size());

  reset_pool();
  {
    const std::uint32_t s = alloc_slot();
    VmWork& w = slots_[s];
    w.where = VmWork::Where::kParser;
    w.packet.assign(packet.bytes().begin(), packet.bytes().end());
    w.ingress_port = port;
    w.itype = p4::InstanceType::kNormal;
    w.has_preserved = false;
    queue_.push_back(s);
  }

  std::size_t head = 0;
  std::size_t parser_entries = 0;
  std::size_t total_work = 0;
  const std::size_t max_traversals = sw_.options().max_traversals;
  const std::size_t work_limit = max_traversals * 8;

  while (head < queue_.size()) {
    const std::uint32_t si = queue_[head++];
    if (++total_work > work_limit) {
      ++res.loop_kills;
      if (tr) tr->record(obs::EventKind::kLoopKill, 0, 0, 0, 0, 0);
      break;
    }

    if (slots_[si].where == VmWork::Where::kParser) {
      if (++parser_entries > max_traversals) {
        ++res.loop_kills;
        ++res.drops;
        if (tr) tr->record(obs::EventKind::kLoopKill, 0, 0, 0, 0, 0);
        continue;
      }
      {
        const VmWork& w = slots_[si];
        if (tr)
          tr->begin_work(obs::EventKind::kTraversalStart, w.ingress_port,
                         static_cast<std::uint64_t>(w.itype));

        // Fresh traversal state (the interpreter's fresh_phv + preserved).
        std::fill(rs.regs, rs.regs + kRegCount, 0);
        ext_.assign(ebits_, 0);
        meta_.assign(mbits_, 0);
        rs.espec = 0;
        rs.mcast = 0;
        rs.prim_type = 0;
        rs.resubmit_flag = false;
        rs.recirc_flag = false;
        rs.in_egress = false;
        rs.wb_ran = false;
        rs.wb_len = 0;
        if (w.has_preserved) {
          rs.regs[kRProgram] = w.p_program & 0xffff;
          rs.regs[kRNumBytes] = w.p_numbytes & 0xff;
          rs.regs[kRVIngress] = w.p_vingress & 0xffff;
        }
        rs.pkt = w.packet.data();
        rs.pkt_size = w.packet.size();
        rs.payload_offset = 0;

        const std::uint64_t parse_t0 = rs.timing ? tr->clock_ns() : 0;
        const bool parsed = run_parser(w, rs);
        if (tr) {
          const std::uint64_t ns = rs.timing ? tr->clock_ns() - parse_t0 : 0;
          if (rs.prof) tr->observe_stage(obs::Stage::kParser, ns);
          tr->record(parsed ? obs::EventKind::kParserAccept
                            : obs::EventKind::kParseError,
                     0, 0, 0, 0, parsed ? rs.payload_offset : 0,
                     static_cast<std::uint32_t>(ns));
        }
        if (!parsed) {
          ++res.drops;
          if (tr) tr->record(obs::EventKind::kDrop, 0, 0, 0, 0, 0);
          continue;
        }

        // Ingress: setup_a in the host prologue, then the compiled ladder.
        {
          const auto& ks = setup_a_->keys();
          if (ks.size() != 2) bail("key-arity");
          key_scratch_[0].assign(ks[0].width, rs.regs[kRProgram]);
          key_scratch_[1].assign(ks[1].width, w.ingress_port);
          apply_filled(setup_a_, setup_a_id_, rs);
        }
        // The persona's resubmit-IF: when more bytes are needed on a
        // first-pass packet, ingress ends here (the TM resubmits below).
        const bool resub_end =
            (rs.regs[kRNumBytes] > rs.regs[kRBytesExt]) &&
            w.itype == p4::InstanceType::kNormal;
        if (!resub_end) {
          const BoundUnit& bu =
              bound_unit(static_cast<std::uint16_t>(rs.regs[kRProgram]));
          run_code(bu, 0, rs);
        }
      }

      // ---- ingress-side traffic manager ----
      const std::uint64_t tm_t0 = rs.timing ? tr->clock_ns() : 0;
      const auto observe_tm = [&] {
        if (rs.prof)
          tr->observe_stage(obs::Stage::kTm, tr->clock_ns() - tm_t0);
      };
      const std::uint16_t program_now =
          static_cast<std::uint16_t>(rs.regs[kRProgram]);

      if (rs.resubmit_flag) {
        ++res.resubmits;
        const std::uint32_t nsl = alloc_slot();
        VmWork& nw = slots_[nsl];
        VmWork& ow = slots_[si];
        nw.where = VmWork::Where::kParser;
        nw.packet.swap(ow.packet);
        nw.ingress_port = ow.ingress_port;
        nw.itype = p4::InstanceType::kResubmit;
        nw.has_preserved = true;
        nw.p_program = rs.regs[kRProgram];
        nw.p_numbytes = rs.regs[kRNumBytes];
        nw.p_vingress = rs.regs[kRVIngress];
        queue_.push_back(nsl);
        if (tr) {
          tr->record(obs::EventKind::kResubmit, 0, nw.ingress_port, 0, 0, 0);
          observe_tm();
        }
        continue;
      }

      if (rs.mcast != 0) {
        auto git =
            sw_.mc_groups().find(static_cast<std::uint16_t>(rs.mcast));
        if (git != sw_.mc_groups().end()) {
          for (const auto& [mport, rid] : git->second) {
            const std::uint32_t nsl = alloc_slot();
            VmWork& nw = slots_[nsl];
            VmWork& ow = slots_[si];
            nw.where = VmWork::Where::kEgress;
            nw.packet = ow.packet;  // replication copies the packet
            nw.ingress_port = ow.ingress_port;
            nw.itype = p4::InstanceType::kReplication;
            std::copy(rs.regs, rs.regs + kRegCount, nw.regs);
            nw.ext.assign(ext_);
            nw.recirc_flag = rs.recirc_flag;
            nw.egress_port = mport;
            nw.egress_rid = rid;
            nw.payload_offset = rs.payload_offset;
            nw.unit_program = program_now;
            queue_.push_back(nsl);
            ++res.multicast_copies;
            if (tr)
              tr->record(obs::EventKind::kMulticastCopy, 0, mport, 0,
                         rs.mcast, rid);
          }
        }
        if (tr) observe_tm();
        continue;
      }

      if (rs.espec == p4::kDropPort) {
        ++res.drops;
        if (tr) {
          tr->record(obs::EventKind::kDrop, 0, 0, 0, 0, 0);
          observe_tm();
        }
        continue;
      }

      {
        const std::uint32_t nsl = alloc_slot();
        VmWork& nw = slots_[nsl];
        VmWork& ow = slots_[si];
        nw.where = VmWork::Where::kEgress;
        nw.packet.swap(ow.packet);
        nw.ingress_port = ow.ingress_port;
        nw.itype = ow.itype;  // unicast keeps the traversal's instance type
        std::copy(rs.regs, rs.regs + kRegCount, nw.regs);
        nw.ext.assign(ext_);
        nw.recirc_flag = rs.recirc_flag;
        nw.egress_port = static_cast<std::uint16_t>(rs.espec);
        nw.egress_rid = 0;
        nw.payload_offset = rs.payload_offset;
        nw.unit_program = program_now;
        queue_.push_back(nsl);
        if (tr) {
          tr->record(obs::EventKind::kUnicast, 0, nw.egress_port, 0, 0, 0);
          observe_tm();
        }
      }
      continue;
    }

    // ---- egress ----
    {
      const VmWork& w = slots_[si];
      std::copy(w.regs, w.regs + kRegCount, rs.regs);
      ext_.assign(w.ext);
      rs.recirc_flag = w.recirc_flag;
      rs.resubmit_flag = false;
      rs.in_egress = true;
      rs.prim_type = 0;
      rs.pkt = w.packet.data();
      rs.pkt_size = w.packet.size();
      rs.payload_offset = w.payload_offset;
      rs.wb_ran = false;
      rs.wb_len = 0;
      if (tr)
        tr->begin_work(obs::EventKind::kEgressStart, w.egress_port,
                       static_cast<std::uint64_t>(w.itype));

      const BoundUnit& bu = bound_unit(w.unit_program);
      run_code(bu, bu.unit.egress_pc, rs);
    }
    const std::uint64_t etm_t0 = rs.timing ? tr->clock_ns() : 0;
    if (rs.prof) tr->observe_stage(obs::Stage::kTm, tr->clock_ns() - etm_t0);

    // Deparse: with a write-back, the emitted headers are the top wb_len
    // bytes of `extracted`; without one, the parsed bytes are untouched.
    const std::uint64_t dp_t0 = rs.timing ? tr->clock_ns() : 0;
    out_scratch_.clear();
    {
      const VmWork& w = slots_[si];
      if (rs.wb_ran) {
        for (std::uint32_t i = 0; i < rs.wb_len; ++i)
          out_scratch_.push_back(static_cast<std::uint8_t>(
              ext_.bits_u64(ebits_ - 8 * (std::size_t{i} + 1), 8)));
        out_scratch_.insert(out_scratch_.end(),
                            w.packet.begin() +
                                static_cast<std::ptrdiff_t>(rs.payload_offset),
                            w.packet.end());
      } else {
        out_scratch_.insert(out_scratch_.end(), w.packet.begin(),
                            w.packet.end());
      }
    }
    if (tr) {
      const std::uint64_t ns = rs.timing ? tr->clock_ns() - dp_t0 : 0;
      if (rs.prof) tr->observe_stage(obs::Stage::kDeparse, ns);
      tr->record(obs::EventKind::kDeparse, obs::kFlagEgress, 0, 0, 0,
                 out_scratch_.size(), static_cast<std::uint32_t>(ns));
    }

    if (rs.recirc_flag) {
      ++res.recirculations;
      const std::uint16_t from_port = slots_[si].egress_port;
      const std::uint32_t nsl = alloc_slot();
      VmWork& nw = slots_[nsl];
      nw.where = VmWork::Where::kParser;
      nw.packet.assign(out_scratch_.begin(), out_scratch_.end());
      nw.ingress_port = from_port;
      nw.itype = p4::InstanceType::kRecirculate;
      nw.has_preserved = true;
      nw.p_program = rs.regs[kRProgram];
      nw.p_numbytes = rs.regs[kRNumBytes];
      nw.p_vingress = rs.regs[kRVIngress];
      queue_.push_back(nsl);
      if (tr)
        tr->record(obs::EventKind::kRecirculate, obs::kFlagEgress, from_port,
                   0, 0, 0);
      continue;
    }

    const std::uint16_t out_port = slots_[si].egress_port;
    if (tr)
      tr->record(obs::EventKind::kEmit, obs::kFlagEgress, out_port, 0, 0,
                 out_scratch_.size());
    res.outputs.push_back(bm::OutputPacket{
        out_port, net::Packet(std::vector<std::uint8_t>(out_scratch_.begin(),
                                                        out_scratch_.end()))});
  }
}

bm::ProcessResult VmExecutor::process(std::uint16_t port,
                                      const net::Packet& packet) {
  // Constructs the compiled tier cannot express, detected up front (before
  // any tracer event): the ingress meter changes the control graph, and
  // per-primitive event recording has no bytecode equivalent.
  if (cfg_.ingress_meter) return run_fallback(port, packet, "ingress-meter");
  if (tracer_ && tracer_->options().record_primitives)
    return run_fallback(port, packet, "record-primitives");

  bm::ProcessResult res;
  try {
    run(port, packet, res);
  } catch (const FallbackSignal& f) {
    return run_fallback(port, packet, f.reason);
  } catch (const util::Error&) {
    // Unit compilation refused the program (unknown construct, epoch-
    // memoized failure, missing persona table): interpreted tier.
    return run_fallback(port, packet, "compile");
  }
  ++stats_.packets_bytecode;
  return res;
}

// ---------------------------------------------------------------------------
// Engine integration

engine::PacketPathFactory engine_fast_path(hp4::PersonaConfig cfg) {
  return [cfg](bm::Switch& sw) -> std::unique_ptr<engine::PacketPath> {
    return std::make_unique<VmExecutor>(sw, cfg);
  };
}

// ---------------------------------------------------------------------------
// CLI

bm::CliExtensions vm_cli_extensions(VmExecutor& vm) {
  bm::CliExtensions ext;
  ext.commands["vm"] = [&vm](bm::Switch& sw, const std::vector<std::string>&
                                                 tok) -> bm::CliResult {
    (void)sw;
    if (tok.size() < 2)
      throw util::CommandError(
          "vm: usage: vm status | vm stats | vm compile <program> | "
          "vm disasm <program>");
    const std::string& sub = tok[1];
    auto prog_arg = [&]() -> std::uint16_t {
      if (tok.size() < 3)
        throw util::CommandError("vm " + sub + ": missing <program>");
      try {
        const unsigned long v = std::stoul(tok[2], nullptr, 0);
        if (v > 0xffff) throw util::CommandError("");
        return static_cast<std::uint16_t>(v);
      } catch (const util::Error&) {
        throw util::CommandError("vm " + sub + ": program id out of range: " +
                                 tok[2]);
      } catch (const std::exception&) {
        throw util::CommandError("vm " + sub + ": bad program id '" + tok[2] +
                                 "'");
      }
    };

    std::ostringstream os;
    if (sub == "status") {
      const auto& st = vm.stats();
      os << "vm: " << vm.cached_units() << " cached unit(s), "
         << st.compiles << " compile(s), " << st.recompiles
         << " recompile(s), " << st.compile_failures << " failure(s)";
    } else if (sub == "stats") {
      const auto& st = vm.stats();
      os << "packets_bytecode=" << st.packets_bytecode
         << " packets_fallback=" << st.packets_fallback
         << " compiles=" << st.compiles << " recompiles=" << st.recompiles
         << " compile_failures=" << st.compile_failures;
      for (const auto& [reason, n] : st.fallback_reasons)
        os << " fallback[" << reason << "]=" << n;
    } else if (sub == "compile") {
      const Unit& u = vm.unit(prog_arg());
      os << "compiled program " << u.program << ": " << u.code.size()
         << " instruction(s), " << u.tables.size() << " table(s), epoch sum "
         << u.pruned_epoch_sum;
    } else if (sub == "disasm") {
      os << vm.disassemble(prog_arg());
    } else {
      throw util::CommandError("vm: unknown subcommand '" + sub + "'");
    }
    bm::CliResult r;
    r.ok = true;
    r.message = os.str();
    return r;
  };
  return ext;
}

}  // namespace hyper4::vm
