// Bytecode verifier: every invariant the executor's dispatch loop relies on
// is checked once here, so the loop itself can index arrays unchecked.
#include <string>
#include <vector>

#include "util/error.h"
#include "vm/bytecode.h"

namespace hyper4::vm {

std::vector<std::string> verify(const Unit& u) {
  std::vector<std::string> bad;
  auto at = [](std::size_t pc) { return "pc " + std::to_string(pc) + ": "; };

  if (u.code.empty()) {
    bad.push_back("empty code section");
    return bad;
  }
  if (u.egress_pc >= u.code.size())
    bad.push_back("egress_pc " + std::to_string(u.egress_pc) +
                  " outside code (size " + std::to_string(u.code.size()) +
                  ")");
  if (u.num_stages == 0) bad.push_back("num_stages is zero");
  if (u.pr_headers == 0) bad.push_back("pr_headers is zero");

  for (std::size_t pc = 0; pc < u.code.size(); ++pc) {
    const Instr& in = u.code[pc];
    const Op op = static_cast<Op>(in.op);
    switch (op) {
      case Op::kHalt:
      case Op::kFallback:
        break;
      case Op::kLookup:
        if (in.mode >= static_cast<std::uint8_t>(LookupMode::kModeCount))
          bad.push_back(at(pc) + "lookup mode " + std::to_string(in.mode) +
                        " out of range");
        if (in.a >= u.tables.size())
          bad.push_back(at(pc) + "table id " + std::to_string(in.a) +
                        " outside registry (size " +
                        std::to_string(u.tables.size()) + ")");
        break;
      case Op::kPrims: {
        if (in.a == 0 || in.a > u.num_stages)
          bad.push_back(at(pc) + "stage " + std::to_string(in.a) +
                        " outside [1, " + std::to_string(u.num_stages) + "]");
        if (in.b > u.max_primitives)
          bad.push_back(at(pc) + "slot limit " + std::to_string(in.b) +
                        " exceeds max_primitives " +
                        std::to_string(u.max_primitives));
        const std::uint64_t end =
            static_cast<std::uint64_t>(in.c) +
            static_cast<std::uint64_t>(in.b) * kPrimSlotTables;
        if (end > u.prim_tables.size()) {
          bad.push_back(at(pc) + "prim slot window [" + std::to_string(in.c) +
                        ", " + std::to_string(end) +
                        ") outside prim_tables (size " +
                        std::to_string(u.prim_tables.size()) + ")");
        } else {
          for (std::uint64_t i = in.c; i < end; ++i) {
            if (u.prim_tables[i] >= u.tables.size()) {
              bad.push_back(at(pc) + "prim table id " +
                            std::to_string(u.prim_tables[i]) +
                            " outside registry (size " +
                            std::to_string(u.tables.size()) + ")");
              break;
            }
          }
        }
        break;
      }
      case Op::kJeq:
        if (in.mode >= kRegCount)
          bad.push_back(at(pc) + "register id " + std::to_string(in.mode) +
                        " out of range (register file has " +
                        std::to_string(static_cast<int>(kRegCount)) + ")");
        [[fallthrough]];
      case Op::kJmp:
        if (in.c >= u.code.size())
          bad.push_back(at(pc) + "jump target " + std::to_string(in.c) +
                        " outside code (size " +
                        std::to_string(u.code.size()) + ")");
        break;
      default:
        bad.push_back(at(pc) + "invalid opcode " + std::to_string(in.op));
        break;
    }
    // No implicit fall-through past the end: the last instruction must end
    // control flow itself.
    if (pc + 1 == u.code.size() && op != Op::kHalt && op != Op::kJmp &&
        op != Op::kFallback)
      bad.push_back(at(pc) + "code falls through past the end (last op is " +
                    std::string(op_name(op)) + ")");
  }
  return bad;
}

void verify_or_throw(const Unit& u) {
  const std::vector<std::string> bad = verify(u);
  if (bad.empty()) return;
  std::string msg = "vm: bytecode verification failed:";
  for (const std::string& s : bad) msg += "\n  " + s;
  throw util::ConfigError(msg);
}

}  // namespace hyper4::vm
