#include "vm/bytecode.h"

#include <cstring>
#include <sstream>

#include "util/error.h"

namespace hyper4::vm {

const char* reg_name(Reg r) {
  switch (r) {
    case kRProgram: return "program";
    case kRNumBytes: return "numbytes";
    case kRBytesExt: return "bytes_ext";
    case kRValidity: return "validity";
    case kRNext: return "next";
    case kRMatchId: return "match_id";
    case kRActionId: return "action_id";
    case kRPrimCount: return "prim_count";
    case kRVIngress: return "vingress";
    case kRVEgress: return "vegress";
    case kRResize: return "resize";
    case kRCsum: return "csum_off";
    case kRegCount: break;
  }
  return "r?";
}

const char* lookup_mode_name(LookupMode m) {
  switch (m) {
    case LookupMode::kSetupB: return "setup_b";
    case LookupMode::kVparse: return "vparse";
    case LookupMode::kStageExt: return "stage_ext";
    case LookupMode::kStageMeta: return "stage_meta";
    case LookupMode::kStageStd: return "stage_std";
    case LookupMode::kVnet: return "vnet";
    case LookupMode::kEgCsum: return "eg_csum";
    case LookupMode::kEgWriteback: return "eg_writeback";
    case LookupMode::kModeCount: break;
  }
  return "mode?";
}

const char* op_name(Op o) {
  switch (o) {
    case Op::kHalt: return "halt";
    case Op::kLookup: return "lookup";
    case Op::kPrims: return "prims";
    case Op::kJeq: return "jeq";
    case Op::kJmp: return "jmp";
    case Op::kFallback: return "fallback";
    case Op::kOpCount: break;
  }
  return "op?";
}

std::string Unit::disassemble() const {
  std::ostringstream os;
  os << "; unit program=" << program << " stages=" << num_stages
     << " max_primitives=" << max_primitives << " pr_headers=" << pr_headers
     << " epoch_sum=" << pruned_epoch_sum << "\n";
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    if (pc == egress_pc) os << "egress:\n";
    const Instr& in = code[pc];
    char buf[32];
    std::snprintf(buf, sizeof buf, "%04zu  ", pc);
    os << buf;
    switch (static_cast<Op>(in.op)) {
      case Op::kHalt:
        os << "halt";
        break;
      case Op::kLookup:
        os << "lookup " << lookup_mode_name(static_cast<LookupMode>(in.mode))
           << " ";
        os << (in.a < tables.size() ? tables[in.a]
                                    : "<bad table #" + std::to_string(in.a) +
                                          ">");
        break;
      case Op::kPrims:
        os << "prims stage=" << in.a << " slots=" << in.b
           << " tables@" << in.c;
        break;
      case Op::kJeq:
        os << "jeq " << reg_name(static_cast<Reg>(in.mode)) << ", " << in.b
           << " -> " << in.c;
        break;
      case Op::kJmp:
        os << "jmp -> " << in.c;
        break;
      case Op::kFallback:
        os << "fallback reason=" << in.b;
        break;
      default:
        os << "op?" << static_cast<int>(in.op);
        break;
    }
    os << "\n";
  }
  if (!tables.empty()) {
    os << "; tables:\n";
    for (std::size_t i = 0; i < tables.size(); ++i)
      os << ";   [" << i << "] " << tables[i] << "\n";
  }
  return os.str();
}

namespace {

constexpr char kMagic[8] = {'H', 'P', '4', 'V', 'M', '0', '0', '1'};

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

struct Reader {
  const std::vector<std::uint8_t>& b;
  std::size_t at = 0;

  void need(std::size_t n) const {
    if (at + n > b.size())
      throw util::ParseError("vm: truncated bytecode stream at byte " +
                             std::to_string(at) + " (need " +
                             std::to_string(n) + " more, have " +
                             std::to_string(b.size() - at) + ")");
  }
  std::uint8_t u8() {
    need(1);
    return b[at++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(b[at]) |
                      static_cast<std::uint16_t>(b[at + 1]) << 8;
    at += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[at + i]) << (8 * i);
    at += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[at + i]) << (8 * i);
    at += 8;
    return v;
  }
};

// A hostile count field must not drive a multi-gigabyte reserve before the
// stream length has had a chance to contradict it.
constexpr std::uint32_t kMaxCount = 1u << 20;

std::uint32_t checked_count(std::uint32_t n, const char* what) {
  if (n > kMaxCount)
    throw util::ParseError(std::string("vm: implausible ") + what +
                           " count " + std::to_string(n));
  return n;
}

}  // namespace

std::vector<std::uint8_t> encode(const Unit& u) {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  put_u16(out, u.program);
  put_u16(out, u.num_stages);
  put_u16(out, u.max_primitives);
  put_u16(out, u.pr_headers);
  put_u32(out, u.egress_pc);
  put_u64(out, u.pruned_epoch_sum);
  put_u32(out, static_cast<std::uint32_t>(u.code.size()));
  for (const Instr& in : u.code) {
    out.push_back(in.op);
    out.push_back(in.mode);
    put_u16(out, in.a);
    put_u32(out, in.b);
    put_u32(out, in.c);
  }
  put_u32(out, static_cast<std::uint32_t>(u.tables.size()));
  for (const std::string& t : u.tables) {
    put_u16(out, static_cast<std::uint16_t>(t.size()));
    out.insert(out.end(), t.begin(), t.end());
  }
  put_u32(out, static_cast<std::uint32_t>(u.prim_tables.size()));
  for (std::uint32_t v : u.prim_tables) put_u32(out, v);
  return out;
}

Unit decode(const std::vector<std::uint8_t>& bytes) {
  Reader r{bytes};
  r.need(sizeof kMagic);
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    throw util::ParseError("vm: bad bytecode magic (not an HP4VM001 stream)");
  r.at = sizeof kMagic;

  Unit u;
  u.program = r.u16();
  u.num_stages = r.u16();
  u.max_primitives = r.u16();
  u.pr_headers = r.u16();
  u.egress_pc = r.u32();
  u.pruned_epoch_sum = r.u64();
  const std::uint32_t ninstr = checked_count(r.u32(), "instruction");
  u.code.reserve(ninstr);
  for (std::uint32_t i = 0; i < ninstr; ++i) {
    Instr in;
    in.op = r.u8();
    in.mode = r.u8();
    in.a = r.u16();
    in.b = r.u32();
    in.c = r.u32();
    u.code.push_back(in);
  }
  const std::uint32_t ntab = checked_count(r.u32(), "table");
  u.tables.reserve(ntab);
  for (std::uint32_t i = 0; i < ntab; ++i) {
    const std::uint16_t len = r.u16();
    r.need(len);
    u.tables.emplace_back(reinterpret_cast<const char*>(bytes.data()) + r.at,
                          len);
    r.at += len;
  }
  const std::uint32_t nprim = checked_count(r.u32(), "prim-table");
  u.prim_tables.reserve(nprim);
  for (std::uint32_t i = 0; i < nprim; ++i) u.prim_tables.push_back(r.u32());
  if (r.at != bytes.size())
    throw util::ParseError("vm: " + std::to_string(bytes.size() - r.at) +
                           " trailing byte(s) after bytecode stream");
  return u;
}

}  // namespace hyper4::vm
