#include "vm/compiler.h"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bm/switch.h"
#include "util/error.h"

namespace hyper4::vm {

namespace {

using hp4::MatchSource;

// Label-based assembler: emit with symbolic targets, patch once the layout
// is final.
class Asm {
 public:
  std::size_t label() {
    targets_.push_back(kUnbound);
    return targets_.size() - 1;
  }
  void bind(std::size_t label) { targets_[label] = code_.size(); }

  void lookup(LookupMode m, std::uint16_t table) {
    Instr in;
    in.op = static_cast<std::uint8_t>(Op::kLookup);
    in.mode = static_cast<std::uint8_t>(m);
    in.a = table;
    code_.push_back(in);
  }
  void prims(std::uint16_t stage, std::uint32_t limit, std::uint32_t base) {
    Instr in;
    in.op = static_cast<std::uint8_t>(Op::kPrims);
    in.a = stage;
    in.b = limit;
    in.c = base;
    code_.push_back(in);
  }
  void jeq(Reg r, std::uint32_t imm, std::size_t label) {
    Instr in;
    in.op = static_cast<std::uint8_t>(Op::kJeq);
    in.mode = static_cast<std::uint8_t>(r);
    in.b = imm;
    in.c = 0;
    fixups_.emplace_back(code_.size(), label);
    code_.push_back(in);
  }
  void jmp(std::size_t label) {
    Instr in;
    in.op = static_cast<std::uint8_t>(Op::kJmp);
    fixups_.emplace_back(code_.size(), label);
    code_.push_back(in);
  }
  void halt() {
    Instr in;
    in.op = static_cast<std::uint8_t>(Op::kHalt);
    code_.push_back(in);
  }

  std::size_t pc() const { return code_.size(); }

  std::vector<Instr> finish() {
    for (const auto& [pc, label] : fixups_) {
      if (targets_[label] == kUnbound)
        throw util::ConfigError("vm: internal: unbound label in compiler");
      code_[pc].c = static_cast<std::uint32_t>(targets_[label]);
    }
    return std::move(code_);
  }

 private:
  static constexpr std::size_t kUnbound = ~std::size_t{0};
  std::vector<Instr> code_;
  std::vector<std::size_t> targets_;
  std::vector<std::pair<std::size_t, std::size_t>> fixups_;
};

const bm::RuntimeTable& persona_table(const bm::Switch& sw,
                                      const std::string& name) {
  if (!sw.has_table(name))
    throw util::ConfigError("vm: switch is not a persona (no table '" + name +
                            "')");
  return sw.table(name);
}

// Does this entry's first key component (exact program id) select `program`?
bool entry_is_program(const bm::TableEntry& e, std::uint16_t program) {
  if (e.key.empty()) return false;
  return e.key[0].value == util::BitVec(hp4::kProgramBits, program);
}

struct SourceInfo {
  bool reachable = false;
  std::vector<std::uint64_t> next_codes;  // codes its entries can emit
  std::uint32_t slot_limit = 0;           // max prim_count over entries
};

}  // namespace

std::uint64_t pruning_epoch_sum(const bm::Switch& sw,
                                const hp4::PersonaConfig& cfg) {
  std::uint64_t sum = persona_table(sw, hp4::tbl_vparse()).index_epoch();
  for (std::size_t s = 1; s <= cfg.num_stages; ++s) {
    for (MatchSource m : {MatchSource::kExtracted, MatchSource::kMeta,
                          MatchSource::kStdMeta}) {
      sum += persona_table(sw, hp4::tbl_stage_match(s, m)).index_epoch();
    }
  }
  return sum;
}

Unit compile_unit(const bm::Switch& sw, const hp4::PersonaConfig& cfg,
                  std::uint16_t program) {
  if (cfg.ingress_meter)
    throw util::ConfigError(
        "vm: personas with the ingress meter are outside the compiled tier");

  const std::size_t num_stages = cfg.num_stages;
  const MatchSource kSources[] = {MatchSource::kExtracted, MatchSource::kMeta,
                                  MatchSource::kStdMeta};

  // --- enumerate pruning inputs -------------------------------------------
  // vparse: the initial next_table codes this program can start with. The
  // default (a_parse_miss) and any a_parse_miss entry yield code 0 (straight
  // to vnet), which never needs a dispatch test.
  std::vector<std::uint64_t> init_codes;
  {
    const bm::RuntimeTable& vp = persona_table(sw, hp4::tbl_vparse());
    auto collect = [&](std::size_t action,
                       const std::vector<util::BitVec>& args) {
      const std::string& name = sw.action_name(action);
      if (name == hp4::kActSetParse) {
        if (args.size() >= 2) init_codes.push_back(args[1].low_u64());
      } else if (name != hp4::kActParseMiss) {
        throw util::ConfigError("vm: unexpected action '" + name +
                                "' in vparse");
      }
    };
    for (std::uint64_t h : vp.handles()) {
      const bm::TableEntry& e = vp.entry(h);
      if (!entry_is_program(e, program)) continue;
      collect(e.action, e.action_args);
    }
    if (vp.has_default()) collect(vp.default_action(), vp.default_args());
  }

  // Stage tables: per (stage, source), the codes its a_match_result entries
  // can emit and the largest prim_count they can load.
  std::vector<SourceInfo> info(num_stages * 3);
  auto slot_of = [&](std::size_t stage, std::size_t mi) -> SourceInfo& {
    return info[(stage - 1) * 3 + mi];
  };
  for (std::size_t s = 1; s <= num_stages; ++s) {
    for (std::size_t mi = 0; mi < 3; ++mi) {
      const bm::RuntimeTable& t =
          persona_table(sw, hp4::tbl_stage_match(s, kSources[mi]));
      SourceInfo& si = slot_of(s, mi);
      auto collect = [&](std::size_t action,
                         const std::vector<util::BitVec>& args) {
        const std::string& name = sw.action_name(action);
        if (name == hp4::kActMatchResult) {
          if (args.size() >= 4) {
            si.next_codes.push_back(args[3].low_u64());
            si.slot_limit = std::max(
                si.slot_limit, static_cast<std::uint32_t>(args[2].low_u64()));
          }
        } else if (name != hp4::kActMatchMiss) {
          throw util::ConfigError("vm: unexpected action '" + name + "' in " +
                                  t.name());
        }
      };
      for (std::uint64_t h : t.handles()) {
        const bm::TableEntry& e = t.entry(h);
        if (!entry_is_program(e, program)) continue;
        collect(e.action, e.action_args);
      }
      if (t.has_default()) collect(t.default_action(), t.default_args());
      si.slot_limit = std::min(
          si.slot_limit, static_cast<std::uint32_t>(cfg.max_primitives));
    }
  }

  // --- reachability closure ------------------------------------------------
  // A code c = stage*8 + source reaches a block only when the stage/source
  // decode to a real selector; anything else falls through the persona's
  // dispatch chain to vnet, so it prunes away here too.
  auto decode_code = [&](std::uint64_t c)
      -> std::optional<std::pair<std::size_t, std::size_t>> {
    const std::size_t s = static_cast<std::size_t>(c / 8);
    const std::size_t m = static_cast<std::size_t>(c % 8);
    if (s < 1 || s > num_stages || m < 1 || m > 3) return std::nullopt;
    return std::make_pair(s, m - 1);
  };
  std::vector<std::uint64_t> work = init_codes;
  while (!work.empty()) {
    const std::uint64_t c = work.back();
    work.pop_back();
    const auto sm = decode_code(c);
    if (!sm) continue;
    SourceInfo& si = slot_of(sm->first, sm->second);
    if (si.reachable) continue;
    si.reachable = true;
    for (std::uint64_t n : si.next_codes) work.push_back(n);
  }

  // --- unit scaffolding ----------------------------------------------------
  Unit u;
  u.program = program;
  u.num_stages = static_cast<std::uint16_t>(num_stages);
  u.max_primitives = static_cast<std::uint16_t>(cfg.max_primitives);
  u.pr_headers = static_cast<std::uint16_t>(cfg.parse_max_bytes);
  u.pruned_epoch_sum = pruning_epoch_sum(sw, cfg);

  std::map<std::string, std::uint16_t> table_idx;
  auto tid = [&](const std::string& name) -> std::uint16_t {
    auto it = table_idx.find(name);
    if (it != table_idx.end()) return it->second;
    persona_table(sw, name);  // existence check
    const std::uint16_t id = static_cast<std::uint16_t>(u.tables.size());
    u.tables.push_back(name);
    table_idx.emplace(name, id);
    return id;
  };

  // Primitive-slot table windows, one per stage with any reachable block
  // (the slot chain is shared by a stage's three source tables).
  std::vector<std::uint32_t> stage_base(num_stages + 1, 0);
  for (std::size_t s = 1; s <= num_stages; ++s) {
    std::uint32_t stage_limit = 0;
    for (std::size_t mi = 0; mi < 3; ++mi) {
      if (slot_of(s, mi).reachable)
        stage_limit = std::max(stage_limit, slot_of(s, mi).slot_limit);
    }
    stage_base[s] = static_cast<std::uint32_t>(u.prim_tables.size());
    for (std::uint32_t p = 1; p <= stage_limit; ++p) {
      u.prim_tables.push_back(tid(hp4::tbl_prim_setup(s, p)));
      u.prim_tables.push_back(tid(hp4::tbl_prim_exec(s, p, hp4::PrimType::kMod)));
      u.prim_tables.push_back(
          tid(hp4::tbl_prim_exec(s, p, hp4::PrimType::kAddSub)));
      u.prim_tables.push_back(
          tid(hp4::tbl_prim_exec(s, p, hp4::PrimType::kDrop)));
      u.prim_tables.push_back(
          tid(hp4::tbl_prim_exec(s, p, hp4::PrimType::kResize)));
      u.prim_tables.push_back(
          tid(hp4::tbl_prim_exec(s, p, hp4::PrimType::kNoop)));
      u.prim_tables.push_back(tid(hp4::tbl_prim_tx(s, p)));
    }
  }

  // --- code emission -------------------------------------------------------
  Asm a;
  const LookupMode kStageModes[] = {LookupMode::kStageExt,
                                    LookupMode::kStageMeta,
                                    LookupMode::kStageStd};
  // One dispatch label per resume position (1..num_stages+1) plus one label
  // per reachable block.
  std::vector<std::size_t> dispatch(num_stages + 2);
  for (std::size_t pos = 1; pos <= num_stages + 1; ++pos)
    dispatch[pos] = a.label();
  std::vector<std::size_t> block(num_stages * 3);
  for (std::size_t s = 1; s <= num_stages; ++s)
    for (std::size_t mi = 0; mi < 3; ++mi)
      if (slot_of(s, mi).reachable) block[(s - 1) * 3 + mi] = a.label();
  const std::size_t vnet = a.label();

  // Ingress: setup_b concat, vparse, then the dispatch ladder.
  a.lookup(LookupMode::kSetupB, tid(hp4::tbl_setup_b()));
  a.lookup(LookupMode::kVparse, tid(hp4::tbl_vparse()));

  // Dispatch sections: position pos tests every reachable (s, m) with
  // s >= pos, exactly the persona's sel_ext → sel_meta → sel_std →
  // next-stage chain with the unreachable selectors pruned away.
  for (std::size_t pos = 1; pos <= num_stages + 1; ++pos) {
    a.bind(dispatch[pos]);
    for (std::size_t s = pos; s <= num_stages; ++s) {
      for (std::size_t mi = 0; mi < 3; ++mi) {
        if (!slot_of(s, mi).reachable) continue;
        a.jeq(kRNext,
              static_cast<std::uint32_t>(hp4::next_table_code(s, kSources[mi])),
              block[(s - 1) * 3 + mi]);
      }
    }
    a.jmp(vnet);
  }

  for (std::size_t s = 1; s <= num_stages; ++s) {
    for (std::size_t mi = 0; mi < 3; ++mi) {
      const SourceInfo& si = slot_of(s, mi);
      if (!si.reachable) continue;
      a.bind(block[(s - 1) * 3 + mi]);
      a.lookup(kStageModes[mi], tid(hp4::tbl_stage_match(s, kSources[mi])));
      a.prims(static_cast<std::uint16_t>(s), si.slot_limit, stage_base[s]);
      a.jmp(dispatch[s + 1]);
    }
  }

  a.bind(vnet);
  a.lookup(LookupMode::kVnet, tid(hp4::tbl_vnet()));
  a.halt();

  // Egress: checksum fix-up (only when csum_offset != 0), then write-back.
  const std::size_t egress_at = a.pc();
  const std::size_t wb = a.label();
  a.jeq(kRCsum, 0, wb);
  a.lookup(LookupMode::kEgCsum, tid(hp4::tbl_eg_csum()));
  a.bind(wb);
  a.lookup(LookupMode::kEgWriteback, tid(hp4::tbl_eg_writeback()));
  a.halt();

  u.egress_pc = static_cast<std::uint32_t>(egress_at);
  u.code = a.finish();
  verify_or_throw(u);
  return u;
}

}  // namespace hyper4::vm
