#include "rmt/rmt.h"

namespace hyper4::rmt {

std::size_t physical_stages_for(const RmtSpec& spec,
                                const StageRequirement& s) {
  if (s.match_bits == 0) return 1;
  if (s.ternary) {
    const std::size_t tcam_bits = 2 * s.match_bits;  // value + mask
    return (tcam_bits + spec.tcam_match_bits - 1) / spec.tcam_match_bits;
  }
  return (s.match_bits + spec.sram_match_bits - 1) / spec.sram_match_bits;
}

FitResult fit(const RmtSpec& spec, std::size_t phv_bits_needed,
              const std::vector<StageRequirement>& ingress,
              const std::vector<StageRequirement>& egress) {
  FitResult r;
  r.phv_bits_needed = phv_bits_needed;
  r.ingress_logical = ingress.size();
  r.egress_logical = egress.size();
  for (const auto& s : ingress) r.ingress_physical += physical_stages_for(spec, s);
  for (const auto& s : egress) r.egress_physical += physical_stages_for(spec, s);
  r.phv_fits = phv_bits_needed <= spec.phv_bits;
  r.ingress_fits = r.ingress_physical <= spec.ingress_stages;
  r.egress_fits = r.egress_physical <= spec.egress_stages;
  return r;
}

std::size_t phv_bits(const p4::Program& prog) {
  std::size_t bits = p4::standard_metadata_type().width_bits();
  for (const auto& inst : prog.instances) {
    bits += prog.header_type(inst.type).width_bits() * inst.stack_size;
  }
  return bits;
}

}  // namespace hyper4::rmt
