// RMT chip resource model (Bosshart et al., SIGCOMM'13) and the §6.5
// deployability analysis: can a given HyPer4 workload run on RMT-like
// ASIC hardware?
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "p4/ir.h"

namespace hyper4::rmt {

// The published RMT reference configuration.
struct RmtSpec {
  std::size_t phv_bits = 4096;
  std::size_t ingress_stages = 32;
  std::size_t egress_stages = 32;
  std::size_t sram_match_bits = 640;   // exact match width per stage
  std::size_t tcam_match_bits = 640;   // ternary match width per stage
};

// One logical (HyPer4) match-action stage as exercised by a packet.
struct StageRequirement {
  std::string table;
  std::size_t match_bits = 0;  // key bits offered to the match
  bool ternary = false;        // ternary keys need value+mask TCAM bits
};

// Physical RMT stages needed to realize one logical stage: ternary matches
// cost value+mask bits of TCAM (the paper's 800-bit match → 1600 bits → 3
// physical stages).
std::size_t physical_stages_for(const RmtSpec& spec, const StageRequirement& s);

struct FitResult {
  std::size_t ingress_logical = 0;
  std::size_t ingress_physical = 0;
  std::size_t egress_logical = 0;
  std::size_t egress_physical = 0;
  std::size_t phv_bits_needed = 0;
  bool phv_fits = false;
  bool ingress_fits = false;
  bool egress_fits = false;
  bool fits() const { return phv_fits && ingress_fits && egress_fits; }
  // Percentage of ingress capacity required (the paper's "60% more than
  // RMT's capacity" statement corresponds to 160 here).
  std::size_t ingress_capacity_pct(const RmtSpec& spec) const {
    return spec.ingress_stages == 0
               ? 0
               : ingress_physical * 100 / spec.ingress_stages;
  }
};

FitResult fit(const RmtSpec& spec, std::size_t phv_bits_needed,
              const std::vector<StageRequirement>& ingress,
              const std::vector<StageRequirement>& egress);

// Packet-header-vector footprint of a program: every header-instance and
// metadata bit the pipeline carries (stack elements included).
std::size_t phv_bits(const p4::Program& prog);

}  // namespace hyper4::rmt
