// Exception hierarchy shared across the HyPer4 reproduction.
//
// Configuration-time misuse (building an invalid IR, generating a persona
// with impossible parameters) and runtime-API failures (bad table commands)
// are reported as exceptions; the controller/DPMU layers catch CommandError
// where a failed operation is an expected outcome (e.g. quota exhaustion).
#pragma once

#include <stdexcept>
#include <string>

namespace hyper4::util {

// Base class for all errors raised by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// A program/IR/persona was constructed or configured inconsistently.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

// Textual input (P4 source, command file) could not be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

// A runtime API operation (table add/delete, register write, ...) failed.
class CommandError : public Error {
 public:
  explicit CommandError(const std::string& what) : Error(what) {}
};

// A virtual table operation was rejected by the DPMU (authorization, quota).
class IsolationError : public Error {
 public:
  explicit IsolationError(const std::string& what) : Error(what) {}
};

}  // namespace hyper4::util
