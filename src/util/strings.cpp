#include "util/strings.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace hyper4::util {

std::vector<std::string> split(std::string_view s, std::string_view seps) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && seps.find(s[i]) != std::string_view::npos) ++i;
    std::size_t j = i;
    while (j < s.size() && seps.find(s[j]) == std::string_view::npos) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split_keep_empty(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::uint64_t parse_uint(std::string_view s) {
  s = trim(s);
  if (s.empty()) throw ParseError("parse_uint: empty string");
  std::uint64_t v = 0;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    for (char c : s.substr(2)) {
      std::uint64_t d;
      if (c >= '0' && c <= '9') d = static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') d = static_cast<std::uint64_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') d = static_cast<std::uint64_t>(c - 'A' + 10);
      else throw ParseError("parse_uint: bad hex digit in '" + std::string(s) + "'");
      v = (v << 4) | d;
    }
    return v;
  }
  for (char c : s) {
    if (c < '0' || c > '9')
      throw ParseError("parse_uint: bad digit in '" + std::string(s) + "'");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<std::size_t> row(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    std::size_t diag = row[0];
    row[0] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, sub});
    }
  }
  return row[a.size()];
}

std::vector<std::string> nearest_names(
    std::string_view name, const std::vector<std::string>& candidates,
    std::size_t max_results) {
  const std::size_t cutoff = std::max<std::size_t>(2, name.size() / 3);
  std::vector<std::pair<std::size_t, std::string>> scored;
  for (const auto& c : candidates) {
    if (c == name) continue;
    const std::size_t d = edit_distance(name, c);
    if (d <= cutoff) scored.emplace_back(d, c);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<std::string> out;
  for (const auto& [d, c] : scored) {
    if (out.size() >= max_results) break;
    out.push_back(c);
  }
  return out;
}

std::string did_you_mean(std::string_view name,
                         const std::vector<std::string>& candidates,
                         std::size_t max_results) {
  const auto near = nearest_names(name, candidates, max_results);
  if (near.empty()) return "";
  std::string out = "; did you mean ";
  for (std::size_t i = 0; i < near.size(); ++i) {
    if (i) out += i + 1 == near.size() ? " or " : ", ";
    out += "'" + near[i] + "'";
  }
  out += "?";
  return out;
}

bool is_uint(std::string_view s) {
  s = trim(s);
  if (s.empty()) return false;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    for (char c : s.substr(2)) {
      if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
            (c >= 'A' && c <= 'F')))
        return false;
    }
    return true;
  }
  for (char c : s)
    if (c < '0' || c > '9') return false;
  return true;
}

}  // namespace hyper4::util
