// Deterministic RNG wrapper for reproducible tests and workloads.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/bitvec.h"

namespace hyper4::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x48795034u /* "HyP4" */) : eng_(seed) {}

  // Uniform in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(eng_);
  }

  bool coin(double p = 0.5) {
    return std::bernoulli_distribution(p)(eng_);
  }

  std::vector<std::uint8_t> bytes(std::size_t n) {
    std::vector<std::uint8_t> out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(uniform(0, 255));
    return out;
  }

  // Random BitVec of the given width.
  BitVec bits(std::size_t width) {
    BitVec v(width);
    for (std::size_t i = 0; i < width; i += 64) {
      v.set_slice(i, BitVec(std::min<std::size_t>(64, width - i), eng_()));
    }
    return v;
  }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

}  // namespace hyper4::util
