// Deterministic RNG wrapper for reproducible tests and workloads.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <random>
#include <vector>

#include "util/bitvec.h"

namespace hyper4::util {

// Seed override from the environment, so a CI failure is a one-command
// repro: HP4_CHECK_SEED=<n> ./the_test. Returns `fallback` when the
// variable is unset or unparseable. Accepts decimal or 0x-hex. Fuzz /
// stress / check tests derive all their Rng seeds from this and print the
// effective seed on failure.
inline std::uint64_t env_seed(std::uint64_t fallback,
                              const char* var = "HP4_CHECK_SEED") {
  const char* s = std::getenv(var);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (end == s || (end != nullptr && *end != '\0')) return fallback;
  return static_cast<std::uint64_t>(v);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x48795034u /* "HyP4" */) : eng_(seed) {}

  // Uniform in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(eng_);
  }

  bool coin(double p = 0.5) {
    return std::bernoulli_distribution(p)(eng_);
  }

  std::vector<std::uint8_t> bytes(std::size_t n) {
    std::vector<std::uint8_t> out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(uniform(0, 255));
    return out;
  }

  // Random BitVec of the given width.
  BitVec bits(std::size_t width) {
    BitVec v(width);
    for (std::size_t i = 0; i < width; i += 64) {
      v.set_slice(i, BitVec(std::min<std::size_t>(64, width - i), eng_()));
    }
    return v;
  }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

}  // namespace hyper4::util
