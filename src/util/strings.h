// Small string helpers used by the command-file tooling and the P4-14
// front end.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hyper4::util {

// Split on any run of characters from `seps` (no empty tokens).
std::vector<std::string> split(std::string_view s, std::string_view seps = " \t");

// Split on a single separator character, keeping empty tokens.
std::vector<std::string> split_keep_empty(std::string_view s, char sep);

// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Parse an unsigned integer; accepts decimal or 0x-prefixed hex.
// Throws ParseError on malformed input.
std::uint64_t parse_uint(std::string_view s);

bool is_uint(std::string_view s);

}  // namespace hyper4::util
