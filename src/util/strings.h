// Small string helpers used by the command-file tooling and the P4-14
// front end.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hyper4::util {

// Split on any run of characters from `seps` (no empty tokens).
std::vector<std::string> split(std::string_view s, std::string_view seps = " \t");

// Split on a single separator character, keeping empty tokens.
std::vector<std::string> split_keep_empty(std::string_view s, char sep);

// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Parse an unsigned integer; accepts decimal or 0x-prefixed hex.
// Throws ParseError on malformed input.
std::uint64_t parse_uint(std::string_view s);

bool is_uint(std::string_view s);

// Levenshtein edit distance (insert / delete / substitute, unit costs).
std::size_t edit_distance(std::string_view a, std::string_view b);

// The candidates nearest to `name` by edit distance, closest first (ties
// broken lexicographically), filtered to distances small enough to be a
// plausible typo (<= max(2, |name|/3)). At most `max_results` entries.
// Used by the runtime CLI to turn "no table named 'ipv4_lpn'" into an
// actionable message naming 'ipv4_lpm'.
std::vector<std::string> nearest_names(std::string_view name,
                                       const std::vector<std::string>& candidates,
                                       std::size_t max_results = 3);

// Render a nearest_names() result as "; did you mean 'a' or 'b'?" — empty
// string when there are no plausible candidates.
std::string did_you_mean(std::string_view name,
                         const std::vector<std::string>& candidates,
                         std::size_t max_results = 3);

}  // namespace hyper4::util
