// BitVec: an arbitrary-width unsigned bit vector.
//
// This is the workhorse value type of the whole reproduction. P4 header
// fields, metadata fields (including HyPer4's 800-bit `extracted` and
// 256-bit `ext_meta` fields), ternary match values and masks are all
// BitVecs. Semantics follow bmv2's Data type: values are unsigned, all
// arithmetic is modulo 2^width, and the representation is canonical (bits
// above `width` are always zero).
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hyper4::util {

class BitVec {
 public:
  // Zero-width, zero-valued vector.
  BitVec() = default;

  // `width` bits, all zero.
  explicit BitVec(std::size_t width);

  // `width` bits holding `value` (mod 2^width).
  BitVec(std::size_t width, std::uint64_t value);

  // All-ones vector of `width` bits.
  static BitVec ones(std::size_t width);

  // A `width`-bit mask with `len` one-bits starting at bit `lsb` (bit 0 is
  // the least significant). Bits outside [0, width) are dropped.
  static BitVec mask_range(std::size_t width, std::size_t lsb, std::size_t len);

  // Interpret `bytes` as a big-endian (network order) integer; the result
  // has width `width` (default: 8 * bytes.size()). Extra high-order input
  // bits beyond `width` are truncated.
  static BitVec from_bytes(std::span<const std::uint8_t> bytes);
  static BitVec from_bytes(std::span<const std::uint8_t> bytes,
                           std::size_t width);

  // Parse a hex string ("0x" prefix optional) into a `width`-bit vector.
  static BitVec from_hex(std::size_t width, const std::string& hex);

  // In-place re-initialization to `width` bits holding `value` (mod
  // 2^width), reusing the existing word storage — the allocation-free
  // counterpart of `*this = BitVec(width, value)` for scratch vectors.
  void assign(std::size_t width, std::uint64_t value);

  // In-place copy of `o` (width and value), reusing word storage.
  void assign(const BitVec& o);

  // In-place resize (zero-extend or truncate), reusing word storage: the
  // allocation-free counterpart of `*this = this->resized(width)`.
  void set_width(std::size_t width);

  // --- in-place compound operators (the VM kernel scratch path) -----------
  //
  // All keep this vector's width; `o` is treated as resized to it (extra
  // high operand bits ignored, missing words read as zero), matching what
  // the binary operators produce after a resized() on the result.

  void and_assign(const BitVec& o);     // *this &= o
  void or_assign(const BitVec& o);      // *this |= o
  void xor_assign(const BitVec& o);     // *this ^= o
  void andnot_assign(const BitVec& o);  // *this &= ~o (within width)
  void shl_assign(std::size_t n);       // *this <<= n
  void shr_assign(std::size_t n);       // *this >>= n
  void add_assign(const BitVec& o);     // *this += o (mod 2^width)

  // `len` bits (len <= 64) starting at bit `lsb`, as a u64. Reads past the
  // top are zero-filled; the slice() counterpart that never materializes a
  // BitVec.
  std::uint64_t bits_u64(std::size_t lsb, std::size_t len) const;

  // Overwrite `len` bits (len <= 64) starting at bit `lsb` with the low
  // `len` bits of `v`; bits falling outside [0, width) are dropped. The
  // set_slice() counterpart for u64-sized payloads.
  void set_bits_u64(std::size_t lsb, std::size_t len, std::uint64_t v);

  std::size_t width() const { return width_; }
  bool zero_width() const { return width_ == 0; }

  // True iff any bit is set.
  bool any() const;
  bool is_zero() const { return !any(); }

  std::size_t popcount() const;

  // Bit access; bit 0 is least significant. Out-of-range get() returns
  // false; out-of-range set() is ignored.
  bool get_bit(std::size_t i) const;
  void set_bit(std::size_t i, bool v);

  // Value of the low 64 bits (no width requirement).
  std::uint64_t low_u64() const;

  // Value as uint64_t; throws ConfigError if any bit >= 64 is set.
  std::uint64_t to_u64() const;

  // Big-endian byte image, ceil(width/8) bytes (high-order byte first,
  // partially-used leading byte zero-padded in its high bits).
  std::vector<std::uint8_t> to_bytes() const;

  // Lowercase hex, zero-padded to ceil(width/4) digits, no prefix.
  std::string to_hex() const;

  // Decimal string (for command files / debugging).
  std::string to_dec() const;

  // Return a copy resized to `width` (zero-extended or truncated).
  BitVec resized(std::size_t width) const;

  // `len` bits starting at bit `lsb` (bit 0 = LSB). Reads past the top are
  // zero-filled; result width is exactly `len`.
  BitVec slice(std::size_t lsb, std::size_t len) const;

  // Overwrite `v.width()` bits starting at bit `lsb` with `v` (bits falling
  // outside this vector are dropped).
  void set_slice(std::size_t lsb, const BitVec& v);

  // Bitwise operators. Operands of different widths are zero-extended to
  // the larger width, which is also the result width.
  BitVec operator&(const BitVec& o) const;
  BitVec operator|(const BitVec& o) const;
  BitVec operator^(const BitVec& o) const;
  BitVec operator~() const;  // complement within width

  // Logical shifts; result width unchanged.
  BitVec operator<<(std::size_t n) const;
  BitVec operator>>(std::size_t n) const;

  // Modular arithmetic; result width = max of operand widths.
  BitVec operator+(const BitVec& o) const;
  BitVec operator-(const BitVec& o) const;

  // Value comparison (width-independent: 8'h01 == 16'h0001).
  bool operator==(const BitVec& o) const;
  std::strong_ordering operator<=>(const BitVec& o) const;

  // --- allocation-free match helpers (the table lookup hot path) ----------
  //
  // These replace `resized()` / `operator&` / `mask_range()` chains in
  // bm::RuntimeTable::lookup so a probe never constructs a temporary BitVec.
  // All of them treat words beyond an operand's storage as zero, exactly
  // like the binary operators do.

  // (*this & mask) == (o & mask), word-wise. Because `mask` is canonical
  // (bits >= mask.width() are zero), this also truncates both operands to
  // the mask's width — the ternary match semantics.
  bool masked_equals(const BitVec& o, const BitVec& mask) const;

  // True when the top `prefix_len` bits of the `width`-bit images of *this
  // and `o` agree, i.e. bits [width - prefix_len, width). Bits of either
  // operand at positions >= width are ignored (as if both were resized to
  // `width` first). prefix_len == 0 always matches; prefix_len > width is
  // clamped to width.
  bool prefix_equals(const BitVec& o, std::size_t width,
                     std::size_t prefix_len) const;

  // Equality / ordering of the low `width` bits of both operands (as if
  // both were resized(width) first), without building the copies.
  bool equals_resized(const BitVec& o, std::size_t width) const;
  std::strong_ordering compare_resized(const BitVec& o,
                                       std::size_t width) const;

  // Big-endian byte image of the low `width` bits (what to_bytes() returns
  // for a resized(width) copy), written into caller storage. The span form
  // writes exactly ceil(width/8) bytes and returns that count (throws
  // ConfigError if `out` is too small); the string form appends — callers
  // reuse the string so its capacity amortizes to zero allocations.
  std::size_t write_bytes(std::span<std::uint8_t> out, std::size_t width) const;
  void append_bytes(std::string& out, std::size_t width) const;

  // Low 64 bits truncated to `width` (width <= 64): the packed-u64 image
  // used by the table fast paths.
  std::uint64_t low_bits_u64(std::size_t width) const;

 private:
  static constexpr std::size_t kWordBits = 64;
  static std::size_t words_for(std::size_t width) {
    return (width + kWordBits - 1) / kWordBits;
  }
  // Clear bits at positions >= width_ (canonical form).
  void trim();

  std::size_t width_ = 0;
  std::vector<std::uint64_t> words_;  // little-endian word order
};

}  // namespace hyper4::util
