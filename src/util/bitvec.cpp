#include "util/bitvec.h"

#include <algorithm>
#include <bit>

#include "util/error.h"

namespace hyper4::util {

namespace {
// All-ones in the low `rem` bit positions of a word (rem in [1, 64)).
// Usable above the match-helper section, which keeps its own copy.
inline std::uint64_t low_ones_inline(std::size_t rem) {
  return (~std::uint64_t{0}) >> (64 - rem);
}
}  // namespace

BitVec::BitVec(std::size_t width) : width_(width), words_(words_for(width), 0) {}

BitVec::BitVec(std::size_t width, std::uint64_t value)
    : width_(width), words_(words_for(width), 0) {
  if (!words_.empty()) words_[0] = value;
  trim();
}

BitVec BitVec::ones(std::size_t width) {
  BitVec v(width);
  std::fill(v.words_.begin(), v.words_.end(), ~std::uint64_t{0});
  v.trim();
  return v;
}

BitVec BitVec::mask_range(std::size_t width, std::size_t lsb, std::size_t len) {
  BitVec v(width);
  if (lsb >= width) return v;
  len = std::min(len, width - lsb);
  v.set_slice(lsb, BitVec::ones(len));
  return v;
}

BitVec BitVec::from_bytes(std::span<const std::uint8_t> bytes) {
  return from_bytes(bytes, bytes.size() * 8);
}

BitVec BitVec::from_bytes(std::span<const std::uint8_t> bytes,
                          std::size_t width) {
  BitVec v(width);
  // bytes[0] is most significant; bit position of byte i's LSB is
  // 8 * (n - 1 - i) within the full byte image.
  const std::size_t n = bytes.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t bit = 8 * (n - 1 - i);
    if (bit >= width + 8) continue;  // entirely above the kept width
    const std::size_t word = bit / kWordBits;
    const std::size_t off = bit % kWordBits;
    if (word < v.words_.size()) {
      v.words_[word] |= static_cast<std::uint64_t>(bytes[i]) << off;
      if (off > kWordBits - 8 && word + 1 < v.words_.size()) {
        v.words_[word + 1] |=
            static_cast<std::uint64_t>(bytes[i]) >> (kWordBits - off);
      }
    }
  }
  v.trim();
  return v;
}

BitVec BitVec::from_hex(std::size_t width, const std::string& hex) {
  std::string s = hex;
  if (s.rfind("0x", 0) == 0 || s.rfind("0X", 0) == 0) s = s.substr(2);
  if (s.empty()) throw ParseError("BitVec::from_hex: empty literal");
  BitVec v(width);
  std::size_t bit = 0;
  for (auto it = s.rbegin(); it != s.rend(); ++it, bit += 4) {
    char c = *it;
    std::uint64_t d = 0;
    if (c >= '0' && c <= '9') d = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') d = static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') d = static_cast<std::uint64_t>(c - 'A' + 10);
    else if (c == '_') { bit -= 4; continue; }
    else throw ParseError(std::string("BitVec::from_hex: bad digit '") + c + "'");
    if (bit >= width) continue;
    const std::size_t word = bit / kWordBits;
    if (word < v.words_.size()) v.words_[word] |= d << (bit % kWordBits);
  }
  v.trim();
  return v;
}

void BitVec::assign(std::size_t width, std::uint64_t value) {
  width_ = width;
  words_.assign(words_for(width), 0);  // reuses capacity when sufficient
  if (!words_.empty()) words_[0] = value;
  trim();
}

void BitVec::assign(const BitVec& o) {
  width_ = o.width_;
  words_.assign(o.words_.begin(), o.words_.end());  // reuses capacity
}

void BitVec::set_width(std::size_t width) {
  width_ = width;
  words_.resize(words_for(width), 0);  // shrink keeps capacity
  trim();
}

void BitVec::and_assign(const BitVec& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= i < o.words_.size() ? o.words_[i] : 0;
  }
}

void BitVec::or_assign(const BitVec& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= i < o.words_.size() ? o.words_[i] : 0;
  }
  trim();
}

void BitVec::xor_assign(const BitVec& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] ^= i < o.words_.size() ? o.words_[i] : 0;
  }
  trim();
}

void BitVec::andnot_assign(const BitVec& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~(i < o.words_.size() ? o.words_[i] : 0);
  }
}

void BitVec::shl_assign(std::size_t n) {
  if (n == 0) return;
  if (n >= width_) {
    std::fill(words_.begin(), words_.end(), 0);
    return;
  }
  const std::size_t wshift = n / kWordBits;
  const std::size_t bshift = n % kWordBits;
  for (std::size_t i = words_.size(); i-- > 0;) {
    std::uint64_t x = 0;
    if (i >= wshift) {
      x = words_[i - wshift] << bshift;
      if (bshift != 0 && i > wshift) {
        x |= words_[i - wshift - 1] >> (kWordBits - bshift);
      }
    }
    words_[i] = x;
  }
  trim();
}

void BitVec::shr_assign(std::size_t n) {
  if (n == 0) return;
  if (n >= width_) {
    std::fill(words_.begin(), words_.end(), 0);
    return;
  }
  const std::size_t wshift = n / kWordBits;
  const std::size_t bshift = n % kWordBits;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t x = 0;
    if (i + wshift < words_.size()) {
      x = words_[i + wshift] >> bshift;
      if (bshift != 0 && i + wshift + 1 < words_.size()) {
        x |= words_[i + wshift + 1] << (kWordBits - bshift);
      }
    }
    words_[i] = x;
  }
}

void BitVec::add_assign(const BitVec& o) {
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t b = i < o.words_.size() ? o.words_[i] : 0;
    unsigned __int128 s = static_cast<unsigned __int128>(words_[i]) + b + carry;
    words_[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  trim();
}

std::uint64_t BitVec::bits_u64(std::size_t lsb, std::size_t len) const {
  if (len == 0) return 0;
  const std::size_t word = lsb / kWordBits;
  const std::size_t off = lsb % kWordBits;
  std::uint64_t x = word < words_.size() ? words_[word] >> off : 0;
  if (off != 0 && word + 1 < words_.size()) {
    x |= words_[word + 1] << (kWordBits - off);
  }
  return len >= kWordBits ? x : (x & low_ones_inline(len));
}

void BitVec::set_bits_u64(std::size_t lsb, std::size_t len, std::uint64_t v) {
  if (len == 0 || lsb >= width_) return;
  len = std::min(len, std::min<std::size_t>(kWordBits, width_ - lsb));
  const std::uint64_t m =
      len >= kWordBits ? ~std::uint64_t{0} : low_ones_inline(len);
  v &= m;
  const std::size_t word = lsb / kWordBits;
  const std::size_t off = lsb % kWordBits;
  words_[word] = (words_[word] & ~(m << off)) | (v << off);
  if (off != 0 && off + len > kWordBits && word + 1 < words_.size()) {
    const std::size_t hi = off + len - kWordBits;  // bits spilling over
    const std::uint64_t hm = low_ones_inline(hi);
    words_[word + 1] =
        (words_[word + 1] & ~hm) | ((v >> (kWordBits - off)) & hm);
  }
  trim();
}

void BitVec::trim() {
  const std::size_t rem = width_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (~std::uint64_t{0}) >> (kWordBits - rem);
  }
}

bool BitVec::any() const {
  for (auto w : words_)
    if (w != 0) return true;
  return false;
}

std::size_t BitVec::popcount() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVec::get_bit(std::size_t i) const {
  if (i >= width_) return false;
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVec::set_bit(std::size_t i, bool v) {
  if (i >= width_) return;
  const std::uint64_t m = std::uint64_t{1} << (i % kWordBits);
  if (v) words_[i / kWordBits] |= m;
  else words_[i / kWordBits] &= ~m;
}

std::uint64_t BitVec::low_u64() const { return words_.empty() ? 0 : words_[0]; }

std::uint64_t BitVec::to_u64() const {
  for (std::size_t i = 1; i < words_.size(); ++i) {
    if (words_[i] != 0)
      throw ConfigError("BitVec::to_u64: value does not fit in 64 bits");
  }
  return low_u64();
}

std::vector<std::uint8_t> BitVec::to_bytes() const {
  const std::size_t n = (width_ + 7) / 8;
  std::vector<std::uint8_t> out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t bit = 8 * (n - 1 - i);
    const std::size_t word = bit / kWordBits;
    const std::size_t off = bit % kWordBits;
    std::uint64_t b = words_[word] >> off;
    if (off > kWordBits - 8 && word + 1 < words_.size()) {
      b |= words_[word + 1] << (kWordBits - off);
    }
    out[i] = static_cast<std::uint8_t>(b & 0xff);
  }
  return out;
}

std::string BitVec::to_hex() const {
  const std::size_t digits = (width_ + 3) / 4;
  std::string s(digits, '0');
  static const char* kHex = "0123456789abcdef";
  for (std::size_t d = 0; d < digits; ++d) {
    const std::size_t bit = 4 * d;
    const std::size_t word = bit / kWordBits;
    const std::size_t off = bit % kWordBits;
    const std::uint64_t nib = (words_[word] >> off) & 0xf;
    s[digits - 1 - d] = kHex[nib];
  }
  return s.empty() ? std::string("0") : s;
}

std::string BitVec::to_dec() const {
  // Repeated division by 10 over the word array (values are modest in
  // practice; this is used for command files and messages).
  std::vector<std::uint64_t> w = words_;
  std::string out;
  auto all_zero = [&]() {
    for (auto x : w)
      if (x) return false;
    return true;
  };
  if (all_zero()) return "0";
  while (!all_zero()) {
    unsigned __int128 rem = 0;
    for (std::size_t i = w.size(); i-- > 0;) {
      unsigned __int128 cur = (rem << 64) | w[i];
      w[i] = static_cast<std::uint64_t>(cur / 10);
      rem = cur % 10;
    }
    out.push_back(static_cast<char>('0' + static_cast<int>(rem)));
  }
  std::reverse(out.begin(), out.end());
  return out;
}

BitVec BitVec::resized(std::size_t width) const {
  // Same width: hand back a plain copy instead of zero-filling a fresh
  // vector and re-copying the words (and let copy elision / move kick in
  // at call sites binding the result to a value).
  if (width == width_) return *this;
  BitVec v(width);
  const std::size_t n = std::min(v.words_.size(), words_.size());
  std::copy(words_.begin(), words_.begin() + static_cast<std::ptrdiff_t>(n),
            v.words_.begin());
  v.trim();
  return v;
}

BitVec BitVec::slice(std::size_t lsb, std::size_t len) const {
  BitVec v(len);
  for (std::size_t i = 0; i < v.words_.size(); ++i) {
    const std::size_t bit = lsb + i * kWordBits;
    const std::size_t word = bit / kWordBits;
    const std::size_t off = bit % kWordBits;
    std::uint64_t x = word < words_.size() ? words_[word] >> off : 0;
    if (off != 0 && word + 1 < words_.size()) {
      x |= words_[word + 1] << (kWordBits - off);
    }
    v.words_[i] = x;
  }
  v.trim();
  return v;
}

void BitVec::set_slice(std::size_t lsb, const BitVec& v) {
  for (std::size_t i = 0; i < v.width_; ++i) {
    const std::size_t dst = lsb + i;
    if (dst >= width_) break;
    set_bit(dst, v.get_bit(i));
  }
}

BitVec BitVec::operator&(const BitVec& o) const {
  BitVec r(std::max(width_, o.width_));
  for (std::size_t i = 0; i < r.words_.size(); ++i) {
    const std::uint64_t a = i < words_.size() ? words_[i] : 0;
    const std::uint64_t b = i < o.words_.size() ? o.words_[i] : 0;
    r.words_[i] = a & b;
  }
  return r;
}

BitVec BitVec::operator|(const BitVec& o) const {
  BitVec r(std::max(width_, o.width_));
  for (std::size_t i = 0; i < r.words_.size(); ++i) {
    const std::uint64_t a = i < words_.size() ? words_[i] : 0;
    const std::uint64_t b = i < o.words_.size() ? o.words_[i] : 0;
    r.words_[i] = a | b;
  }
  return r;
}

BitVec BitVec::operator^(const BitVec& o) const {
  BitVec r(std::max(width_, o.width_));
  for (std::size_t i = 0; i < r.words_.size(); ++i) {
    const std::uint64_t a = i < words_.size() ? words_[i] : 0;
    const std::uint64_t b = i < o.words_.size() ? o.words_[i] : 0;
    r.words_[i] = a ^ b;
  }
  return r;
}

BitVec BitVec::operator~() const {
  BitVec r(width_);
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = ~words_[i];
  r.trim();
  return r;
}

BitVec BitVec::operator<<(std::size_t n) const {
  BitVec r(width_);
  if (n >= width_) return r;
  const std::size_t wshift = n / kWordBits;
  const std::size_t bshift = n % kWordBits;
  for (std::size_t i = r.words_.size(); i-- > 0;) {
    std::uint64_t x = 0;
    if (i >= wshift) {
      x = words_[i - wshift] << bshift;
      if (bshift != 0 && i > wshift) {
        x |= words_[i - wshift - 1] >> (kWordBits - bshift);
      }
    }
    r.words_[i] = x;
  }
  r.trim();
  return r;
}

BitVec BitVec::operator>>(std::size_t n) const {
  BitVec r(width_);
  if (n >= width_) return r;
  const std::size_t wshift = n / kWordBits;
  const std::size_t bshift = n % kWordBits;
  for (std::size_t i = 0; i < r.words_.size(); ++i) {
    std::uint64_t x = 0;
    if (i + wshift < words_.size()) {
      x = words_[i + wshift] >> bshift;
      if (bshift != 0 && i + wshift + 1 < words_.size()) {
        x |= words_[i + wshift + 1] << (kWordBits - bshift);
      }
    }
    r.words_[i] = x;
  }
  return r;
}

BitVec BitVec::operator+(const BitVec& o) const {
  BitVec r(std::max(width_, o.width_));
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < r.words_.size(); ++i) {
    const std::uint64_t a = i < words_.size() ? words_[i] : 0;
    const std::uint64_t b = i < o.words_.size() ? o.words_[i] : 0;
    unsigned __int128 s = static_cast<unsigned __int128>(a) + b + carry;
    r.words_[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  r.trim();
  return r;
}

BitVec BitVec::operator-(const BitVec& o) const {
  BitVec r(std::max(width_, o.width_));
  // a - b = a + ~b + 1 within the result width.
  std::uint64_t carry = 1;
  for (std::size_t i = 0; i < r.words_.size(); ++i) {
    const std::uint64_t a = i < words_.size() ? words_[i] : 0;
    const std::uint64_t b = ~(i < o.words_.size() ? o.words_[i] : 0);
    unsigned __int128 s = static_cast<unsigned __int128>(a) + b + carry;
    r.words_[i] = static_cast<std::uint64_t>(s);
    carry = static_cast<std::uint64_t>(s >> 64);
  }
  r.trim();
  return r;
}

namespace {
// Word i of a BitVec's storage, zero beyond the end — the same convention
// the binary operators use for mixed-width operands.
inline std::uint64_t word_at(const std::vector<std::uint64_t>& w,
                             std::size_t i) {
  return i < w.size() ? w[i] : 0;
}
// All-ones in the low `rem` bit positions of a word (rem in [1, 64]).
inline std::uint64_t low_ones(std::size_t rem) {
  return (~std::uint64_t{0}) >> (64 - rem);
}
}  // namespace

bool BitVec::masked_equals(const BitVec& o, const BitVec& mask) const {
  const std::size_t n =
      std::max({words_.size(), o.words_.size(), mask.words_.size()});
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t m = word_at(mask.words_, i);
    if (((word_at(words_, i) ^ word_at(o.words_, i)) & m) != 0) return false;
  }
  return true;
}

bool BitVec::prefix_equals(const BitVec& o, std::size_t width,
                           std::size_t prefix_len) const {
  if (prefix_len == 0 || width == 0) return true;
  if (prefix_len > width) prefix_len = width;
  const std::size_t lo = width - prefix_len;  // first bit of the prefix
  const std::size_t first_word = lo / kWordBits;
  const std::size_t last_word = (width - 1) / kWordBits;
  for (std::size_t i = first_word; i <= last_word; ++i) {
    std::uint64_t m = ~std::uint64_t{0};
    if (i == first_word && lo % kWordBits != 0) {
      m &= ~std::uint64_t{0} << (lo % kWordBits);
    }
    if (i == last_word && width % kWordBits != 0) {
      m &= low_ones(width % kWordBits);
    }
    if (((word_at(words_, i) ^ word_at(o.words_, i)) & m) != 0) return false;
  }
  return true;
}

bool BitVec::equals_resized(const BitVec& o, std::size_t width) const {
  if (width == 0) return true;
  const std::size_t last_word = (width - 1) / kWordBits;
  for (std::size_t i = 0; i <= last_word; ++i) {
    std::uint64_t m = ~std::uint64_t{0};
    if (i == last_word && width % kWordBits != 0) m = low_ones(width % kWordBits);
    if (((word_at(words_, i) ^ word_at(o.words_, i)) & m) != 0) return false;
  }
  return true;
}

std::strong_ordering BitVec::compare_resized(const BitVec& o,
                                             std::size_t width) const {
  if (width == 0) return std::strong_ordering::equal;
  const std::size_t last_word = (width - 1) / kWordBits;
  for (std::size_t i = last_word + 1; i-- > 0;) {
    std::uint64_t m = ~std::uint64_t{0};
    if (i == last_word && width % kWordBits != 0) m = low_ones(width % kWordBits);
    const std::uint64_t a = word_at(words_, i) & m;
    const std::uint64_t b = word_at(o.words_, i) & m;
    if (a != b) return a < b ? std::strong_ordering::less
                             : std::strong_ordering::greater;
  }
  return std::strong_ordering::equal;
}

std::size_t BitVec::write_bytes(std::span<std::uint8_t> out,
                                std::size_t width) const {
  const std::size_t n = (width + 7) / 8;
  if (out.size() < n)
    throw ConfigError("BitVec::write_bytes: output span too small");
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t bit = 8 * (n - 1 - i);
    std::uint64_t b = word_at(words_, bit / kWordBits) >> (bit % kWordBits);
    if (bit % kWordBits > kWordBits - 8) {
      b |= word_at(words_, bit / kWordBits + 1)
           << (kWordBits - bit % kWordBits);
    }
    if (i == 0 && width % 8 != 0) b &= low_ones(width % 8);
    out[i] = static_cast<std::uint8_t>(b & 0xff);
  }
  return n;
}

void BitVec::append_bytes(std::string& out, std::size_t width) const {
  const std::size_t n = (width + 7) / 8;
  const std::size_t at = out.size();
  out.resize(at + n);
  write_bytes(std::span<std::uint8_t>(
                  reinterpret_cast<std::uint8_t*>(out.data()) + at, n),
              width);
}

std::uint64_t BitVec::low_bits_u64(std::size_t width) const {
  if (width == 0) return 0;
  const std::uint64_t v = low_u64();
  return width >= kWordBits ? v : (v & low_ones(width));
}

bool BitVec::operator==(const BitVec& o) const {
  const std::size_t n = std::max(words_.size(), o.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < words_.size() ? words_[i] : 0;
    const std::uint64_t b = i < o.words_.size() ? o.words_[i] : 0;
    if (a != b) return false;
  }
  return true;
}

std::strong_ordering BitVec::operator<=>(const BitVec& o) const {
  const std::size_t n = std::max(words_.size(), o.words_.size());
  for (std::size_t i = n; i-- > 0;) {
    const std::uint64_t a = i < words_.size() ? words_[i] : 0;
    const std::uint64_t b = i < o.words_.size() ? o.words_[i] : 0;
    if (a != b) return a < b ? std::strong_ordering::less
                             : std::strong_ordering::greater;
  }
  return std::strong_ordering::equal;
}

}  // namespace hyper4::util
