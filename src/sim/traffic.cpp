#include "sim/traffic.h"

#include <cmath>

#include "net/checksum.h"
#include "util/error.h"

namespace hyper4::sim {

IperfResult run_iperf(Network& net, const std::string& src,
                      const std::string& dst, const FlowSpec& flow,
                      std::size_t packets, util::Rng* jitter) {
  IperfResult r;
  net.reset_busy();
  double host_time_us = 0;
  for (std::uint32_t seq = 0; seq < packets; ++seq) {
    ++r.data_sent;
    bool delivered = false;
    for (const auto& d : net.send(src, flow.make_data(seq))) {
      if (d.host == dst) delivered = true;
    }
    if (!delivered) continue;
    ++r.data_delivered;
    host_time_us += net.cost_model().host_stack_us;
    for (const auto& d : net.send(dst, flow.make_ack(seq))) {
      if (d.host == src) ++r.acks_delivered;
    }
    host_time_us += net.cost_model().host_stack_us;
  }
  // The bottleneck switch's CPU paces the flow — the bmv2-in-a-VM model
  // (host stacks pipeline with switch processing and never bottleneck).
  (void)host_time_us;
  double elapsed_us = net.max_busy_us();
  if (elapsed_us <= 0) return r;
  if (jitter) {
    // ±2% run-to-run variation, mirroring the paper's σ across 10 runs.
    const double eps =
        (static_cast<double>(jitter->uniform(0, 4000)) - 2000.0) / 100000.0;
    elapsed_us *= 1.0 + eps;
  }
  const double bits =
      static_cast<double>(r.data_delivered * flow.payload_bytes) * 8.0;
  r.mbps = bits / elapsed_us;  // bits per µs == Mbit/s
  return r;
}

net::Packet make_icmp_reply_from(const net::Packet& request) {
  auto eth = net::read_eth(request);
  auto ip = net::read_ipv4(request);
  if (!eth || !ip) throw util::ConfigError("sim: echo request is not IPv4");
  net::EthHeader reth;
  reth.src = eth->dst;
  reth.dst = eth->src;
  net::Ipv4Header rip;
  rip.src = ip->dst;
  rip.dst = ip->src;
  rip.ttl = 64;
  // Echo the original ICMP payload sizes; identifier/sequence come from the
  // request so RTT attribution stays honest.
  const std::size_t icmp_off = net::kEthHeaderLen + net::kIpv4HeaderLen;
  std::uint16_t ident = 0, seqno = 0;
  std::size_t payload_len = 0;
  if (request.size() >= icmp_off + net::kIcmpHeaderLen) {
    auto b = request.bytes();
    ident = static_cast<std::uint16_t>(b[icmp_off + 4] << 8 | b[icmp_off + 5]);
    seqno = static_cast<std::uint16_t>(b[icmp_off + 6] << 8 | b[icmp_off + 7]);
    payload_len = ip->total_len >= net::kIpv4HeaderLen + net::kIcmpHeaderLen
                      ? ip->total_len - net::kIpv4HeaderLen - net::kIcmpHeaderLen
                      : 0;
  }
  net::IcmpHeader icmp;
  icmp.type = 0;  // echo reply
  icmp.identifier = ident;
  icmp.sequence = seqno;
  return net::make_ipv4_icmp_echo(reth, rip, icmp, payload_len, 0x42);
}

PingResult run_ping_flood(Network& net, const std::string& src,
                          const std::string& dst,
                          std::function<net::Packet(std::uint32_t)> make_echo,
                          std::size_t count, util::Rng* jitter) {
  PingResult r;
  double total_us = 0;
  for (std::uint32_t seq = 0; seq < count; ++seq) {
    ++r.sent;
    double rtt = 2.0 * net.cost_model().host_stack_us;
    bool delivered = false;
    net::Packet at_dst;
    for (const auto& d : net.send(src, make_echo(seq))) {
      if (d.host == dst) {
        delivered = true;
        rtt += d.latency_us;
        at_dst = d.packet;
      }
    }
    if (!delivered) continue;
    bool replied = false;
    for (const auto& d : net.send(dst, make_icmp_reply_from(at_dst))) {
      if (d.host == src) {
        replied = true;
        rtt += d.latency_us;
      }
    }
    if (!replied) continue;
    ++r.replied;
    total_us += rtt;
  }
  if (jitter) {
    const double eps =
        (static_cast<double>(jitter->uniform(0, 4000)) - 2000.0) / 100000.0;
    total_us *= 1.0 + eps;
  }
  r.total_ms = total_us / 1000.0;
  r.avg_rtt_us = r.replied ? total_us / static_cast<double>(r.replied) : 0;
  return r;
}

Stats mean_stddev(const std::vector<double>& xs) {
  Stats s;
  if (xs.empty()) return s;
  for (double x : xs) s.mean += x;
  s.mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  var /= static_cast<double>(xs.size());
  s.stddev = std::sqrt(var);
  return s;
}

}  // namespace hyper4::sim
