#include "sim/scenarios.h"

#include "apps/apps.h"
#include "util/error.h"

namespace hyper4::sim {

namespace {

using apps::Rule;

constexpr const char* kMacH1 = "02:00:00:00:00:01";
constexpr const char* kMacH2 = "02:00:00:00:00:02";
constexpr const char* kMacGwL = "02:aa:00:00:00:01";  // ex1c router, left side
constexpr const char* kMacGwR = "02:aa:00:00:00:02";  // ex1c router, right side
constexpr const char* kIpH1 = "10.0.0.1";
constexpr const char* kIpH2 = "10.0.1.2";

hp4::VirtualRule vr(const Rule& r) {
  return hp4::VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

// L2 forwarding for a two-port transit switch: "left-side" MACs out port 1,
// "right-side" MACs out port 2.
std::vector<Rule> transit_l2_rules(const std::vector<std::string>& left,
                                   const std::vector<std::string>& right) {
  std::vector<Rule> rules;
  for (const auto& m : left) rules.push_back(apps::l2_forward(m, 1));
  for (const auto& m : right) rules.push_back(apps::l2_forward(m, 2));
  return rules;
}

std::vector<Rule> transit_fw_rules(const std::vector<std::string>& left,
                                   const std::vector<std::string>& right) {
  std::vector<Rule> rules;
  for (const auto& m : left) rules.push_back(apps::firewall_l2_forward(m, 1));
  for (const auto& m : right) rules.push_back(apps::firewall_l2_forward(m, 2));
  // A real filter set that the measured traffic does not hit (the paper's
  // iperf/ping traffic passes the firewall).
  rules.push_back(apps::firewall_block_tcp_dport(9999, 10));
  rules.push_back(apps::firewall_block_udp_dport(9999, 11));
  return rules;
}

std::vector<Rule> ex1c_router_rules() {
  return {
      apps::router_accept_mac(kMacGwL),
      apps::router_accept_mac(kMacGwR),
      apps::router_route("10.0.1.0", 24, kIpH2, 2),
      apps::router_route("10.0.0.0", 24, kIpH1, 1),
      apps::router_arp_entry(kIpH2, kMacH2),
      apps::router_arp_entry(kIpH1, kMacH1),
      apps::router_port_mac(2, kMacGwR),
      apps::router_port_mac(1, kMacGwL),
  };
}

}  // namespace

bm::ProcessResult Scenario::probe_tcp() {
  // ex1c traffic addresses the gateway; everything else addresses h2.
  net::EthHeader eth;
  eth.src = net::mac_from_string(kMacH1);
  eth.dst = net::mac_from_string(name_.find("ex1c") != std::string::npos
                                     ? kMacGwL
                                     : kMacH2);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string(kIpH1);
  ip.dst = net::ipv4_from_string(kIpH2);
  net::TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = 5001;
  return first_switch().inject(1, net::make_ipv4_tcp(eth, ip, tcp, 64));
}

bm::ProcessResult Scenario::probe_arp() {
  auto req = net::make_arp_request(net::mac_from_string(kMacH1),
                                   net::ipv4_from_string(kIpH1),
                                   net::ipv4_from_string(kIpH2));
  return first_switch().inject(1, req);
}

bm::Switch& Scenario::first_switch() {
  if (!first_) throw util::ConfigError("scenario has no switches");
  return *first_;
}

std::unique_ptr<Scenario> Scenario::make(const std::string& kind, bool hyper4,
                                         CostModel cm) {
  auto sc = std::unique_ptr<Scenario>(new Scenario());
  sc->name_ = kind + (hyper4 ? "/hp4" : "/native");
  sc->net_ = std::make_unique<Network>(cm);
  Network& net = *sc->net_;

  // Creates a dataplane switch running `prog` (natively or emulated) and
  // returns it, registered with the network under `name`.
  auto make_dp = [&](const std::string& name, const p4::Program& prog,
                     const std::vector<Rule>& rules,
                     const std::vector<std::uint16_t>& ports) -> bm::Switch& {
    if (!hyper4) {
      sc->native_.push_back(std::make_unique<bm::Switch>(prog));
      bm::Switch& sw = *sc->native_.back();
      apps::apply_rules(sw, rules);
      net.add_switch(name, sw);
      if (!sc->first_) sc->first_ = &sw;
      return sw;
    }
    sc->controllers_.push_back(std::make_unique<hp4::Controller>());
    hp4::Controller& ctl = *sc->controllers_.back();
    auto id = ctl.load(prog.name, prog);
    ctl.attach_ports(id, ports);
    for (auto p : ports) ctl.bind(id, p);
    for (const auto& r : rules) ctl.add_rule(id, vr(r));
    net.add_switch(name, ctl.dataplane());
    if (!sc->first_) sc->first_ = &ctl.dataplane();
    return ctl.dataplane();
  };

  // A persona hosting the ex1c middle composition.
  auto make_chain_dp = [&](const std::string& name) -> bm::Switch& {
    sc->controllers_.push_back(std::make_unique<hp4::Controller>());
    hp4::Controller& ctl = *sc->controllers_.back();
    auto arp = ctl.load("arp", apps::arp_proxy());
    auto fw = ctl.load("fw", apps::firewall());
    auto rtr = ctl.load("rtr", apps::ipv4_router());
    ctl.chain({arp, fw, rtr}, {1, 2});
    for (const auto& r : std::vector<Rule>{
             apps::arp_proxy_entry("10.0.0.254", kMacGwL),
             apps::arp_proxy_l2_forward(kMacGwL, 2),
             apps::arp_proxy_l2_forward(kMacGwR, 1),
             apps::arp_proxy_l2_forward(kMacH1, 1),
             apps::arp_proxy_l2_forward(kMacH2, 2)}) {
      ctl.add_rule(arp, vr(r));
    }
    for (const auto& r : transit_fw_rules({kMacGwR, kMacH1}, {kMacGwL, kMacH2})) {
      ctl.add_rule(fw, vr(r));
    }
    for (const auto& r : ex1c_router_rules()) ctl.add_rule(rtr, vr(r));
    net.add_switch(name, ctl.dataplane());
    if (!sc->first_) sc->first_ = &ctl.dataplane();
    return ctl.dataplane();
  };

  const bool routed = kind == "ex1c";

  // --- topology wiring -------------------------------------------------------
  if (kind == "l2_sw" || kind == "firewall") {
    auto rules = kind == "l2_sw" ? transit_l2_rules({kMacH1}, {kMacH2})
                                 : transit_fw_rules({kMacH1}, {kMacH2});
    auto prog = kind == "l2_sw" ? apps::l2_switch() : apps::firewall();
    make_dp("s1", prog, rules, {1, 2});
    net.add_host("h1", "s1", 1);
    net.add_host("h2", "s1", 2);
  } else if (kind == "ex1b") {
    make_dp("s1", apps::l2_switch(), transit_l2_rules({kMacH1}, {kMacH2}), {1, 2});
    make_dp("s2", apps::firewall(), transit_fw_rules({kMacH1}, {kMacH2}), {1, 2});
    make_dp("s3", apps::l2_switch(), transit_l2_rules({kMacH1}, {kMacH2}), {1, 2});
    net.add_host("h1", "s1", 1);
    net.link("s1", 2, "s2", 1);
    net.link("s2", 2, "s3", 1);
    net.add_host("h2", "s3", 2);
  } else if (kind == "ex1c") {
    // Edge L2 switches steer gateway-addressed traffic into the middle.
    make_dp("s1", apps::l2_switch(),
            transit_l2_rules({kMacH1}, {kMacGwL, kMacH2}), {1, 2});
    if (hyper4) {
      make_chain_dp("s2");
      net.link("s1", 2, "s2", 1);
      make_dp("s3", apps::l2_switch(),
              transit_l2_rules({kMacGwR, kMacH1}, {kMacH2}), {1, 2});
      net.link("s2", 2, "s3", 1);
    } else {
      // Native composition: three switches in series.
      make_dp("s2_arp", apps::arp_proxy(),
              {apps::arp_proxy_entry("10.0.0.254", kMacGwL),
               apps::arp_proxy_l2_forward(kMacGwL, 2),
               apps::arp_proxy_l2_forward(kMacGwR, 1),
               apps::arp_proxy_l2_forward(kMacH1, 1),
               apps::arp_proxy_l2_forward(kMacH2, 2)},
              {1, 2});
      make_dp("s2_fw", apps::firewall(),
              transit_fw_rules({kMacGwR, kMacH1}, {kMacGwL, kMacH2}), {1, 2});
      make_dp("s2_rtr", apps::ipv4_router(), ex1c_router_rules(), {1, 2});
      make_dp("s3", apps::l2_switch(),
              transit_l2_rules({kMacGwR, kMacH1}, {kMacH2}), {1, 2});
      net.link("s1", 2, "s2_arp", 1);
      net.link("s2_arp", 2, "s2_fw", 1);
      net.link("s2_fw", 2, "s2_rtr", 1);
      net.link("s2_rtr", 2, "s3", 1);
    }
    net.add_host("h1", "s1", 1);
    net.add_host("h2", "s3", 2);
  } else {
    throw util::ConfigError("unknown scenario kind '" + kind + "'");
  }

  // --- traffic ------------------------------------------------------------------
  const std::string dst_mac = routed ? kMacGwL : kMacH2;
  sc->flow_.payload_bytes = 1400;
  sc->flow_.make_data = [dst_mac](std::uint32_t seq) {
    net::EthHeader eth;
    eth.src = net::mac_from_string(kMacH1);
    eth.dst = net::mac_from_string(dst_mac);
    net::Ipv4Header ip;
    ip.src = net::ipv4_from_string(kIpH1);
    ip.dst = net::ipv4_from_string(kIpH2);
    ip.identification = static_cast<std::uint16_t>(seq);
    net::TcpHeader tcp;
    tcp.src_port = 40000;
    tcp.dst_port = 5001;
    tcp.seq = seq * 1400;
    return net::make_ipv4_tcp(eth, ip, tcp, 1400);
  };
  const std::string ack_dst = routed ? kMacGwR : kMacH1;
  sc->flow_.make_ack = [ack_dst](std::uint32_t seq) {
    net::EthHeader eth;
    eth.src = net::mac_from_string(kMacH2);
    eth.dst = net::mac_from_string(ack_dst);
    net::Ipv4Header ip;
    ip.src = net::ipv4_from_string(kIpH2);
    ip.dst = net::ipv4_from_string(kIpH1);
    net::TcpHeader tcp;
    tcp.src_port = 5001;
    tcp.dst_port = 40000;
    tcp.ack = (seq + 1) * 1400;
    tcp.flags = 0x10;
    return net::make_ipv4_tcp(eth, ip, tcp, 0);
  };
  sc->echo_ = [dst_mac](std::uint32_t seq) {
    net::EthHeader eth;
    eth.src = net::mac_from_string(kMacH1);
    eth.dst = net::mac_from_string(dst_mac);
    net::Ipv4Header ip;
    ip.src = net::ipv4_from_string(kIpH1);
    ip.dst = net::ipv4_from_string(kIpH2);
    net::IcmpHeader icmp;
    icmp.identifier = 7;
    icmp.sequence = static_cast<std::uint16_t>(seq);
    return net::make_ipv4_icmp_echo(eth, ip, icmp, 56);
  };
  return sc;
}

}  // namespace hyper4::sim
