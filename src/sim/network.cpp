#include "sim/network.h"

#include <algorithm>
#include <deque>

#include "engine/engine.h"
#include "util/error.h"

namespace hyper4::sim {

using util::ConfigError;

double CostModel::work_us(const bm::ProcessResult& r) const {
  return fixed_us + per_match_us * static_cast<double>(r.match_count()) +
         per_resubmit_us * static_cast<double>(r.resubmits) +
         per_recirculate_us * static_cast<double>(r.recirculations) +
         per_clone_us * static_cast<double>(r.clones_i2e + r.clones_e2e);
}

void Network::add_switch(const std::string& name, bm::Switch& sw) {
  if (switches_.contains(name))
    throw ConfigError("sim: duplicate switch '" + name + "'");
  switches_[name] = &sw;
  busy_[name] = 0;
}

void Network::add_delegate_switch(const std::string& name, SwitchDelegate fn) {
  if (switches_.contains(name))
    throw ConfigError("sim: duplicate switch '" + name + "'");
  if (!fn) throw ConfigError("sim: null delegate for switch '" + name + "'");
  switches_[name] = nullptr;
  delegates_[name] = std::move(fn);
  busy_[name] = 0;
}

void Network::add_host(const std::string& name, const std::string& sw,
                       std::uint16_t port) {
  if (!switches_.contains(sw))
    throw ConfigError("sim: unknown switch '" + sw + "'");
  if (hosts_.contains(name))
    throw ConfigError("sim: duplicate host '" + name + "'");
  hosts_[name] = HostInfo{sw, port};
  Endpoint e;
  e.kind = Endpoint::Kind::kHost;
  e.name = name;
  wires_[{sw, port}] = e;
}

void Network::link(const std::string& sw1, std::uint16_t p1,
                   const std::string& sw2, std::uint16_t p2) {
  if (!switches_.contains(sw1) || !switches_.contains(sw2))
    throw ConfigError("sim: link references unknown switch");
  Endpoint a;
  a.kind = Endpoint::Kind::kSwitch;
  a.name = sw2;
  a.port = p2;
  Endpoint b;
  b.kind = Endpoint::Kind::kSwitch;
  b.name = sw1;
  b.port = p1;
  wires_[{sw1, p1}] = a;
  wires_[{sw2, p2}] = b;
}

std::vector<Network::Delivery> Network::send(const std::string& from_host,
                                             const net::Packet& packet) {
  auto hit = hosts_.find(from_host);
  if (hit == hosts_.end())
    throw ConfigError("sim: unknown host '" + from_host + "'");

  struct Work {
    std::string sw;
    std::uint16_t port;
    net::Packet packet;
    double latency;
    std::size_t hops;
  };
  std::vector<Delivery> out;
  std::deque<Work> queue;
  queue.push_back(Work{hit->second.sw, hit->second.port, packet, cm_.link_us, 0});

  std::size_t steps = 0;
  while (!queue.empty()) {
    if (++steps > 256) break;  // forwarding-loop guard
    Work w = std::move(queue.front());
    queue.pop_front();
    const auto del = delegates_.find(w.sw);
    const bm::ProcessResult res =
        del != delegates_.end()
            ? del->second(w.port, w.packet)
            : switches_.at(w.sw)->inject(w.port, w.packet);
    const double work = cm_.work_us(res);
    busy_[w.sw] += work;
    for (const auto& o : res.outputs) {
      auto wit = wires_.find({w.sw, o.port});
      if (wit == wires_.end()) continue;  // unwired port: packet vanishes
      const Endpoint& e = wit->second;
      const double lat = w.latency + work + cm_.link_us;
      if (e.kind == Endpoint::Kind::kHost) {
        out.push_back(Delivery{e.name, o.packet, lat, w.hops + 1});
      } else {
        queue.push_back(Work{e.name, e.port, o.packet, lat, w.hops + 1});
      }
    }
  }
  return out;
}

std::vector<std::vector<Network::Delivery>> Network::send_many(
    const std::string& from_host, const std::vector<net::Packet>& packets,
    engine::TrafficEngine* engine) {
  std::vector<std::vector<Delivery>> out;
  out.reserve(packets.size());

  // Engine fast path: only when every wired port of the edge switch leads
  // directly to a host, so one switch traversal fully determines the
  // deliveries and the batch can be processed out of order across flows.
  bool engine_ok = engine != nullptr;
  std::string edge_sw;
  if (engine_ok) {
    auto hit = hosts_.find(from_host);
    if (hit == hosts_.end())
      throw ConfigError("sim: unknown host '" + from_host + "'");
    edge_sw = hit->second.sw;
    if (delegates_.contains(edge_sw)) engine_ok = false;
    for (const auto& [key, ep] : wires_) {
      if (key.first == edge_sw && ep.kind == Endpoint::Kind::kSwitch) {
        engine_ok = false;
        break;
      }
    }
  }
  if (!engine_ok) {
    for (const auto& p : packets) out.push_back(send(from_host, p));
    return out;
  }

  const std::uint16_t in_port = hosts_.at(from_host).port;
  std::vector<engine::InjectItem> items;
  items.reserve(packets.size());
  for (const auto& p : packets) items.push_back({in_port, p});
  engine->inject_batch(items);
  // Stream results out as the reorder buffer emits them (injection-sequence
  // order), overlapping delivery bookkeeping with packet processing instead
  // of barriering on the whole wave.
  std::size_t got = 0;
  while (got < packets.size()) {
    engine::MergedResult part = engine->collect_ready();
    if (part.packets == 0 && got < packets.size()) {
      // Caught up with everything enqueued but the wave is short: another
      // caller drained our results or collect_results is off.
      throw ConfigError(
          "sim: engine did not return per-packet results (collect_results "
          "off, or concurrent injections?)");
    }
    got += part.per_packet.size();
    if (got > packets.size())
      throw ConfigError("sim: engine returned foreign results (concurrent "
                        "injections during send_many?)");
    for (const auto& res : part.per_packet) {
      const double work = cm_.work_us(res);
      busy_[edge_sw] += work;
      std::vector<Delivery> dels;
      for (const auto& o : res.outputs) {
        auto wit = wires_.find({edge_sw, o.port});
        if (wit == wires_.end()) continue;  // unwired port: packet vanishes
        const Endpoint& e = wit->second;
        if (e.kind != Endpoint::Kind::kHost) continue;
        dels.push_back(Delivery{e.name, o.packet,
                                cm_.link_us + work + cm_.link_us, 1});
      }
      out.push_back(std::move(dels));
    }
  }
  return out;
}

double Network::busy_us(const std::string& sw) const {
  auto it = busy_.find(sw);
  if (it == busy_.end()) throw ConfigError("sim: unknown switch '" + sw + "'");
  return it->second;
}

double Network::max_busy_us() const {
  double m = 0;
  for (const auto& [name, b] : busy_) m = std::max(m, b);
  return m;
}

void Network::reset_busy() {
  for (auto& [name, b] : busy_) b = 0;
}

std::vector<std::string> Network::switch_names() const {
  std::vector<std::string> out;
  for (const auto& [name, sw] : switches_) out.push_back(name);
  return out;
}

}  // namespace hyper4::sim
