// Evaluation scenarios for §6.4 / Table 5, in native and HyPer4 variants:
//   "l2_sw"    — h1 – s1(L2 switch) – h2
//   "firewall" — h1 – s1(firewall) – h2
//   "ex1b"     — h1 – s1(L2) – s2(firewall) – s3(L2) – h2          (Fig. 3 B)
//   "ex1c"     — h1 – s1(L2) – [arp→firewall→router] – s3(L2) – h2 (Fig. 3 C)
//
// In the native ex1c variant the middle composition runs as three switches
// in series (the paper's §7.2 "directly embedding P4 programs in the
// network" alternative); in the HyPer4 variant it is a single persona
// hosting a three-device chain over virtual links.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bm/switch.h"
#include "hp4/controller.h"
#include "sim/network.h"
#include "sim/traffic.h"

namespace hyper4::sim {

class Scenario {
 public:
  static std::unique_ptr<Scenario> make(const std::string& kind, bool hyper4,
                                        CostModel cm = CostModel{});

  const std::string& name() const { return name_; }
  Network& network() { return *net_; }
  const FlowSpec& flow() const { return flow_; }
  net::Packet echo(std::uint32_t seq) const { return echo_(seq); }

  const std::string& h1() const { return h1_; }
  const std::string& h2() const { return h2_; }

  // Convenience wrappers.
  IperfResult iperf(std::size_t packets, util::Rng* jitter = nullptr) {
    return run_iperf(*net_, h1_, h2_, flow_, packets, jitter);
  }
  PingResult ping_flood(std::size_t count, util::Rng* jitter = nullptr) {
    return run_ping_flood(*net_, h1_, h2_, echo_, count, jitter);
  }

  // Per-packet processing probes (Tables 1 and 4): inject one worst-case
  // packet into the first switch and return its trace.
  bm::ProcessResult probe_tcp();
  bm::ProcessResult probe_arp();

  // The first (or only) dataplane switch.
  bm::Switch& first_switch();

 private:
  Scenario() = default;

  std::string name_;
  std::vector<std::unique_ptr<bm::Switch>> native_;
  std::vector<std::unique_ptr<hp4::Controller>> controllers_;
  std::unique_ptr<Network> net_;
  std::string h1_ = "h1", h2_ = "h2";
  FlowSpec flow_;
  std::function<net::Packet(std::uint32_t)> echo_;
  bm::Switch* first_ = nullptr;
};

}  // namespace hyper4::sim
