// Network simulator substrate for the §6.4 performance experiments.
//
// The paper measured iperf3 bandwidth and ping-flood latency on bmv2 inside
// a Mininet VM; those numbers are dominated by per-packet switch work
// (match-action stages, resubmits, recirculations). We reproduce the
// *shape* with a topology of bm::Switch instances joined by links and a
// cost model that prices each packet's observed processing trace. Absolute
// numbers are calibrated to the paper's native L2 baseline; see DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bm/switch.h"
#include "net/packet.h"

namespace hyper4::engine {
class TrafficEngine;
}

namespace hyper4::sim {

struct CostModel {
  // Per-packet, per-switch costs (microseconds).
  double fixed_us = 2.0;            // parse/deparse and framework overhead
  double per_match_us = 25.0;       // one match-action stage
  double per_resubmit_us = 30.0;    // extra parser pass
  double per_recirculate_us = 40.0; // full extra pipeline traversal
  double per_clone_us = 10.0;
  double host_stack_us = 170.0;     // per packet, per host endpoint
  double link_us = 1.0;             // propagation per link

  // Price one switch traversal from its processing trace.
  double work_us(const bm::ProcessResult& r) const;
};

// A topology of switches (externally owned — e.g. by hp4::Controller),
// hosts, and port-to-port links. Packets are walked synchronously through
// the switch graph, accumulating latency and per-switch busy time.
class Network {
 public:
  explicit Network(CostModel cm = CostModel{}) : cm_(cm) {}

  const CostModel& cost_model() const { return cm_; }

  // The switch must outlive the Network.
  void add_switch(const std::string& name, bm::Switch& sw);

  // A switch endpoint served by an external processor — e.g. a fabric
  // node, which may run the traversal on its own engine workers or in a
  // separate process. send() routes traversals of `name` through `fn`
  // instead of a locally-owned bm::Switch; the delegate participates in
  // links, host attachment and busy accounting like an ordinary switch
  // but disables the send_many engine fast path for topologies it edges.
  using SwitchDelegate =
      std::function<bm::ProcessResult(std::uint16_t port, const net::Packet&)>;
  void add_delegate_switch(const std::string& name, SwitchDelegate fn);
  void add_host(const std::string& name, const std::string& sw,
                std::uint16_t port);
  void link(const std::string& sw1, std::uint16_t p1, const std::string& sw2,
            std::uint16_t p2);

  struct Delivery {
    std::string host;
    net::Packet packet;
    double latency_us = 0;
    std::size_t switch_hops = 0;
  };

  // Inject from a host; returns every host delivery with its end-to-end
  // latency. Per-switch busy time is accumulated (see busy_us).
  std::vector<Delivery> send(const std::string& from_host,
                             const net::Packet& packet);

  // Batched send: deliveries per input packet, in input order. With a
  // non-null engine AND a single-switch topology seen from `from_host`
  // (every wired port of the host's edge switch leads to a host), the
  // whole batch is pushed through the engine's flow-sharded workers and
  // cost-model accounting is priced from the merged per-packet traces —
  // identical deliveries, parallel substrate. The engine must have been
  // built from the edge switch's program and sync_from()'d its state (and
  // needs collect_results on); otherwise, or when the topology does not
  // qualify, every packet takes the ordinary send() path.
  std::vector<std::vector<Delivery>> send_many(
      const std::string& from_host, const std::vector<net::Packet>& packets,
      engine::TrafficEngine* engine = nullptr);

  // Cumulative switch processing time since the last reset (the iperf
  // model's bottleneck measure).
  double busy_us(const std::string& sw) const;
  double max_busy_us() const;
  void reset_busy();

  std::vector<std::string> switch_names() const;

 private:
  struct Endpoint {
    enum class Kind { kNone, kHost, kSwitch } kind = Kind::kNone;
    std::string name;        // host or switch name
    std::uint16_t port = 0;  // switch port (kSwitch)
  };
  struct HostInfo {
    std::string sw;
    std::uint16_t port;
  };

  Endpoint& endpoint(const std::string& sw, std::uint16_t port);

  CostModel cm_;
  // A delegate switch has a nullptr entry here and its processor in
  // delegates_; every name-keyed lookup (links, hosts, busy) is shared.
  std::map<std::string, bm::Switch*> switches_;
  std::map<std::string, SwitchDelegate> delegates_;
  std::map<std::string, HostInfo> hosts_;
  // (switch name, port) → where it leads.
  std::map<std::pair<std::string, std::uint16_t>, Endpoint> wires_;
  std::map<std::string, double> busy_;
};

}  // namespace hyper4::sim
