// Traffic generators mirroring the paper's measurement tools (§6.4):
// an iperf3-style bulk TCP flow (bandwidth) and `ping -f` (flood latency).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/headers.h"
#include "sim/network.h"
#include "util/rng.h"

namespace hyper4::sim {

// --- iperf-style bandwidth ----------------------------------------------------

struct FlowSpec {
  // Build the seq-th data segment / its ACK (caller supplies addressing so
  // the same generator drives L2-only and routed topologies).
  std::function<net::Packet(std::uint32_t seq)> make_data;
  std::function<net::Packet(std::uint32_t seq)> make_ack;
  std::size_t payload_bytes = 1400;
};

struct IperfResult {
  double mbps = 0;
  std::size_t data_sent = 0;
  std::size_t data_delivered = 0;
  std::size_t acks_delivered = 0;
};

// Drive `packets` data/ACK pairs from src to dst. Throughput is goodput
// divided by the bottleneck switch's busy time (the bmv2 CPU model). An
// optional RNG adds small per-run jitter so repeated runs produce the
// paper's μ/σ statistics.
IperfResult run_iperf(Network& net, const std::string& src,
                      const std::string& dst, const FlowSpec& flow,
                      std::size_t packets, util::Rng* jitter = nullptr);

// --- ping flood ------------------------------------------------------------------

struct PingResult {
  std::size_t sent = 0;
  std::size_t replied = 0;
  double total_ms = 0;    // the paper's reported column (1000 flood pings)
  double avg_rtt_us = 0;
};

// Flood-ping: each echo waits for the previous reply (ping -f semantics).
// The reply is synthesized at the destination host from the delivered
// request (MAC/IP swap), so rewritten headers from routers are honoured.
PingResult run_ping_flood(Network& net, const std::string& src,
                          const std::string& dst,
                          std::function<net::Packet(std::uint32_t seq)> make_echo,
                          std::size_t count, util::Rng* jitter = nullptr);

// Build the echo reply corresponding to a delivered echo request.
net::Packet make_icmp_reply_from(const net::Packet& request);

// --- small statistics helper -----------------------------------------------------

struct Stats {
  double mean = 0;
  double stddev = 0;
};
Stats mean_stddev(const std::vector<double>& xs);

}  // namespace hyper4::sim
