#include "p4/builder.h"

#include "util/error.h"

namespace hyper4::p4 {

using util::ConfigError;

// ---------------------------------------------------------------------------
// ParserBuilder

ParserBuilder& ParserBuilder::extract(std::string instance) {
  s_.extracts.push_back(std::move(instance));
  return *this;
}

ParserBuilder& ParserBuilder::set_meta(FieldRef dst, ExprPtr value) {
  s_.sets.emplace_back(std::move(dst), std::move(value));
  return *this;
}

ParserBuilder& ParserBuilder::select_field(std::string header, std::string field) {
  SelectKey k;
  k.field = FieldRef{std::move(header), std::move(field)};
  s_.select.push_back(std::move(k));
  return *this;
}

ParserBuilder& ParserBuilder::select_current(std::size_t offset_bits,
                                             std::size_t width_bits) {
  SelectKey k;
  k.is_current = true;
  k.current_offset = offset_bits;
  k.current_width = width_bits;
  s_.select.push_back(std::move(k));
  return *this;
}

ParserBuilder& ParserBuilder::when(util::BitVec value, std::string next) {
  ParserCase c;
  c.value = std::move(value);
  c.next_state = std::move(next);
  s_.cases.push_back(std::move(c));
  return *this;
}

ParserBuilder& ParserBuilder::when(std::uint64_t value, std::string next) {
  // Width is fixed up at build time from the select keys; store as 64-bit
  // now and resize in otherwise()/build. Simplest: compute width lazily is
  // complex, so require select width here: sum is unknown until program has
  // all instances. We store 64-bit; ir validation compares widths, so we
  // resize when the case is added if select keys are already present and
  // resolvable later via Program::finalize. To keep validation strict we
  // just record the value with a sentinel width and let ProgramBuilder
  // resize during build().
  ParserCase c;
  c.value = util::BitVec(64, value);
  c.next_state = std::move(next);
  s_.cases.push_back(std::move(c));
  return *this;
}

ParserBuilder& ParserBuilder::when_masked(util::BitVec value, util::BitVec mask,
                                          std::string next) {
  ParserCase c;
  c.value = std::move(value);
  c.mask = std::move(mask);
  c.next_state = std::move(next);
  s_.cases.push_back(std::move(c));
  return *this;
}

ParserBuilder& ParserBuilder::otherwise(std::string next) {
  ParserCase c;
  c.is_default = true;
  c.next_state = std::move(next);
  s_.cases.push_back(std::move(c));
  return *this;
}

// ---------------------------------------------------------------------------
// ActionBuilder / TableBuilder

ActionBuilder& ActionBuilder::prim(Primitive op, std::vector<ActionArg> args) {
  a_.body.push_back(PrimitiveCall{op, std::move(args)});
  return *this;
}

TableBuilder& TableBuilder::key(MatchType t, FieldRef f) {
  t_.keys.push_back(TableKey{t, std::move(f)});
  return *this;
}
TableBuilder& TableBuilder::action_ref(std::string action) {
  t_.actions.push_back(std::move(action));
  return *this;
}
TableBuilder& TableBuilder::default_action(std::string action,
                                           std::vector<util::BitVec> args) {
  t_.default_action = std::move(action);
  t_.default_action_args = std::move(args);
  return *this;
}
TableBuilder& TableBuilder::size(std::size_t n) {
  t_.max_size = n;
  return *this;
}
TableBuilder& TableBuilder::direct_counter(std::string counter) {
  t_.direct_counter = std::move(counter);
  return *this;
}

// ---------------------------------------------------------------------------
// ControlBuilder

std::size_t ControlBuilder::apply(std::string table) {
  ControlNode n;
  n.kind = ControlNode::Kind::kApply;
  n.table = std::move(table);
  c_.nodes.push_back(std::move(n));
  return c_.nodes.size() - 1;
}

ControlBuilder& ControlBuilder::then_apply(std::string table) {
  if (c_.nodes.empty()) throw ConfigError("then_apply on empty control");
  const std::size_t prev = c_.nodes.size() - 1;
  const std::size_t node = apply(std::move(table));
  ControlNode& p = c_.nodes[prev];
  if (p.kind == ControlNode::Kind::kApply) {
    p.next_default = node;
  } else {
    if (p.next_true == kEndOfControl) p.next_true = node;
    if (p.next_false == kEndOfControl) p.next_false = node;
  }
  return *this;
}

std::size_t ControlBuilder::branch(ExprPtr cond) {
  ControlNode n;
  n.kind = ControlNode::Kind::kIf;
  n.condition = std::move(cond);
  c_.nodes.push_back(std::move(n));
  return c_.nodes.size() - 1;
}

ControlBuilder& ControlBuilder::on_action(std::size_t node, std::string action,
                                          std::size_t next) {
  c_.nodes.at(node).on_action[std::move(action)] = next;
  return *this;
}
ControlBuilder& ControlBuilder::on_hit(std::size_t node, std::size_t next) {
  c_.nodes.at(node).on_hit = next;
  return *this;
}
ControlBuilder& ControlBuilder::on_miss(std::size_t node, std::size_t next) {
  c_.nodes.at(node).on_miss = next;
  return *this;
}
ControlBuilder& ControlBuilder::on_default(std::size_t node, std::size_t next) {
  c_.nodes.at(node).next_default = next;
  return *this;
}
ControlBuilder& ControlBuilder::on_true(std::size_t node, std::size_t next) {
  c_.nodes.at(node).next_true = next;
  return *this;
}
ControlBuilder& ControlBuilder::on_false(std::size_t node, std::size_t next) {
  c_.nodes.at(node).next_false = next;
  return *this;
}

// ---------------------------------------------------------------------------
// ProgramBuilder

ProgramBuilder::ProgramBuilder(std::string name) {
  p_.name = std::move(name);
  p_.ingress.name = "ingress";
  p_.egress.name = "egress";
}

ProgramBuilder& ProgramBuilder::header_type(std::string name,
                                            std::vector<Field> fields) {
  p_.header_types.push_back(HeaderType{std::move(name), std::move(fields)});
  return *this;
}

ProgramBuilder& ProgramBuilder::header(std::string type, std::string name) {
  p_.instances.push_back(HeaderInstance{std::move(name), std::move(type), false, 1});
  return *this;
}

ProgramBuilder& ProgramBuilder::header_stack(std::string type, std::string name,
                                             std::size_t count) {
  p_.instances.push_back(
      HeaderInstance{std::move(name), std::move(type), false, count});
  return *this;
}

ProgramBuilder& ProgramBuilder::metadata(std::string type, std::string name) {
  p_.instances.push_back(HeaderInstance{std::move(name), std::move(type), true, 1});
  return *this;
}

ParserBuilder ProgramBuilder::parser(std::string state_name) {
  p_.parser_states.push_back(ParserState{});
  p_.parser_states.back().name = std::move(state_name);
  return ParserBuilder(p_.parser_states.back());
}

ActionBuilder ProgramBuilder::action(std::string name,
                                     std::vector<ActionParam> params) {
  p_.actions.push_back(ActionDef{});
  p_.actions.back().name = std::move(name);
  p_.actions.back().params = std::move(params);
  return ActionBuilder(p_.actions.back());
}

TableBuilder ProgramBuilder::table(std::string name) {
  p_.tables.push_back(TableDef{});
  p_.tables.back().name = std::move(name);
  return TableBuilder(p_.tables.back());
}

ControlBuilder ProgramBuilder::ingress() { return ControlBuilder(p_.ingress); }
ControlBuilder ProgramBuilder::egress() { return ControlBuilder(p_.egress); }

ProgramBuilder& ProgramBuilder::field_list(std::string name,
                                           std::vector<FieldRef> fields) {
  p_.field_lists.push_back(FieldListDef{std::move(name), std::move(fields)});
  return *this;
}

ProgramBuilder& ProgramBuilder::counter(std::string name, std::size_t instances,
                                        std::string direct_table) {
  p_.counters.push_back(CounterDef{std::move(name), instances, std::move(direct_table)});
  return *this;
}

ProgramBuilder& ProgramBuilder::meter(std::string name, std::size_t instances,
                                      std::uint64_t rate_pps, std::uint64_t burst) {
  p_.meters.push_back(MeterDef{std::move(name), instances, rate_pps, burst});
  return *this;
}

ProgramBuilder& ProgramBuilder::reg(std::string name, std::size_t width,
                                    std::size_t instances) {
  p_.registers.push_back(RegisterDef{std::move(name), width, instances});
  return *this;
}

ProgramBuilder& ProgramBuilder::checksum(FieldRef field, std::string field_list,
                                         ExprPtr condition) {
  p_.calculated_fields.push_back(
      CalculatedField{std::move(field), std::move(field_list), true,
                      std::move(condition)});
  return *this;
}

ProgramBuilder& ProgramBuilder::deparse_order(std::vector<std::string> order) {
  p_.deparse_order = std::move(order);
  return *this;
}

Program ProgramBuilder::build() {
  // Fix up 64-bit-sentinel case values recorded by when(uint64_t) to the
  // actual select width of their state.
  for (auto& st : p_.parser_states) {
    if (st.select.empty()) continue;
    std::size_t w = 0;
    for (const auto& k : st.select) w += k.width(p_);
    for (auto& c : st.cases) {
      if (!c.is_default && c.value.width() == 64 && w != 64) {
        c.value = c.value.resized(w);
      }
    }
  }
  p_.finalize();
  return p_;
}

}  // namespace hyper4::p4
