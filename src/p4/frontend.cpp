#include "p4/frontend.h"

#include <optional>
#include <vector>

#include "util/error.h"
#include "util/strings.h"

namespace hyper4::p4 {

using util::BitVec;
using util::ParseError;

namespace {

// ---------------------------------------------------------------------------
// Lexer

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  std::uint64_t number = 0;
  std::size_t number_digits = 0;  // hex digits, for width inference
  bool was_hex = false;
  std::size_t line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  const Token& peek() const { return tok_; }
  Token next() {
    Token t = tok_;
    advance();
    return t;
  }

 private:
  void advance() {
    // Skip whitespace and comments.
    for (;;) {
      while (pos_ < src_.size() &&
             (src_[pos_] == ' ' || src_[pos_] == '\t' || src_[pos_] == '\r' ||
              src_[pos_] == '\n')) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < src_.size() &&
               !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, src_.size());
        continue;
      }
      break;
    }
    tok_ = Token{};
    tok_.line = line_;
    if (pos_ >= src_.size()) {
      tok_.kind = Token::Kind::kEnd;
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t s = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        ++pos_;
      }
      tok_.kind = Token::Kind::kIdent;
      tok_.text = src_.substr(s, pos_ - s);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t s = pos_;
      bool hex = false;
      if (c == '0' && pos_ + 1 < src_.size() &&
          (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
        hex = true;
        pos_ += 2;
        while (pos_ < src_.size() &&
               std::isxdigit(static_cast<unsigned char>(src_[pos_]))) {
          ++pos_;
        }
      } else {
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          ++pos_;
        }
      }
      tok_.kind = Token::Kind::kNumber;
      tok_.text = src_.substr(s, pos_ - s);
      tok_.number = util::parse_uint(tok_.text);
      tok_.was_hex = hex;
      tok_.number_digits = hex ? tok_.text.size() - 2 : 0;
      return;
    }
    // Multi-character punctuation first.
    for (const char* p : {"==", "!=", ">=", "<=", "&&", "||"}) {
      if (src_.compare(pos_, 2, p) == 0) {
        tok_.kind = Token::Kind::kPunct;
        tok_.text = p;
        pos_ += 2;
        return;
      }
    }
    tok_.kind = Token::Kind::kPunct;
    tok_.text = std::string(1, c);
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  Token tok_;
};

// ---------------------------------------------------------------------------
// Parser

class Parser {
 public:
  Parser(const std::string& src, std::string name) : lex_(src) {
    prog_.name = std::move(name);
    prog_.ingress.name = "ingress";
    prog_.egress.name = "egress";
  }

  // Returns the raw program; parse_p4 fixes select-case widths (which need
  // the complete instance table) before finalizing.
  Program run() {
    while (lex_.peek().kind != Token::Kind::kEnd) top_level();
    return prog_;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw ParseError("p4 parse error at line " +
                     std::to_string(lex_.peek().line) + ": " + msg);
  }

  Token expect_ident(const char* what) {
    if (lex_.peek().kind != Token::Kind::kIdent)
      fail(std::string("expected ") + what + ", got '" + lex_.peek().text + "'");
    return lex_.next();
  }
  std::uint64_t expect_number(const char* what) {
    if (lex_.peek().kind != Token::Kind::kNumber)
      fail(std::string("expected ") + what);
    return lex_.next().number;
  }
  void expect_punct(const char* p) {
    if (lex_.peek().kind != Token::Kind::kPunct || lex_.peek().text != p)
      fail(std::string("expected '") + p + "', got '" + lex_.peek().text + "'");
    lex_.next();
  }
  bool accept_punct(const char* p) {
    if (lex_.peek().kind == Token::Kind::kPunct && lex_.peek().text == p) {
      lex_.next();
      return true;
    }
    return false;
  }
  bool accept_ident(const char* kw) {
    if (lex_.peek().kind == Token::Kind::kIdent && lex_.peek().text == kw) {
      lex_.next();
      return true;
    }
    return false;
  }

  // "hdr.field" (the "hdr" part may itself be "stack[3]").
  FieldRef parse_field_ref() {
    std::string hdr = expect_ident("header name").text;
    if (accept_punct("[")) {
      hdr += "[" + std::to_string(expect_number("stack index")) + "]";
      expect_punct("]");
    }
    expect_punct(".");
    std::string fld = expect_ident("field name").text;
    return FieldRef{std::move(hdr), std::move(fld)};
  }

  void top_level() {
    const Token t = expect_ident("declaration");
    const std::string& kw = t.text;
    if (kw == "header_type") return parse_header_type();
    if (kw == "header") return parse_instance(false);
    if (kw == "metadata") return parse_instance(true);
    if (kw == "field_list") return parse_field_list();
    if (kw == "field_list_calculation") return parse_flc();
    if (kw == "calculated_field") return parse_calculated_field();
    if (kw == "parser") return parse_parser_state();
    if (kw == "action") return parse_action();
    if (kw == "table") return parse_table();
    if (kw == "control") return parse_control();
    if (kw == "counter") return parse_counter();
    if (kw == "meter") return parse_meter();
    if (kw == "register") return parse_register();
    fail("unknown declaration '" + kw + "'");
  }

  void parse_header_type() {
    HeaderType ht;
    ht.name = expect_ident("header type name").text;
    expect_punct("{");
    expect_ident("fields");
    expect_punct("{");
    while (!accept_punct("}")) {
      Field f;
      f.name = expect_ident("field name").text;
      expect_punct(":");
      f.width = expect_number("field width");
      expect_punct(";");
      ht.fields.push_back(std::move(f));
    }
    expect_punct("}");
    prog_.header_types.push_back(std::move(ht));
  }

  void parse_instance(bool metadata) {
    HeaderInstance inst;
    inst.type = expect_ident("type name").text;
    inst.name = expect_ident("instance name").text;
    inst.metadata = metadata;
    if (accept_punct("[")) {
      inst.stack_size = expect_number("stack size");
      expect_punct("]");
    }
    expect_punct(";");
    prog_.instances.push_back(std::move(inst));
  }

  void parse_field_list() {
    FieldListDef fl;
    fl.name = expect_ident("field list name").text;
    expect_punct("{");
    while (!accept_punct("}")) {
      fl.fields.push_back(parse_field_ref());
      expect_punct(";");
    }
    prog_.field_lists.push_back(std::move(fl));
  }

  struct Flc {
    std::string name;
    std::string input_list;
  };
  std::vector<Flc> flcs_;

  void parse_flc() {
    Flc f;
    f.name = expect_ident("calculation name").text;
    expect_punct("{");
    while (!accept_punct("}")) {
      const Token t = expect_ident("calculation item");
      if (t.text == "input") {
        expect_punct("{");
        f.input_list = expect_ident("field list").text;
        expect_punct(";");
        expect_punct("}");
      } else if (t.text == "algorithm") {
        expect_punct(":");
        const std::string algo = expect_ident("algorithm").text;
        if (algo != "csum16")
          fail("only the csum16 algorithm is supported, got '" + algo + "'");
        expect_punct(";");
      } else if (t.text == "output_width") {
        expect_punct(":");
        expect_number("output width");
        expect_punct(";");
      } else {
        fail("unknown calculation item '" + t.text + "'");
      }
    }
    flcs_.push_back(std::move(f));
  }

  void parse_calculated_field() {
    CalculatedField cf;
    cf.field = parse_field_ref();
    expect_punct("{");
    while (!accept_punct("}")) {
      expect_ident("update");
      const std::string calc = expect_ident("calculation name").text;
      bool found = false;
      for (const auto& f : flcs_) {
        if (f.name == calc) {
          cf.field_list = f.input_list;
          found = true;
        }
      }
      if (!found) fail("unknown field_list_calculation '" + calc + "'");
      if (accept_ident("if")) {
        expect_punct("(");
        cf.update_condition = parse_condition();
        expect_punct(")");
      }
      expect_punct(";");
    }
    prog_.calculated_fields.push_back(std::move(cf));
  }

  void parse_counter() {
    CounterDef c;
    c.name = expect_ident("counter name").text;
    expect_punct("{");
    while (!accept_punct("}")) {
      const Token t = expect_ident("counter item");
      expect_punct(":");
      if (t.text == "type") {
        expect_ident("counter type");
      } else if (t.text == "direct") {
        c.direct_table = expect_ident("table").text;
      } else if (t.text == "instance_count") {
        c.instance_count = expect_number("instances");
      } else {
        fail("unknown counter item '" + t.text + "'");
      }
      expect_punct(";");
    }
    prog_.counters.push_back(std::move(c));
  }

  void parse_meter() {
    MeterDef m;
    m.name = expect_ident("meter name").text;
    expect_punct("{");
    while (!accept_punct("}")) {
      const Token t = expect_ident("meter item");
      expect_punct(":");
      if (t.text == "type") expect_ident("meter type");
      else if (t.text == "instance_count") m.instance_count = expect_number("n");
      else if (t.text == "rate_pps") m.rate_pps = expect_number("rate");
      else if (t.text == "burst") m.burst = expect_number("burst");
      else fail("unknown meter item '" + t.text + "'");
      expect_punct(";");
    }
    prog_.meters.push_back(std::move(m));
  }

  void parse_register() {
    RegisterDef r;
    r.name = expect_ident("register name").text;
    expect_punct("{");
    while (!accept_punct("}")) {
      const Token t = expect_ident("register item");
      expect_punct(":");
      if (t.text == "width") r.width = expect_number("width");
      else if (t.text == "instance_count") r.instance_count = expect_number("n");
      else fail("unknown register item '" + t.text + "'");
      expect_punct(";");
    }
    prog_.registers.push_back(std::move(r));
  }

  // --- parser states ------------------------------------------------------------

  std::string parse_state_target() {
    const std::string n = expect_ident("parser target").text;
    if (n == "ingress") return kParserAccept;
    if (n == "parse_drop") return kParserDrop;
    return n;
  }

  void parse_parser_state() {
    ParserState st;
    st.name = expect_ident("parser state name").text;
    expect_punct("{");
    for (;;) {
      if (accept_ident("extract")) {
        expect_punct("(");
        std::string inst = expect_ident("header instance").text;
        if (accept_punct("[")) {
          if (accept_ident("next")) {
            // extract(stack[next]) — the engine's bare-stack extract.
          } else {
            inst += "[" + std::to_string(expect_number("index")) + "]";
          }
          expect_punct("]");
        }
        expect_punct(")");
        expect_punct(";");
        st.extracts.push_back(std::move(inst));
        continue;
      }
      if (accept_ident("set_metadata")) {
        expect_punct("(");
        FieldRef dst = parse_field_ref();
        expect_punct(",");
        ExprPtr value;
        if (lex_.peek().kind == Token::Kind::kNumber) {
          const Token n = lex_.next();
          value = Expr::constant(BitVec(64, n.number));
        } else {
          value = Expr::field(parse_field_ref());
        }
        expect_punct(")");
        expect_punct(";");
        st.sets.emplace_back(std::move(dst), std::move(value));
        continue;
      }
      break;
    }
    expect_ident("return");
    if (accept_ident("select")) {
      expect_punct("(");
      std::size_t total_width = 0;
      do {
        SelectKey k;
        if (accept_ident("current")) {
          expect_punct("(");
          k.is_current = true;
          k.current_offset = expect_number("offset");
          expect_punct(",");
          k.current_width = expect_number("width");
          expect_punct(")");
          total_width += k.current_width;
        } else {
          k.field = parse_field_ref();
          total_width = 0;  // resolved at finalize via field widths
        }
        st.select.push_back(std::move(k));
      } while (accept_punct(","));
      expect_punct(")");
      expect_punct("{");
      // Width: compute from the program once instances are known — the
      // cases below use 64-bit sentinels resized in a fix-up pass.
      while (!accept_punct("}")) {
        ParserCase c;
        if (accept_ident("default")) {
          c.is_default = true;
        } else {
          const Token v = lex_.next();
          if (v.kind != Token::Kind::kNumber) fail("expected case value");
          c.value = BitVec(64, v.number);
          if (accept_ident("mask")) {
            const Token m = lex_.next();
            if (m.kind != Token::Kind::kNumber) fail("expected mask value");
            c.mask = BitVec(64, m.number);
          }
        }
        expect_punct(":");
        c.next_state = parse_state_target();
        expect_punct(";");
        st.cases.push_back(std::move(c));
      }
    } else {
      ParserCase c;
      c.is_default = true;
      c.next_state = parse_state_target();
      st.cases.push_back(std::move(c));
      expect_punct(";");
    }
    expect_punct("}");
    prog_.parser_states.push_back(std::move(st));
  }

  // --- actions --------------------------------------------------------------------

  Primitive primitive_by_name(const std::string& n) {
    static const std::pair<const char*, Primitive> kMap[] = {
        {"no_op", Primitive::kNoOp},
        {"modify_field", Primitive::kModifyField},
        {"add_to_field", Primitive::kAddToField},
        {"subtract_from_field", Primitive::kSubtractFromField},
        {"add", Primitive::kAdd},
        {"subtract", Primitive::kSubtract},
        {"bit_and", Primitive::kBitAnd},
        {"bit_or", Primitive::kBitOr},
        {"bit_xor", Primitive::kBitXor},
        {"shift_left", Primitive::kShiftLeft},
        {"shift_right", Primitive::kShiftRight},
        {"add_header", Primitive::kAddHeader},
        {"copy_header", Primitive::kCopyHeader},
        {"remove_header", Primitive::kRemoveHeader},
        {"push", Primitive::kPush},
        {"pop", Primitive::kPop},
        {"drop", Primitive::kDrop},
        {"truncate", Primitive::kTruncate},
        {"count", Primitive::kCount},
        {"execute_meter", Primitive::kExecuteMeter},
        {"register_read", Primitive::kRegisterRead},
        {"register_write", Primitive::kRegisterWrite},
        {"resubmit", Primitive::kResubmit},
        {"recirculate", Primitive::kRecirculate},
        {"clone_ingress_pkt_to_egress", Primitive::kCloneIngressToEgress},
        {"clone_egress_pkt_to_egress", Primitive::kCloneEgressToEgress},
        {"generate_digest", Primitive::kGenerateDigest},
        {"modify_field_rng_uniform", Primitive::kModifyFieldRngUniform},
    };
    for (const auto& [name, prim] : kMap) {
      if (n == name) return prim;
    }
    fail("unknown primitive '" + n + "'");
  }

  void parse_action() {
    ActionDef a;
    a.name = expect_ident("action name").text;
    expect_punct("(");
    if (!accept_punct(")")) {
      do {
        ActionParam p;
        p.name = expect_ident("parameter name").text;
        a.params.push_back(std::move(p));
      } while (accept_punct(","));
      expect_punct(")");
    }
    expect_punct("{");
    while (!accept_punct("}")) {
      PrimitiveCall call;
      const std::string pname = expect_ident("primitive").text;
      call.op = primitive_by_name(pname);
      expect_punct("(");
      if (!accept_punct(")")) {
        do {
          call.args.push_back(parse_action_arg(a, call.op));
        } while (accept_punct(","));
        expect_punct(")");
      }
      expect_punct(";");
      a.body.push_back(std::move(call));
    }
    prog_.actions.push_back(std::move(a));
  }

  ActionArg parse_action_arg(const ActionDef& a, Primitive op) {
    if (lex_.peek().kind == Token::Kind::kNumber) {
      const Token n = lex_.next();
      // Width from hex digit count, else 64-bit (resized on use).
      const std::size_t width = n.was_hex ? n.number_digits * 4 : 64;
      return ActionArg::constant(BitVec(width, n.number));
    }
    const Token id = expect_ident("argument");
    // Parameter reference?
    for (std::size_t i = 0; i < a.params.size(); ++i) {
      if (a.params[i].name == id.text) return ActionArg::param(i);
    }
    // Field reference?
    if (lex_.peek().kind == Token::Kind::kPunct && lex_.peek().text == ".") {
      lex_.next();
      std::string fld = expect_ident("field").text;
      return ActionArg::of_field(id.text, fld);
    }
    if (lex_.peek().kind == Token::Kind::kPunct && lex_.peek().text == "[") {
      lex_.next();
      const std::uint64_t idx = expect_number("stack index");
      expect_punct("]");
      expect_punct(".");
      std::string fld = expect_ident("field").text;
      return ActionArg::of_field(id.text + "[" + std::to_string(idx) + "]", fld);
    }
    // A bare name: header instance for header primitives, named object
    // otherwise.
    switch (op) {
      case Primitive::kAddHeader:
      case Primitive::kCopyHeader:
      case Primitive::kRemoveHeader:
      case Primitive::kPush:
      case Primitive::kPop:
        return ActionArg::header(id.text);
      default:
        return ActionArg::named(id.text);
    }
  }

  // --- tables ---------------------------------------------------------------------

  void parse_table() {
    TableDef t;
    t.name = expect_ident("table name").text;
    expect_punct("{");
    while (!accept_punct("}")) {
      const Token item = expect_ident("table item");
      if (item.text == "reads") {
        expect_punct("{");
        while (!accept_punct("}")) {
          TableKey k;
          const std::string first = expect_ident("key").text;
          if (accept_punct(".")) {
            k.field.header = first;
            k.field.field = expect_ident("field").text;
          } else {
            k.field.header = first;  // instance, for valid matches
          }
          expect_punct(":");
          const std::string mt = expect_ident("match type").text;
          if (mt == "exact") k.type = MatchType::kExact;
          else if (mt == "ternary") k.type = MatchType::kTernary;
          else if (mt == "lpm") k.type = MatchType::kLpm;
          else if (mt == "valid") k.type = MatchType::kValid;
          else if (mt == "range") k.type = MatchType::kRange;
          else fail("unknown match type '" + mt + "'");
          expect_punct(";");
          t.keys.push_back(std::move(k));
        }
      } else if (item.text == "actions") {
        expect_punct("{");
        while (!accept_punct("}")) {
          t.actions.push_back(expect_ident("action").text);
          expect_punct(";");
        }
      } else if (item.text == "default_action") {
        expect_punct(":");
        t.default_action = expect_ident("action").text;
        if (accept_punct("(")) {
          if (!accept_punct(")")) {
            do {
              t.default_action_args.push_back(
                  BitVec(64, expect_number("argument")));
            } while (accept_punct(","));
            expect_punct(")");
          }
        }
        expect_punct(";");
      } else if (item.text == "size") {
        expect_punct(":");
        t.max_size = expect_number("size");
        expect_punct(";");
      } else if (item.text == "support_timeout") {
        expect_punct(":");
        expect_ident("flag");
        expect_punct(";");
      } else {
        fail("unknown table item '" + item.text + "'");
      }
    }
    prog_.tables.push_back(std::move(t));
  }

  // --- control --------------------------------------------------------------------

  ExprPtr parse_condition() {
    if (accept_ident("valid")) {
      expect_punct("(");
      const std::string h = expect_ident("header").text;
      expect_punct(")");
      return Expr::valid(h);
    }
    if (accept_ident("not")) {
      expect_punct("(");
      ExprPtr inner = parse_condition();
      expect_punct(")");
      return Expr::unary(ExprOp::kLNot, std::move(inner));
    }
    // field OP constant
    FieldRef f = parse_field_ref();
    const Token op = lex_.next();
    ExprOp eop;
    if (op.text == "==") eop = ExprOp::kEq;
    else if (op.text == "!=") eop = ExprOp::kNe;
    else if (op.text == ">") eop = ExprOp::kGt;
    else if (op.text == "<") eop = ExprOp::kLt;
    else if (op.text == ">=") eop = ExprOp::kGe;
    else if (op.text == "<=") eop = ExprOp::kLe;
    else fail("unknown comparison '" + op.text + "'");
    const std::uint64_t v = expect_number("comparison value");
    return Expr::binary(eop, Expr::field(std::move(f)),
                        Expr::constant(BitVec(64, v)));
  }

  // Parse a block of statements into `ctl`; returns (entry, exits) where
  // exits are nodes whose fall-through edge should be wired to whatever
  // follows the block.
  struct Block {
    std::size_t entry = kEndOfControl;
    std::vector<std::size_t> exits;  // apply nodes (default edge) ...
    std::vector<std::pair<std::size_t, bool>> if_exits;  // (node, true-branch?)
  };

  Block parse_block(Control& ctl) {
    Block blk;
    auto link_to = [&](const Block& prev, std::size_t target) {
      for (auto n : prev.exits) ctl.nodes[n].next_default = target;
      for (auto [n, tr] : prev.if_exits) {
        if (tr) ctl.nodes[n].next_true = target;
        else ctl.nodes[n].next_false = target;
      }
    };
    Block tail;  // open edges of the previous statement
    bool first = true;
    for (;;) {
      if (accept_ident("apply")) {
        expect_punct("(");
        ControlNode n;
        n.kind = ControlNode::Kind::kApply;
        n.table = expect_ident("table").text;
        expect_punct(")");
        ctl.nodes.push_back(std::move(n));
        const std::size_t idx = ctl.nodes.size() - 1;
        if (first) blk.entry = idx;
        else link_to(tail, idx);
        first = false;
        tail = Block{};
        tail.exits = {idx};
        if (accept_punct(";")) continue;
        // apply(t) { hit { ... } miss { ... } } — clause blocks run on
        // their outcome; a missing or empty clause falls through.
        expect_punct("{");
        while (!accept_punct("}")) {
          const Token clause = expect_ident("'hit' or 'miss'");
          const bool is_hit = clause.text == "hit";
          if (!is_hit && clause.text != "miss")
            fail("expected 'hit' or 'miss', got '" + clause.text + "'");
          expect_punct("{");
          Block cb = parse_block(ctl);
          expect_punct("}");
          if (cb.entry == kEndOfControl) continue;  // empty: fall through
          if (is_hit) ctl.nodes[idx].on_hit = cb.entry;
          else ctl.nodes[idx].on_miss = cb.entry;
          for (auto e : cb.exits) tail.exits.push_back(e);
          for (auto e : cb.if_exits) tail.if_exits.push_back(e);
        }
        continue;
      }
      if (accept_ident("if")) {
        expect_punct("(");
        ControlNode n;
        n.kind = ControlNode::Kind::kIf;
        n.condition = parse_condition();
        expect_punct(")");
        ctl.nodes.push_back(std::move(n));
        const std::size_t idx = ctl.nodes.size() - 1;
        if (first) blk.entry = idx;
        else link_to(tail, idx);
        first = false;

        expect_punct("{");
        Block then_blk = parse_block(ctl);
        expect_punct("}");
        Block else_blk;
        bool has_else = false;
        if (accept_ident("else")) {
          has_else = true;
          expect_punct("{");
          else_blk = parse_block(ctl);
          expect_punct("}");
        }
        ctl.nodes[idx].next_true = then_blk.entry;  // kEnd if empty block
        ctl.nodes[idx].next_false =
            has_else ? else_blk.entry : kEndOfControl;

        tail = Block{};
        if (then_blk.entry == kEndOfControl) {
          tail.if_exits.emplace_back(idx, true);
        } else {
          tail.exits = then_blk.exits;
          for (auto e : then_blk.if_exits) tail.if_exits.push_back(e);
        }
        if (!has_else || else_blk.entry == kEndOfControl) {
          tail.if_exits.emplace_back(idx, false);
        } else {
          for (auto e : else_blk.exits) tail.exits.push_back(e);
          for (auto e : else_blk.if_exits) tail.if_exits.push_back(e);
        }
        continue;
      }
      break;
    }
    blk.exits = tail.exits;
    blk.if_exits = tail.if_exits;
    if (first) blk.entry = kEndOfControl;
    return blk;
  }

  void parse_control() {
    const std::string name = expect_ident("control name").text;
    Control* ctl = nullptr;
    if (name == "ingress") ctl = &prog_.ingress;
    else if (name == "egress") ctl = &prog_.egress;
    else fail("control must be 'ingress' or 'egress'");
    expect_punct("{");
    parse_block(*ctl);
    expect_punct("}");
    // Blocks must start at node 0; parse_block appends in program order,
    // which for a fresh control already begins at its entry.
  }

  Lexer lex_;
  Program prog_;
};

}  // namespace

Program parse_p4(const std::string& source, const std::string& name) {
  Parser p(source, name);
  Program prog = p.run();
  // Resize sentinel 64-bit select-case values to the select width.
  for (auto& st : prog.parser_states) {
    if (st.select.empty()) continue;
    std::size_t w = 0;
    for (const auto& k : st.select) w += k.width(prog);
    for (auto& c : st.cases) {
      if (!c.is_default) {
        if (c.value.width() != w) c.value = c.value.resized(w);
        if (c.mask && c.mask->width() != w) c.mask = c.mask->resized(w);
      }
    }
  }
  prog.finalize();
  return prog;
}

}  // namespace hyper4::p4
