#include "p4/ir.h"

#include <algorithm>
#include <functional>
#include <set>

#include "util/error.h"

namespace hyper4::p4 {

using util::ConfigError;

// ---------------------------------------------------------------------------
// Expr

std::string Expr::str() const {
  switch (op) {
    case ExprOp::kConst: return "0x" + value.to_hex();
    case ExprOp::kField: return fref.str();
    case ExprOp::kValid: return "valid(" + fref.header + ")";
    case ExprOp::kLNot: return "not (" + children[0]->str() + ")";
    case ExprOp::kBitNot: return "~" + children[0]->str();
    default: break;
  }
  const char* sym = "?";
  switch (op) {
    case ExprOp::kAdd: sym = "+"; break;
    case ExprOp::kSub: sym = "-"; break;
    case ExprOp::kBitAnd: sym = "&"; break;
    case ExprOp::kBitOr: sym = "|"; break;
    case ExprOp::kBitXor: sym = "^"; break;
    case ExprOp::kShl: sym = "<<"; break;
    case ExprOp::kShr: sym = ">>"; break;
    case ExprOp::kEq: sym = "=="; break;
    case ExprOp::kNe: sym = "!="; break;
    case ExprOp::kLt: sym = "<"; break;
    case ExprOp::kGt: sym = ">"; break;
    case ExprOp::kLe: sym = "<="; break;
    case ExprOp::kGe: sym = ">="; break;
    case ExprOp::kLAnd: sym = "and"; break;
    case ExprOp::kLOr: sym = "or"; break;
    default: break;
  }
  return "(" + children[0]->str() + " " + sym + " " + children[1]->str() + ")";
}

// ---------------------------------------------------------------------------
// HeaderType

std::size_t HeaderType::width_bits() const {
  std::size_t w = 0;
  for (const auto& f : fields) w += f.width;
  return w;
}

std::size_t HeaderType::field_offset(const std::string& field) const {
  std::size_t off = 0;
  for (const auto& f : fields) {
    if (f.name == field) return off;
    off += f.width;
  }
  throw ConfigError("header type '" + name + "' has no field '" + field + "'");
}

const Field& HeaderType::field_def(const std::string& field) const {
  for (const auto& f : fields)
    if (f.name == field) return f;
  throw ConfigError("header type '" + name + "' has no field '" + field + "'");
}

bool HeaderType::has_field(const std::string& field) const {
  return std::any_of(fields.begin(), fields.end(),
                     [&](const Field& f) { return f.name == field; });
}

// ---------------------------------------------------------------------------
// Names

const char* primitive_name(Primitive p) {
  switch (p) {
    case Primitive::kNoOp: return "no_op";
    case Primitive::kModifyField: return "modify_field";
    case Primitive::kAddToField: return "add_to_field";
    case Primitive::kSubtractFromField: return "subtract_from_field";
    case Primitive::kAdd: return "add";
    case Primitive::kSubtract: return "subtract";
    case Primitive::kBitAnd: return "bit_and";
    case Primitive::kBitOr: return "bit_or";
    case Primitive::kBitXor: return "bit_xor";
    case Primitive::kShiftLeft: return "shift_left";
    case Primitive::kShiftRight: return "shift_right";
    case Primitive::kAddHeader: return "add_header";
    case Primitive::kCopyHeader: return "copy_header";
    case Primitive::kRemoveHeader: return "remove_header";
    case Primitive::kPush: return "push";
    case Primitive::kPop: return "pop";
    case Primitive::kDrop: return "drop";
    case Primitive::kTruncate: return "truncate";
    case Primitive::kCount: return "count";
    case Primitive::kExecuteMeter: return "execute_meter";
    case Primitive::kRegisterRead: return "register_read";
    case Primitive::kRegisterWrite: return "register_write";
    case Primitive::kResubmit: return "resubmit";
    case Primitive::kRecirculate: return "recirculate";
    case Primitive::kCloneIngressToEgress: return "clone_ingress_pkt_to_egress";
    case Primitive::kCloneEgressToEgress: return "clone_egress_pkt_to_egress";
    case Primitive::kGenerateDigest: return "generate_digest";
    case Primitive::kModifyFieldRngUniform: return "modify_field_rng_uniform";
  }
  return "?";
}

const char* match_type_name(MatchType t) {
  switch (t) {
    case MatchType::kExact: return "exact";
    case MatchType::kTernary: return "ternary";
    case MatchType::kLpm: return "lpm";
    case MatchType::kValid: return "valid";
    case MatchType::kRange: return "range";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// ActionArg

ActionArg ActionArg::constant(util::BitVec v) {
  ActionArg a;
  a.kind = Kind::kConst;
  a.value = std::move(v);
  return a;
}
ActionArg ActionArg::constant(std::size_t width, std::uint64_t v) {
  return constant(util::BitVec(width, v));
}
ActionArg ActionArg::param(std::size_t index) {
  ActionArg a;
  a.kind = Kind::kParam;
  a.param_index = index;
  return a;
}
ActionArg ActionArg::of_field(FieldRef f) {
  ActionArg a;
  a.kind = Kind::kField;
  a.field = std::move(f);
  return a;
}
ActionArg ActionArg::of_field(std::string header, std::string field) {
  return of_field(FieldRef{std::move(header), std::move(field)});
}
ActionArg ActionArg::header(std::string name) {
  ActionArg a;
  a.kind = Kind::kHeader;
  a.name = std::move(name);
  return a;
}
ActionArg ActionArg::named(std::string name) {
  ActionArg a;
  a.kind = Kind::kNamedRef;
  a.name = std::move(name);
  return a;
}

// ---------------------------------------------------------------------------
// standard metadata

const HeaderType& standard_metadata_type() {
  static const HeaderType t{
      "standard_metadata_t",
      {
          {kFieldIngressPort, kPortWidth},
          {kFieldEgressSpec, kPortWidth},
          {kFieldEgressPort, kPortWidth},
          {kFieldInstanceType, 8},
          {kFieldPacketLength, 16},
          {kFieldMcastGrp, 16},
          {kFieldEgressRid, 16},
      }};
  return t;
}

std::pair<std::string, std::optional<std::size_t>> split_stack_ref(
    const std::string& instance_name) {
  auto lb = instance_name.find('[');
  if (lb == std::string::npos) return {instance_name, std::nullopt};
  auto rb = instance_name.find(']', lb);
  if (rb == std::string::npos || rb != instance_name.size() - 1)
    throw ConfigError("malformed stack reference '" + instance_name + "'");
  std::size_t idx = 0;
  for (std::size_t i = lb + 1; i < rb; ++i) {
    char c = instance_name[i];
    if (c < '0' || c > '9')
      throw ConfigError("malformed stack index in '" + instance_name + "'");
    idx = idx * 10 + static_cast<std::size_t>(c - '0');
  }
  return {instance_name.substr(0, lb), idx};
}

// ---------------------------------------------------------------------------
// Program lookups

namespace {
template <typename T>
const T& find_named(const std::vector<T>& v, const std::string& name,
                    const char* what) {
  for (const auto& x : v)
    if (x.name == name) return x;
  throw ConfigError(std::string("unknown ") + what + " '" + name + "'");
}
}  // namespace

const HeaderType& Program::header_type(const std::string& n) const {
  if (n == standard_metadata_type().name) return standard_metadata_type();
  return find_named(header_types, n, "header type");
}
const HeaderInstance& Program::instance(const std::string& n) const {
  auto [base, idx] = split_stack_ref(n);
  return find_named(instances, base, "header instance");
}
const HeaderType& Program::instance_type(const std::string& n) const {
  if (n == kStandardMetadata) return standard_metadata_type();
  return header_type(instance(n).type);
}
const ParserState& Program::parser_state(const std::string& n) const {
  return find_named(parser_states, n, "parser state");
}
const ActionDef& Program::action(const std::string& n) const {
  return find_named(actions, n, "action");
}
const TableDef& Program::table(const std::string& n) const {
  return find_named(tables, n, "table");
}
const FieldListDef& Program::field_list(const std::string& n) const {
  return find_named(field_lists, n, "field list");
}
bool Program::has_instance(const std::string& n) const {
  if (n == kStandardMetadata) return true;
  auto [base, idx] = split_stack_ref(n);
  return std::any_of(instances.begin(), instances.end(),
                     [&](const HeaderInstance& h) { return h.name == base; });
}
bool Program::has_parser_state(const std::string& n) const {
  return std::any_of(parser_states.begin(), parser_states.end(),
                     [&](const ParserState& s) { return s.name == n; });
}
bool Program::has_table(const std::string& n) const {
  return std::any_of(tables.begin(), tables.end(),
                     [&](const TableDef& t) { return t.name == n; });
}
bool Program::has_action(const std::string& n) const {
  return std::any_of(actions.begin(), actions.end(),
                     [&](const ActionDef& a) { return a.name == n; });
}

std::size_t Program::field_width(const FieldRef& f) const {
  return instance_type(f.header).field_def(f.field).width;
}

std::size_t SelectKey::width(const Program& prog) const {
  return is_current ? current_width : prog.field_width(field);
}

// ---------------------------------------------------------------------------
// finalize / validate

namespace {

// Depth-first traversal of the parser graph collecting extracted instances
// in first-visit order; this is the deparse order rule of P4-14 (headers
// are serialized in the order the parse graph can produce them).
void collect_deparse_order(const Program& prog, const std::string& state_name,
                           std::set<std::string>& visited_states,
                           std::vector<std::string>& order,
                           std::set<std::string>& seen) {
  if (state_name == kParserAccept || state_name == kParserDrop) return;
  if (!visited_states.insert(state_name).second) return;
  const ParserState& st = prog.parser_state(state_name);
  for (const auto& ex : st.extracts) {
    auto [base, idx] = split_stack_ref(ex);
    if (seen.insert(base).second) order.push_back(base);
  }
  for (const auto& c : st.cases) {
    collect_deparse_order(prog, c.next_state, visited_states, order, seen);
  }
}

}  // namespace

void Program::finalize() {
  if (deparse_order.empty() && !parser_states.empty()) {
    std::set<std::string> visited, seen;
    collect_deparse_order(*this, "start", visited, deparse_order, seen);
  }
  validate();
}

void Program::validate() const {
  auto check_field = [&](const FieldRef& f, const std::string& ctx) {
    if (!has_instance(f.header))
      throw ConfigError(name + ": " + ctx + ": unknown instance '" + f.header + "'");
    const HeaderType& t = instance_type(f.header);
    if (!f.field.empty() && !t.has_field(f.field))
      throw ConfigError(name + ": " + ctx + ": no field '" + f.str() + "'");
  };
  std::function<void(const ExprPtr&, const std::string&)> check_expr =
      [&](const ExprPtr& e, const std::string& ctx) {
        if (!e) return;
        if (e->op == ExprOp::kField) check_field(e->fref, ctx);
        if (e->op == ExprOp::kValid && !has_instance(e->fref.header))
          throw ConfigError(name + ": " + ctx + ": unknown instance '" +
                            e->fref.header + "'");
        for (const auto& c : e->children) check_expr(c, ctx);
      };

  // Header instances reference known types; no duplicate names.
  {
    std::set<std::string> names;
    for (const auto& inst : instances) {
      header_type(inst.type);
      if (!names.insert(inst.name).second)
        throw ConfigError(name + ": duplicate instance '" + inst.name + "'");
      if (inst.name == kStandardMetadata)
        throw ConfigError(name + ": must not declare standard_metadata");
      if (inst.stack_size == 0)
        throw ConfigError(name + ": zero-sized stack '" + inst.name + "'");
    }
  }

  // Parser states.
  for (const auto& st : parser_states) {
    const std::string ctx = "parser state " + st.name;
    for (const auto& ex : st.extracts) {
      const HeaderInstance& inst = instance(ex);
      if (inst.metadata)
        throw ConfigError(name + ": " + ctx + ": cannot extract metadata '" + ex + "'");
    }
    for (const auto& [f, e] : st.sets) {
      check_field(f, ctx);
      check_expr(e, ctx);
    }
    if (st.cases.empty())
      throw ConfigError(name + ": " + ctx + ": no transitions");
    std::size_t key_width = 0;
    for (const auto& k : st.select) {
      if (!k.is_current) check_field(k.field, ctx);
      key_width += k.width(*this);
    }
    if (st.select.empty() && st.cases.size() != 1)
      throw ConfigError(name + ": " + ctx +
                        ": multiple cases without a select expression");
    for (const auto& c : st.cases) {
      if (!c.is_default && !st.select.empty() && c.value.width() != key_width)
        throw ConfigError(name + ": " + ctx + ": case value width " +
                          std::to_string(c.value.width()) +
                          " != select width " + std::to_string(key_width));
      if (c.next_state != kParserAccept && c.next_state != kParserDrop &&
          !has_parser_state(c.next_state))
        throw ConfigError(name + ": " + ctx + ": unknown next state '" +
                          c.next_state + "'");
    }
  }
  if (!parser_states.empty() && !has_parser_state("start"))
    throw ConfigError(name + ": parser has no 'start' state");

  // Actions.
  auto check_named = [&](const std::string& n, const char* what) {
    bool ok = false;
    if (std::string(what) == "field list")
      ok = std::any_of(field_lists.begin(), field_lists.end(),
                       [&](const auto& x) { return x.name == n; });
    else if (std::string(what) == "counter")
      ok = std::any_of(counters.begin(), counters.end(),
                       [&](const auto& x) { return x.name == n; });
    else if (std::string(what) == "meter")
      ok = std::any_of(meters.begin(), meters.end(),
                       [&](const auto& x) { return x.name == n; });
    else if (std::string(what) == "register")
      ok = std::any_of(registers.begin(), registers.end(),
                       [&](const auto& x) { return x.name == n; });
    if (!ok)
      throw ConfigError(name + ": unknown " + what + " '" + n + "'");
  };

  for (const auto& a : actions) {
    const std::string ctx = "action " + a.name;
    for (const auto& call : a.body) {
      for (const auto& arg : call.args) {
        switch (arg.kind) {
          case ActionArg::Kind::kField:
            check_field(arg.field, ctx);
            break;
          case ActionArg::Kind::kParam:
            if (arg.param_index >= a.params.size())
              throw ConfigError(name + ": " + ctx + ": parameter index " +
                                std::to_string(arg.param_index) + " out of range");
            break;
          case ActionArg::Kind::kHeader:
            if (!has_instance(arg.name))
              throw ConfigError(name + ": " + ctx + ": unknown header '" +
                                arg.name + "'");
            break;
          case ActionArg::Kind::kNamedRef: {
            const char* what = nullptr;
            switch (call.op) {
              case Primitive::kCount: what = "counter"; break;
              case Primitive::kExecuteMeter: what = "meter"; break;
              case Primitive::kRegisterRead:
              case Primitive::kRegisterWrite: what = "register"; break;
              default: what = "field list"; break;
            }
            check_named(arg.name, what);
            break;
          }
          case ActionArg::Kind::kConst:
            break;
        }
      }
    }
  }

  // Tables.
  {
    std::set<std::string> tnames;
    for (const auto& t : tables) {
      if (!tnames.insert(t.name).second)
        throw ConfigError(name + ": duplicate table '" + t.name + "'");
      const std::string ctx = "table " + t.name;
      for (const auto& k : t.keys) {
        if (k.type == MatchType::kValid) {
          if (!has_instance(k.field.header))
            throw ConfigError(name + ": " + ctx + ": unknown instance '" +
                              k.field.header + "'");
        } else {
          check_field(k.field, ctx);
        }
      }
      if (t.actions.empty())
        throw ConfigError(name + ": " + ctx + ": no actions");
      for (const auto& an : t.actions) action(an);
      if (!t.default_action.empty()) {
        const ActionDef& d = action(t.default_action);
        if (d.params.size() != t.default_action_args.size())
          throw ConfigError(name + ": " + ctx + ": default action arity");
      }
    }
  }

  // Controls.
  auto check_control = [&](const Control& c) {
    for (const auto& n : c.nodes) {
      auto check_next = [&](std::size_t nx) {
        if (nx != kEndOfControl && nx >= c.nodes.size())
          throw ConfigError(name + ": control " + c.name +
                            ": node index out of range");
      };
      if (n.kind == ControlNode::Kind::kApply) {
        const TableDef& t = table(n.table);
        for (const auto& [an, nx] : n.on_action) {
          if (std::find(t.actions.begin(), t.actions.end(), an) ==
              t.actions.end())
            throw ConfigError(name + ": control " + c.name + ": table " +
                              t.name + " has no action '" + an + "'");
          check_next(nx);
        }
        if (n.on_hit) check_next(*n.on_hit);
        if (n.on_miss) check_next(*n.on_miss);
        check_next(n.next_default);
      } else {
        check_expr(n.condition, "control " + c.name);
        check_next(n.next_true);
        check_next(n.next_false);
      }
    }
  };
  check_control(ingress);
  check_control(egress);

  // Field lists / calculated fields / counters.
  for (const auto& fl : field_lists)
    for (const auto& f : fl.fields) check_field(f, "field list " + fl.name);
  for (const auto& cf : calculated_fields) {
    check_field(cf.field, "calculated field");
    field_list(cf.field_list);
    check_expr(cf.update_condition, "calculated field " + cf.field.str());
  }
  for (const auto& c : counters) {
    if (!c.direct_table.empty()) table(c.direct_table);
    else if (c.instance_count == 0)
      throw ConfigError(name + ": counter '" + c.name + "' needs instances");
  }

  // Deparse order references extracted (non-metadata) instances.
  for (const auto& d : deparse_order) {
    const HeaderInstance& inst = instance(d);
    if (inst.metadata)
      throw ConfigError(name + ": metadata '" + d + "' in deparse order");
  }
}

}  // namespace hyper4::p4
