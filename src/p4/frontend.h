// P4-14-subset text front end: lexer + recursive-descent parser producing
// a p4::Program (the p4-hlir role in the paper's toolchain, Fig. 1a).
//
// Supported subset (enough for the paper's four network functions and
// similar programs):
//   header_type / header / metadata declarations
//   field_list, field_list_calculation (csum16) + calculated_field
//   counter / meter / register declarations
//   parser states with extract, and return/return-select (value, value
//     mask value, default), including `ingress` and `parse_drop` targets
//   actions over the implemented primitive set, with parameters
//   tables with reads (exact/ternary/lpm/valid/range), actions,
//     default_action and size
//   control ingress/egress: apply(t) sequences and if/else over valid()
//     and field comparisons
//
// Errors are reported as util::ParseError with line numbers.
#pragma once

#include <string>

#include "p4/ir.h"

namespace hyper4::p4 {

// Parse `source` (P4-14 subset) into a validated Program named `name`.
Program parse_p4(const std::string& source, const std::string& name = "parsed");

}  // namespace hyper4::p4
