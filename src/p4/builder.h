// Fluent construction API for p4::Program.
//
// Example:
//   ProgramBuilder b("l2_switch");
//   b.header_type("ethernet_t", {{"dstAddr", 48}, {"srcAddr", 48},
//                                {"etherType", 16}});
//   b.header("ethernet_t", "ethernet");
//   b.parser("start").extract("ethernet").to_ingress();
//   b.action("forward", {{"port", 9}})
//       .modify_field({"standard_metadata", "egress_spec"}, Param(0));
//   b.table("dmac")
//       .key_exact({"ethernet", "dstAddr"})
//       .action_ref("forward").action_ref("bcast")
//       .default_action("bcast");
//   b.ingress().apply("smac").then_apply("dmac");
//   Program p = b.build();
#pragma once

#include <initializer_list>

#include "p4/ir.h"

namespace hyper4::p4 {

// Shorthand argument factories for action bodies.
inline ActionArg Param(std::size_t i) { return ActionArg::param(i); }
inline ActionArg Const(std::size_t width, std::uint64_t v) {
  return ActionArg::constant(width, v);
}
inline ActionArg Const(util::BitVec v) { return ActionArg::constant(std::move(v)); }
inline ActionArg F(std::string header, std::string field) {
  return ActionArg::of_field(std::move(header), std::move(field));
}
inline ActionArg Hdr(std::string name) { return ActionArg::header(std::move(name)); }
inline ActionArg Named(std::string name) { return ActionArg::named(std::move(name)); }

class ProgramBuilder;

// Builder for one parser state.
class ParserBuilder {
 public:
  ParserBuilder& extract(std::string instance);
  ParserBuilder& set_meta(FieldRef dst, ExprPtr value);
  // Select keys (call one or more times before when()/otherwise()).
  ParserBuilder& select_field(std::string header, std::string field);
  ParserBuilder& select_current(std::size_t offset_bits, std::size_t width_bits);
  // Cases.
  ParserBuilder& when(std::uint64_t value, std::string next);
  ParserBuilder& when(util::BitVec value, std::string next);
  ParserBuilder& when_masked(util::BitVec value, util::BitVec mask, std::string next);
  ParserBuilder& otherwise(std::string next);
  // Unconditional transitions.
  ParserBuilder& to(std::string next) { return otherwise(std::move(next)); }
  ParserBuilder& to_ingress() { return otherwise(kParserAccept); }

 private:
  friend class ProgramBuilder;
  explicit ParserBuilder(ParserState& s) : s_(s) {}
  ParserState& s_;
};

// Builder for one action.
class ActionBuilder {
 public:
  ActionBuilder& prim(Primitive op, std::vector<ActionArg> args);

  ActionBuilder& no_op() { return prim(Primitive::kNoOp, {}); }
  ActionBuilder& modify_field(FieldRef dst, ActionArg src) {
    return prim(Primitive::kModifyField, {ActionArg::of_field(dst), std::move(src)});
  }
  ActionBuilder& modify_field_masked(FieldRef dst, ActionArg src, ActionArg mask) {
    return prim(Primitive::kModifyField,
                {ActionArg::of_field(dst), std::move(src), std::move(mask)});
  }
  ActionBuilder& add_to_field(FieldRef dst, ActionArg v) {
    return prim(Primitive::kAddToField, {ActionArg::of_field(dst), std::move(v)});
  }
  ActionBuilder& subtract_from_field(FieldRef dst, ActionArg v) {
    return prim(Primitive::kSubtractFromField,
                {ActionArg::of_field(dst), std::move(v)});
  }
  ActionBuilder& bit_op(Primitive op, FieldRef dst, ActionArg a, ActionArg b) {
    return prim(op, {ActionArg::of_field(dst), std::move(a), std::move(b)});
  }
  ActionBuilder& add_header(std::string h) {
    return prim(Primitive::kAddHeader, {Hdr(std::move(h))});
  }
  ActionBuilder& remove_header(std::string h) {
    return prim(Primitive::kRemoveHeader, {Hdr(std::move(h))});
  }
  ActionBuilder& copy_header(std::string dst, std::string src) {
    return prim(Primitive::kCopyHeader, {Hdr(std::move(dst)), Hdr(std::move(src))});
  }
  ActionBuilder& drop() { return prim(Primitive::kDrop, {}); }
  ActionBuilder& count(std::string counter, ActionArg index) {
    return prim(Primitive::kCount, {Named(std::move(counter)), std::move(index)});
  }
  ActionBuilder& register_read(FieldRef dst, std::string reg, ActionArg index) {
    return prim(Primitive::kRegisterRead,
                {ActionArg::of_field(dst), Named(std::move(reg)), std::move(index)});
  }
  ActionBuilder& register_write(std::string reg, ActionArg index, ActionArg v) {
    return prim(Primitive::kRegisterWrite,
                {Named(std::move(reg)), std::move(index), std::move(v)});
  }
  ActionBuilder& resubmit(std::string field_list = "") {
    std::vector<ActionArg> args;
    if (!field_list.empty()) args.push_back(Named(std::move(field_list)));
    return prim(Primitive::kResubmit, std::move(args));
  }
  ActionBuilder& recirculate(std::string field_list = "") {
    std::vector<ActionArg> args;
    if (!field_list.empty()) args.push_back(Named(std::move(field_list)));
    return prim(Primitive::kRecirculate, std::move(args));
  }
  ActionBuilder& clone_i2e(ActionArg session, std::string field_list = "") {
    std::vector<ActionArg> args{std::move(session)};
    if (!field_list.empty()) args.push_back(Named(std::move(field_list)));
    return prim(Primitive::kCloneIngressToEgress, std::move(args));
  }
  ActionBuilder& clone_e2e(ActionArg session, std::string field_list = "") {
    std::vector<ActionArg> args{std::move(session)};
    if (!field_list.empty()) args.push_back(Named(std::move(field_list)));
    return prim(Primitive::kCloneEgressToEgress, std::move(args));
  }
  ActionBuilder& truncate(ActionArg len) {
    return prim(Primitive::kTruncate, {std::move(len)});
  }

 private:
  friend class ProgramBuilder;
  explicit ActionBuilder(ActionDef& a) : a_(a) {}
  ActionDef& a_;
};

// Builder for one table.
class TableBuilder {
 public:
  TableBuilder& key(MatchType t, FieldRef f);
  TableBuilder& key_exact(FieldRef f) { return key(MatchType::kExact, std::move(f)); }
  TableBuilder& key_ternary(FieldRef f) { return key(MatchType::kTernary, std::move(f)); }
  TableBuilder& key_lpm(FieldRef f) { return key(MatchType::kLpm, std::move(f)); }
  TableBuilder& key_valid(std::string header) {
    return key(MatchType::kValid, FieldRef{std::move(header), ""});
  }
  TableBuilder& key_range(FieldRef f) { return key(MatchType::kRange, std::move(f)); }
  TableBuilder& action_ref(std::string action);
  TableBuilder& default_action(std::string action,
                               std::vector<util::BitVec> args = {});
  TableBuilder& size(std::size_t n);
  TableBuilder& direct_counter(std::string counter);

 private:
  friend class ProgramBuilder;
  explicit TableBuilder(TableDef& t) : t_(t) {}
  TableDef& t_;
};

// Builder for a control graph. apply()/branch() append nodes; the sequence
// helpers wire node N's default edge to node N+1 as they go, so
//   ctl.apply("t1").then_apply("t2")
// runs t1 then t2 then ends.
class ControlBuilder {
 public:
  // Append an apply node (entry node if first); returns its index.
  std::size_t apply(std::string table);
  // Append an apply node and link the previous node's default edge to it.
  ControlBuilder& then_apply(std::string table);
  // Append an if node with explicit successor indices (wire later).
  std::size_t branch(ExprPtr cond);
  // Edge wiring by node index.
  ControlBuilder& on_action(std::size_t node, std::string action, std::size_t next);
  ControlBuilder& on_hit(std::size_t node, std::size_t next);
  ControlBuilder& on_miss(std::size_t node, std::size_t next);
  ControlBuilder& on_default(std::size_t node, std::size_t next);
  ControlBuilder& on_true(std::size_t node, std::size_t next);
  ControlBuilder& on_false(std::size_t node, std::size_t next);

  std::size_t size() const { return c_.nodes.size(); }

 private:
  friend class ProgramBuilder;
  explicit ControlBuilder(Control& c) : c_(c) {}
  Control& c_;
};

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  ProgramBuilder& header_type(std::string name, std::vector<Field> fields);
  // Declare a packet header instance of `type` named `name`.
  ProgramBuilder& header(std::string type, std::string name);
  ProgramBuilder& header_stack(std::string type, std::string name, std::size_t count);
  ProgramBuilder& metadata(std::string type, std::string name);

  ParserBuilder parser(std::string state_name);
  ActionBuilder action(std::string name, std::vector<ActionParam> params = {});
  TableBuilder table(std::string name);
  ControlBuilder ingress();
  ControlBuilder egress();

  ProgramBuilder& field_list(std::string name, std::vector<FieldRef> fields);
  ProgramBuilder& counter(std::string name, std::size_t instances,
                          std::string direct_table = "");
  ProgramBuilder& meter(std::string name, std::size_t instances,
                        std::uint64_t rate_pps, std::uint64_t burst);
  ProgramBuilder& reg(std::string name, std::size_t width, std::size_t instances);
  ProgramBuilder& checksum(FieldRef field, std::string field_list,
                           ExprPtr condition = nullptr);
  ProgramBuilder& deparse_order(std::vector<std::string> order);

  // Finalize (derive deparse order, validate) and return the program.
  Program build();
  // Access the program under construction without finalizing.
  Program& raw() { return p_; }

 private:
  Program p_;
};

}  // namespace hyper4::p4
