// P4 program intermediate representation (the HLIR-equivalent).
//
// A Program is a declarative description of a P4-14-style packet processor:
// header types and instances, a parser graph, actions built from the P4-14
// primitive set, match-action tables, control-flow graphs for ingress and
// egress, stateful objects (counters, meters, registers) and calculated
// (checksum) fields.
//
// Programs are built either with p4::ProgramBuilder (builder.h), by the
// P4-14-subset text front end (frontend.h), or generated — the HyPer4
// persona itself is a Program produced by hp4::PersonaGenerator. The
// behavioral-model switch (src/bm) interprets Programs; it has no special
// knowledge of HyPer4.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "p4/expr.h"
#include "util/bitvec.h"

namespace hyper4::p4 {

// ---------------------------------------------------------------------------
// Headers

struct Field {
  std::string name;
  std::size_t width = 0;  // bits
};

struct HeaderType {
  std::string name;
  std::vector<Field> fields;

  std::size_t width_bits() const;
  // Bit offset of `field` from the start of the header (MSB side), as laid
  // out on the wire. Throws ConfigError if absent.
  std::size_t field_offset(const std::string& field) const;
  const Field& field_def(const std::string& field) const;
  bool has_field(const std::string& field) const;
};

struct HeaderInstance {
  std::string name;
  std::string type;
  bool metadata = false;
  // stack_size > 1 declares a header stack; elements are addressed as
  // name[i] and extract(name) in the parser extracts the next element.
  std::size_t stack_size = 1;

  bool is_stack() const { return stack_size > 1; }
};

// ---------------------------------------------------------------------------
// Parser

// One select key: either a field of an already-extracted instance or a
// lookahead window `current(offset, width)` relative to the parse cursor.
struct SelectKey {
  bool is_current = false;
  FieldRef field;             // when !is_current
  std::size_t current_offset = 0;  // bits, when is_current
  std::size_t current_width = 0;   // bits, when is_current
  std::size_t width(const struct Program& prog) const;
};

struct ParserCase {
  // Values to compare against the concatenated select keys; `mask`, when
  // set, is ANDed with both sides (P4-14 "value mask" syntax). A default
  // case has is_default = true.
  util::BitVec value;
  std::optional<util::BitVec> mask;
  bool is_default = false;
  std::string next_state;  // another parser state, or kParserAccept / kParserDrop
};

inline const std::string kParserAccept = "__accept__";  // proceed to ingress
inline const std::string kParserDrop = "__drop__";

struct ParserState {
  std::string name;
  // Header instances to extract, in order. Extracting a stack instance
  // extracts its next free element.
  std::vector<std::string> extracts;
  // set_metadata statements executed after the extracts.
  std::vector<std::pair<FieldRef, ExprPtr>> sets;
  // Select keys; empty means an unconditional transition via `cases[0]`.
  std::vector<SelectKey> select;
  std::vector<ParserCase> cases;
};

// ---------------------------------------------------------------------------
// Actions

// The P4-14 primitive set implemented by the behavioral model.
enum class Primitive {
  kNoOp,
  kModifyField,            // (dst, src [, mask])
  kAddToField,             // (dst, v)
  kSubtractFromField,      // (dst, v)
  kAdd,                    // (dst, a, b)
  kSubtract,               // (dst, a, b)
  kBitAnd, kBitOr, kBitXor,// (dst, a, b)
  kShiftLeft, kShiftRight, // (dst, a, b)
  kAddHeader,              // (hdr)
  kCopyHeader,             // (dst_hdr, src_hdr)
  kRemoveHeader,           // (hdr)
  kPush, kPop,             // (stack, count)
  kDrop,                   // ()
  kTruncate,               // (len_bytes)
  kCount,                  // (counter, index)
  kExecuteMeter,           // (meter, index, dst_field)
  kRegisterRead,           // (dst_field, register, index)
  kRegisterWrite,          // (register, index, src)
  kResubmit,               // ([field_list])
  kRecirculate,            // ([field_list])
  kCloneIngressToEgress,   // (session [, field_list])
  kCloneEgressToEgress,    // (session [, field_list])
  kGenerateDigest,         // (receiver, field_list)
  kModifyFieldRngUniform,  // (dst, lo, hi)
};

const char* primitive_name(Primitive p);

struct ActionArg {
  enum class Kind {
    kConst,     // literal value
    kParam,     // index into the action's runtime parameters
    kField,     // header.field reference
    kHeader,    // header instance by name
    kNamedRef,  // field list / counter / meter / register by name
  };
  Kind kind = Kind::kConst;
  util::BitVec value;      // kConst
  std::size_t param_index = 0;  // kParam
  FieldRef field;          // kField
  std::string name;        // kHeader / kNamedRef

  static ActionArg constant(util::BitVec v);
  static ActionArg constant(std::size_t width, std::uint64_t v);
  static ActionArg param(std::size_t index);
  static ActionArg of_field(FieldRef f);
  static ActionArg of_field(std::string header, std::string field);
  static ActionArg header(std::string name);
  static ActionArg named(std::string name);
};

struct PrimitiveCall {
  Primitive op = Primitive::kNoOp;
  std::vector<ActionArg> args;
};

struct ActionParam {
  std::string name;
  std::size_t width = 0;  // bits; 0 = unconstrained (resized on use)
};

struct ActionDef {
  std::string name;
  std::vector<ActionParam> params;
  std::vector<PrimitiveCall> body;
};

// ---------------------------------------------------------------------------
// Tables

enum class MatchType { kExact, kTernary, kLpm, kValid, kRange };

const char* match_type_name(MatchType t);

struct TableKey {
  MatchType type = MatchType::kExact;
  // For kValid, `field.header` names the instance and `field.field` is "".
  FieldRef field;
};

struct TableDef {
  std::string name;
  std::vector<TableKey> keys;
  std::vector<std::string> actions;   // names of invocable actions
  std::string default_action;         // optional; may carry no args
  std::vector<util::BitVec> default_action_args;
  std::size_t max_size = 1024;
  std::string direct_counter;         // optional counter attached per-entry
};

// ---------------------------------------------------------------------------
// Control flow

// Control graphs are node lists; node 0 of a non-empty control is the entry.
// `next` values are node indices; kEndOfControl terminates the pipeline.
inline constexpr std::size_t kEndOfControl = static_cast<std::size_t>(-1);

struct ControlNode {
  enum class Kind { kApply, kIf };
  Kind kind = Kind::kApply;

  // kApply
  std::string table;
  // Outcome edges: checked in order "action:<name>", then "hit"/"miss",
  // then fallthrough to `next_default`.
  std::map<std::string, std::size_t> on_action;  // action name -> node
  std::optional<std::size_t> on_hit;
  std::optional<std::size_t> on_miss;
  std::size_t next_default = kEndOfControl;

  // kIf
  ExprPtr condition;
  std::size_t next_true = kEndOfControl;
  std::size_t next_false = kEndOfControl;
};

struct Control {
  std::string name;
  std::vector<ControlNode> nodes;
  bool empty() const { return nodes.empty(); }
};

// ---------------------------------------------------------------------------
// Stateful objects & field lists

struct FieldListDef {
  std::string name;
  std::vector<FieldRef> fields;
};

struct CounterDef {
  std::string name;
  std::size_t instance_count = 0;  // 0 for direct counters
  std::string direct_table;        // non-empty: direct-mapped to a table
};

struct MeterDef {
  std::string name;
  std::size_t instance_count = 1;
  // Two-rate behaviour is simplified to a single committed rate; the result
  // color (0 green, 1 yellow, 2 red) is written to the destination field.
  std::uint64_t rate_pps = 1000;
  std::uint64_t burst = 100;
};

struct RegisterDef {
  std::string name;
  std::size_t width = 32;
  std::size_t instance_count = 1;
};

// Calculated field: recompute `field` over `field_list` with csum16 when
// `update_condition` holds (used for the IPv4 header checksum).
struct CalculatedField {
  FieldRef field;
  std::string field_list;
  bool update_on_deparse = true;
  ExprPtr update_condition;  // null = unconditional (if owning header valid)
};

// ---------------------------------------------------------------------------
// Program

struct Program {
  std::string name;

  std::vector<HeaderType> header_types;
  std::vector<HeaderInstance> instances;  // packet headers and metadata
  std::vector<ParserState> parser_states; // entry point: "start"
  std::vector<ActionDef> actions;
  std::vector<TableDef> tables;
  Control ingress;
  Control egress;
  std::vector<FieldListDef> field_lists;
  std::vector<CounterDef> counters;
  std::vector<MeterDef> meters;
  std::vector<RegisterDef> registers;
  std::vector<CalculatedField> calculated_fields;

  // Serialization order for deparsing. If empty, finalize() derives it from
  // a topological traversal of the parser graph (the P4-14 rule).
  std::vector<std::string> deparse_order;

  // --- lookup helpers (throw ConfigError when missing) -------------------
  const HeaderType& header_type(const std::string& name) const;
  const HeaderInstance& instance(const std::string& name) const;
  const HeaderType& instance_type(const std::string& instance_name) const;
  const ParserState& parser_state(const std::string& name) const;
  const ActionDef& action(const std::string& name) const;
  const TableDef& table(const std::string& name) const;
  const FieldListDef& field_list(const std::string& name) const;
  bool has_instance(const std::string& name) const;
  bool has_parser_state(const std::string& name) const;
  bool has_table(const std::string& name) const;
  bool has_action(const std::string& name) const;

  // Width in bits of `header.field`. Understands stack element syntax
  // "name[i]" and standard metadata.
  std::size_t field_width(const FieldRef& f) const;

  // Derive deparse_order (if unset) and run validation; throws ConfigError
  // with a descriptive message on any dangling reference or inconsistency.
  void finalize();

  // Validation only (finalize() calls this).
  void validate() const;
};

// The standard metadata instance every program can reference. The switch
// provides it implicitly; programs must not declare it themselves.
inline const std::string kStandardMetadata = "standard_metadata";

// Fields of standard_metadata.
inline constexpr std::size_t kPortWidth = 9;
inline const std::string kFieldIngressPort = "ingress_port";
inline const std::string kFieldEgressSpec = "egress_spec";
inline const std::string kFieldEgressPort = "egress_port";
inline const std::string kFieldInstanceType = "instance_type";
inline const std::string kFieldPacketLength = "packet_length";
inline const std::string kFieldMcastGrp = "mcast_grp";
inline const std::string kFieldEgressRid = "egress_rid";

// egress_spec value meaning "drop".
inline constexpr std::uint64_t kDropPort = 511;

// instance_type values.
enum class InstanceType : std::uint64_t {
  kNormal = 0,
  kResubmit = 1,
  kRecirculate = 2,
  kIngressClone = 3,
  kEgressClone = 4,
  kReplication = 5,
};

// The HeaderType describing standard_metadata (shared by all programs).
const HeaderType& standard_metadata_type();

// Split "name[3]" into ("name", 3); plain names yield index nullopt.
std::pair<std::string, std::optional<std::size_t>> split_stack_ref(
    const std::string& instance_name);

}  // namespace hyper4::p4
