// Expression trees for parser set_metadata statements and control-flow
// conditionals (P4-14 `if (...)` in control functions).
//
// Expr is an immutable value type; children are shared (the tree is never
// mutated after construction) so Programs stay cheaply copyable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/bitvec.h"

namespace hyper4::p4 {

// Reference to `header.field`. `header` is a header or metadata instance
// name; the special instance "standard_metadata" is always available.
struct FieldRef {
  std::string header;
  std::string field;

  bool operator==(const FieldRef&) const = default;
  std::string str() const { return header + "." + field; }
};

enum class ExprOp {
  kConst,     // leaf: value
  kField,     // leaf: field
  kValid,     // leaf: valid(header)
  kAdd, kSub, kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kLAnd, kLOr, kLNot, kBitNot,
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  static ExprPtr constant(util::BitVec v) {
    auto e = std::make_shared<Expr>();
    e->op = ExprOp::kConst;
    e->value = std::move(v);
    return e;
  }
  static ExprPtr constant(std::size_t width, std::uint64_t v) {
    return constant(util::BitVec(width, v));
  }
  static ExprPtr field(FieldRef f) {
    auto e = std::make_shared<Expr>();
    e->op = ExprOp::kField;
    e->fref = std::move(f);
    return e;
  }
  static ExprPtr field(std::string header, std::string fname) {
    return field(FieldRef{std::move(header), std::move(fname)});
  }
  static ExprPtr valid(std::string header) {
    auto e = std::make_shared<Expr>();
    e->op = ExprOp::kValid;
    e->fref = FieldRef{std::move(header), ""};
    return e;
  }
  static ExprPtr unary(ExprOp op, ExprPtr a) {
    auto e = std::make_shared<Expr>();
    e->op = op;
    e->children = {std::move(a)};
    return e;
  }
  static ExprPtr binary(ExprOp op, ExprPtr a, ExprPtr b) {
    auto e = std::make_shared<Expr>();
    e->op = op;
    e->children = {std::move(a), std::move(b)};
    return e;
  }

  ExprOp op = ExprOp::kConst;
  util::BitVec value;            // kConst
  FieldRef fref;                 // kField / kValid
  std::vector<ExprPtr> children; // interior nodes

  // Human-readable rendering for diagnostics and the P4 source emitter.
  std::string str() const;
};

}  // namespace hyper4::p4
