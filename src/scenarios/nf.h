// Production-grade network functions for the multi-tenant scenario fleet
// (ROADMAP item 3). Five NFs beyond the paper's §6 apps, drawn from the
// applied-research catalog (PAPERS.md): stateful NAT, L4 load balancer,
// ACL firewall, token-bucket rate limiter, in-band telemetry tagger.
//
// Every program stays inside the persona-supported subset (§5.3): no
// registers, counters or meters in the dataplane — flow state (NAT
// bindings, LB connection entries, rate-limit verdicts) lives in
// match-action tables driven by the control plane, SDN style. That is what
// makes the fleet's live table churn honest: "stateful" here means the
// controller continuously installs/updates per-flow entries while traffic
// flows, exactly the operation mix a virtualized data plane must absorb.
//
// All five NFs share one outer header layout (ethernet/ipv4/tcp/udp), so
// any permutation composes into a vdev chain: a packet deparsed by one NF
// reparses cleanly in the next. Each NF ends in a terminal forwarding table
// (default drop), so egress is always decided.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "p4/ir.h"

namespace hyper4::scenarios {

using apps::Rule;

// --- NF catalog -------------------------------------------------------------

enum class NfKind {
  kNat,       // "nat": SNAT/DNAT with control-plane port allocation
  kBalancer,  // "lb": VIP → backend with per-connection tracking entries
  kAcl,       // "acl": L2 forward + IP/L4 ternary access control
  kLimiter,   // "limiter": per-source verdicts driven by token buckets
  kTagger,    // "tagger": in-band telemetry (flow id + hop marking)
};
inline constexpr std::size_t kNfCount = 5;

const std::vector<NfKind>& nf_catalog();
std::string nf_name(NfKind k);
p4::Program nf_program(NfKind k);
// Throws ConfigError with a did-you-mean on unknown names.
NfKind nf_by_name(const std::string& name);

// --- programs ---------------------------------------------------------------

// SNAT/DNAT: snat (src ip/port rewrite, keyed on inside src), dnat (dst
// rewrite, keyed on outside dst — the reverse path of an allocated
// binding), nat_fwd (ipv4.dstAddr → port, default drop). The control plane
// allocates a public (ip, port) per new flow and installs the snat+dnat
// pair — the paper-era "stateful NAT" with the state in the DPMU's tables.
p4::Program stateful_nat();

// L4 load balancer: conn (per-connection pin, keyed on client src),
// vip (VIP:port → backend dst ip/mac rewrite), lb_fwd (ipv4.dstAddr →
// port). Connection tracking = the control plane pinning each observed
// connection to its backend so reschedules don't break established flows.
p4::Program l4_balancer();

// ACL firewall: acl_fwd (dmac → port), acl_ip (ternary src/dst/proto),
// acl_l4 (validity-gated ternary TCP/UDP dports). Deny actions run after
// forwarding so the drop verdict wins (P4-14 drop = egress_spec rewrite).
p4::Program acl_firewall();

// Token-bucket DDoS rate limiter: lim_fwd (dmac → port), limit (ternary
// per-source verdict: permit / police_mark DSCP / police_drop). The bucket
// arithmetic runs in the fleet controller off entry hit counts; refills and
// verdict flips are table churn at the reconfig rate.
p4::Program rate_limiter();

// In-band telemetry tagger: tag_fwd (dmac → port), int_tag (flow id into
// ipv4.identification), int_hop (hop mark: diffserv increment + TTL
// decrement), so a chain position is visible in the packet itself.
p4::Program telemetry_tagger();

// --- per-NF rule constructors ----------------------------------------------

Rule nat_snat(const std::string& inside_ip, std::uint16_t inside_port,
              const std::string& nat_ip, std::uint16_t nat_port);
Rule nat_dnat(const std::string& nat_ip, std::uint16_t nat_port,
              const std::string& inside_ip, std::uint16_t inside_port);
Rule nat_route(const std::string& dst_ip, std::uint16_t port);

Rule lb_conn(const std::string& src_ip, std::uint16_t src_port,
             const std::string& backend_ip, const std::string& backend_mac);
Rule lb_vip(const std::string& vip, std::uint16_t vip_port,
            const std::string& backend_ip, const std::string& backend_mac);
Rule lb_route(const std::string& dst_ip, std::uint16_t port);

Rule acl_forward(const std::string& dst_mac, std::uint16_t port);
Rule acl_deny_src(const std::string& src_ip, const std::string& src_mask,
                  std::int32_t priority);
Rule acl_deny_tcp_dport(std::uint16_t dport, std::int32_t priority);

Rule limiter_forward(const std::string& dst_mac, std::uint16_t port);
Rule limiter_permit(const std::string& src_ip, std::int32_t priority);
Rule limiter_mark(const std::string& src_ip, std::uint8_t dscp,
                  std::int32_t priority);
Rule limiter_drop(const std::string& src_ip, std::int32_t priority);

Rule tagger_forward(const std::string& dst_mac, std::uint16_t port);
Rule tagger_tag(const std::string& dst_ip, std::uint16_t flow_id);
Rule tagger_hop();

// --- canonical tenant flow ---------------------------------------------------

// Addressing for one tenant's canonical client→server TCP flow. Derived
// deterministically from the tenant index so plans never collide.
struct TenantPlan {
  std::uint32_t id = 0;
  std::string client_mac, server_mac, backend_mac;
  std::string client_ip, vip, backend_ip, nat_ip;
  std::uint16_t flow_src_port = 0, vip_port = 0, nat_port = 0;
};
TenantPlan make_tenant_plan(std::uint32_t tenant);

// The canonical flow's header values as seen at one chain position. NFs
// that rewrite headers advance the view; the fleet walks it front-to-back
// so every chain position's rules key on the values that actually arrive.
struct FlowView {
  std::string dst_mac, src_mac;
  std::string src_ip, dst_ip;
  std::uint16_t src_port = 0, dst_port = 0;
};
FlowView initial_flow_view(const TenantPlan& t);

// Rules that make `view`'s flow traverse NF `k` and leave on `egress_port`,
// advancing `view` past the NF's rewrites (NAT source rewrite, LB backend
// rewrite). Includes the realistic non-flow entries (ACL denies, limiter
// verdict) the fleet churns.
std::vector<Rule> nf_flow_rules(NfKind k, const TenantPlan& t, FlowView& view,
                                std::uint16_t egress_port);

// The canonical flow packet entering the chain (client → VIP TCP segment
// with `payload` extra bytes).
net::Packet tenant_flow_packet(const TenantPlan& t, std::size_t payload = 32);

}  // namespace hyper4::scenarios
