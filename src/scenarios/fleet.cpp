#include "scenarios/fleet.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"
#include "vm/vm.h"

namespace hyper4::scenarios {

using util::ConfigError;

hp4::VirtualRule to_virtual_rule(const Rule& r) {
  return hp4::VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

ScenarioFleet::ScenarioFleet(FleetOptions opts) : opts_(opts) {
  if (opts_.tenants == 0) throw ConfigError("fleet: need at least one tenant");
  if (opts_.chain_depth < 1 || opts_.chain_depth > kNfCount - 1)
    throw ConfigError("fleet: chain_depth must be 1.." +
                      std::to_string(kNfCount - 1) +
                      " (a spare catalog kind is needed for hot-swap)");
  if (opts_.tenants > 20000)
    throw ConfigError("fleet: tenant ports exceed the 16-bit port space");

  if (!opts_.durable_dir.empty()) {
    store_ = std::make_unique<state::DurableController>(
        opts_.durable_dir, opts_.persona, opts_.store);
    ctl_ = &store_->controller();
  } else {
    owned_ctl_ = std::make_unique<hp4::Controller>(opts_.persona);
    ctl_ = owned_ctl_.get();
  }

  // Populate every tenant BEFORE the engine attaches: setup is thousands of
  // management ops, and each would otherwise trigger a full replica mirror.
  tenants_.reserve(opts_.tenants);
  for (std::size_t i = 0; i < opts_.tenants; ++i) setup_tenant(i);

  engine::EngineOptions eo;
  eo.workers = std::max<std::size_t>(1, opts_.engine_workers);
  eo.collect_results = true;
  eo.pin_workers = opts_.pin_workers;
  eng_ = std::make_unique<engine::TrafficEngine>(ctl_->dataplane().program(),
                                                 eo);
  ctl_->attach_engine(eng_.get());  // initial sync
  if (opts_.vm_path)
    eng_->set_packet_path(vm::engine_fast_path(ctl_->generator().config()));
}

ScenarioFleet::~ScenarioFleet() {
  if (ctl_) ctl_->attach_engine(nullptr);
  eng_.reset();
}

const ScenarioFleet::Tenant& ScenarioFleet::tenant(std::size_t i) const {
  return tenants_.at(i).pub;
}

// --- op router ----------------------------------------------------------------

hp4::VdevId ScenarioFleet::op_load(const std::string& name,
                                   const p4::Program& prog) {
  return store_ ? store_->load(name, prog) : ctl_->load(name, prog);
}

void ScenarioFleet::op_unload(hp4::VdevId id) {
  store_ ? store_->unload(id) : ctl_->unload(id);
}

void ScenarioFleet::op_chain(const std::vector<hp4::VdevId>& devices,
                             const std::vector<std::uint16_t>& ports) {
  store_ ? store_->chain(devices, ports) : ctl_->chain(devices, ports);
}

std::uint64_t ScenarioFleet::op_add_rule(hp4::VdevId id,
                                         const hp4::VirtualRule& rule) {
  return store_ ? store_->add_rule(id, rule) : ctl_->add_rule(id, rule);
}

void ScenarioFleet::op_delete_rule(hp4::VdevId id, std::uint64_t vhandle) {
  store_ ? store_->delete_rule(id, vhandle) : ctl_->delete_rule(id, vhandle);
}

void ScenarioFleet::txn_begin() {
  store_ ? store_->txn_begin() : ctl_->suspend_engine_refresh();
}

void ScenarioFleet::txn_commit() {
  store_ ? static_cast<void>(store_->txn_commit())
         : ctl_->resume_engine_refresh();
}

// --- setup --------------------------------------------------------------------

std::string ScenarioFleet::vdev_basename(std::size_t tenant, std::size_t pos,
                                         NfKind k) const {
  return "t" + std::to_string(tenant) + "p" + std::to_string(pos) + "_" +
         nf_name(k);
}

void ScenarioFleet::setup_tenant(std::size_t i) {
  TenantState ts;
  ts.pub.plan = make_tenant_plan(static_cast<std::uint32_t>(i));
  ts.pub.in_port = static_cast<std::uint16_t>(2 * i + 1);
  ts.pub.out_port = static_cast<std::uint16_t>(2 * i + 2);
  const auto& cat = nf_catalog();
  for (std::size_t pos = 0; pos < opts_.chain_depth; ++pos) {
    const NfKind k = cat[(i + pos) % cat.size()];
    ts.pub.chain.push_back(k);
    ts.pub.vdevs.push_back(op_load(vdev_basename(i, pos, k), nf_program(k)));
  }
  op_chain(ts.pub.vdevs, {ts.pub.in_port, ts.pub.out_port});
  ts.installed.resize(opts_.chain_depth);
  install_flow_rules(ts);
  ts.pub.flow_packet = tenant_flow_packet(ts.pub.plan);
  tenants_.push_back(std::move(ts));
}

void ScenarioFleet::delete_rules(TenantState& t, std::size_t pos,
                                 bool flow_only) {
  auto& v = t.installed[pos];
  for (auto it = v.begin(); it != v.end();) {
    if (!flow_only || it->flow) {
      op_delete_rule(t.pub.vdevs[pos], it->vhandle);
      it = v.erase(it);
    } else {
      ++it;
    }
  }
}

void ScenarioFleet::install_flow_rules(TenantState& t) {
  FlowView view = initial_flow_view(t.pub.plan);
  for (std::size_t pos = 0; pos < t.pub.chain.size(); ++pos) {
    delete_rules(t, pos, /*flow_only=*/true);
    for (const Rule& r :
         nf_flow_rules(t.pub.chain[pos], t.pub.plan, view, t.pub.out_port)) {
      const hp4::VirtualRule vr = to_virtual_rule(r);
      const std::uint64_t vh = op_add_rule(t.pub.vdevs[pos], vr);
      t.installed[pos].push_back(Installed{vh, vr, true});
    }
  }
}

// --- traffic ------------------------------------------------------------------

std::uint64_t ScenarioFleet::inject_wave(std::size_t packets_per_tenant) {
  std::uint64_t n = 0;
  for (auto& ts : tenants_) {
    for (std::size_t k = 0; k < packets_per_tenant; ++k) {
      eng_->inject(ts.pub.in_port, ts.pub.flow_packet);
      ++n;
    }
  }
  wave_injected_per_tenant_ = packets_per_tenant;
  wave_injected_ += n;
  return n;
}

WaveResult ScenarioFleet::drain_wave() {
  const engine::MergedResult m = eng_->drain();
  WaveResult w;
  w.injected = wave_injected_;
  w.drained = m.packets;
  w.delivered.assign(tenants_.size(), 0);
  for (const auto& pr : m.per_packet) {
    for (const auto& o : pr.outputs) {
      if (o.port >= 2 && o.port % 2 == 0) {
        const std::size_t t = (o.port - 2) / 2;
        if (t < w.delivered.size()) ++w.delivered[t];
      }
    }
  }
  w.drops = m.totals.drops;
  w.parse_errors = m.totals.parse_errors;
  w.recirculations = m.totals.recirculations;
  for (std::size_t i = 0; i < w.delivered.size(); ++i)
    if (w.delivered[i] != wave_injected_per_tenant_) w.all_delivered = false;
  wave_injected_ = 0;
  wave_injected_per_tenant_ = 0;
  return w;
}

// --- live operations ----------------------------------------------------------

std::size_t ScenarioFleet::churn_tenant(std::size_t i, std::size_t ops) {
  TenantState& ts = tenants_.at(i);
  const TenantPlan& p = ts.pub.plan;
  std::size_t issued = 0;
  txn_begin();
  for (std::size_t round = 0; round < ops; ++round) {
    const std::size_t pos = round % ts.pub.chain.size();
    const NfKind k = ts.pub.chain[pos];
    const std::uint32_t f = ts.pub.next_flow++;
    // Stranger addressing: 192.168/16 sources and sub-20000 ports never
    // collide with the canonical flow (10/8 + 172/8 addresses, ports
    // >= 20000), so churn can never change wave delivery.
    const std::string stranger = "192.168." + std::to_string((f >> 8) & 0xFF) +
                                 "." + std::to_string(f & 0xFF);
    const std::uint16_t sport =
        static_cast<std::uint16_t>(1000 + (f % 19000));
    const std::int32_t prio = static_cast<std::int32_t>(100 + (f % 100000));
    std::vector<Rule> add;
    switch (k) {
      case NfKind::kNat:  // allocate a binding: snat + dnat pair
        add.push_back(nat_snat(p.client_ip, sport, p.nat_ip, sport));
        add.push_back(nat_dnat(p.nat_ip, sport, p.client_ip, sport));
        break;
      case NfKind::kBalancer:  // pin a new connection
        add.push_back(lb_conn(stranger, sport, p.backend_ip, p.backend_mac));
        break;
      case NfKind::kAcl:  // block an attacker source
        add.push_back(acl_deny_src(stranger, "255.255.255.255", prio));
        break;
      case NfKind::kLimiter:  // token bucket ran dry for a source
        add.push_back(limiter_drop(stranger, prio));
        break;
      case NfKind::kTagger:  // tag a newly observed flow
        add.push_back(tagger_tag(stranger, static_cast<std::uint16_t>(f)));
        break;
    }
    for (const Rule& r : add) {
      const hp4::VirtualRule vr = to_virtual_rule(r);
      const std::uint64_t vh = op_add_rule(ts.pub.vdevs[pos], vr);
      ts.installed[pos].push_back(Installed{vh, vr, false});
      ++issued;
    }
    // Expire the oldest churn entries past the window.
    auto& v = ts.installed[pos];
    std::size_t churn_count = 0;
    for (const auto& e : v)
      if (!e.flow) ++churn_count;
    while (churn_count > opts_.churn_window) {
      auto it = std::find_if(v.begin(), v.end(),
                             [](const Installed& e) { return !e.flow; });
      op_delete_rule(ts.pub.vdevs[pos], it->vhandle);
      v.erase(it);
      --churn_count;
      ++issued;
    }
  }
  txn_commit();
  return issued;
}

hp4::VdevId ScenarioFleet::hot_swap(std::size_t i) {
  TenantState& ts = tenants_.at(i);
  const std::size_t pos = ts.pub.swaps % ts.pub.chain.size();
  // First catalog kind not currently in the chain (chain_depth < kNfCount
  // guarantees one exists).
  NfKind newk = ts.pub.chain[pos];
  for (NfKind k : nf_catalog()) {
    if (std::find(ts.pub.chain.begin(), ts.pub.chain.end(), k) ==
        ts.pub.chain.end()) {
      newk = k;
      break;
    }
  }

  txn_begin();
  const hp4::VdevId old = ts.pub.vdevs[pos];
  const hp4::VdevId nv =
      op_load(vdev_basename(i, pos, newk) + "#" + std::to_string(++name_salt_),
              nf_program(newk));
  ts.pub.vdevs[pos] = nv;
  ts.pub.chain[pos] = newk;
  ts.installed[pos].clear();  // the old vdev's entries die with unload
  op_chain(ts.pub.vdevs, {ts.pub.in_port, ts.pub.out_port});
  // A different NF at `pos` changes the header transforms every later
  // position sees; recompute the whole chain's flow rules inside the txn.
  install_flow_rules(ts);
  op_unload(old);
  txn_commit();
  ++ts.pub.swaps;
  return nv;
}

ScenarioFleet::SliceSnapshot ScenarioFleet::snapshot_tenant(
    std::size_t i) const {
  const TenantState& ts = tenants_.at(i);
  SliceSnapshot s;
  s.tenant = i;
  s.chain = ts.pub.chain;
  s.rules.resize(ts.installed.size());
  for (std::size_t pos = 0; pos < ts.installed.size(); ++pos)
    for (const Installed& e : ts.installed[pos])
      s.rules[pos].push_back(SnapRule{e.rule, e.flow});
  return s;
}

void ScenarioFleet::restore_tenant(std::size_t i, const SliceSnapshot& snap) {
  TenantState& ts = tenants_.at(i);
  if (snap.tenant != i || snap.chain.size() != ts.pub.chain.size())
    throw ConfigError("fleet: snapshot does not match tenant " +
                      std::to_string(i));
  txn_begin();
  // Swap back any position whose NF kind changed since the snapshot.
  std::vector<hp4::VdevId> to_unload;
  bool rechain = false;
  for (std::size_t pos = 0; pos < ts.pub.chain.size(); ++pos) {
    if (ts.pub.chain[pos] == snap.chain[pos]) continue;
    to_unload.push_back(ts.pub.vdevs[pos]);
    ts.pub.vdevs[pos] = op_load(
        vdev_basename(i, pos, snap.chain[pos]) + "#" +
            std::to_string(++name_salt_),
        nf_program(snap.chain[pos]));
    ts.pub.chain[pos] = snap.chain[pos];
    ts.installed[pos].clear();
    rechain = true;
  }
  if (rechain) op_chain(ts.pub.vdevs, {ts.pub.in_port, ts.pub.out_port});
  // Reset every position's rules to the snapshot image.
  for (std::size_t pos = 0; pos < ts.pub.chain.size(); ++pos) {
    delete_rules(ts, pos, /*flow_only=*/false);
    for (const SnapRule& sr : snap.rules[pos]) {
      const std::uint64_t vh = op_add_rule(ts.pub.vdevs[pos], sr.rule);
      ts.installed[pos].push_back(Installed{vh, sr.rule, sr.flow});
    }
  }
  for (hp4::VdevId id : to_unload) op_unload(id);
  txn_commit();
}

std::size_t ScenarioFleet::installed_rules(std::size_t i,
                                           std::size_t pos) const {
  return tenants_.at(i).installed.at(pos).size();
}

std::string ScenarioFleet::report() const {
  std::size_t entries = 0, swaps = 0;
  for (const auto& ts : tenants_) {
    for (const auto& v : ts.installed) entries += v.size();
    swaps += ts.pub.swaps;
  }
  std::ostringstream os;
  os << "fleet: " << tenants_.size() << " tenants x depth "
     << opts_.chain_depth << ", " << tenants_.size() * opts_.chain_depth
     << " vdevs, " << entries << " installed rules, " << swaps
     << " hot-swaps, engine epoch " << (eng_ ? eng_->epoch() : 0)
     << (store_ ? ", durable @" + store_->dir() : "");
  return os.str();
}

}  // namespace hyper4::scenarios
