#include "scenarios/nf.h"

#include "net/headers.h"
#include "p4/builder.h"
#include "util/error.h"
#include "util/strings.h"

namespace hyper4::scenarios {

using namespace p4;

namespace {

// Shared outer header layout; one deparsed packet reparses in the next NF.
void common_headers(ProgramBuilder& b) {
  b.header_type("ethernet_t",
                {{"dstAddr", 48}, {"srcAddr", 48}, {"etherType", 16}});
  b.header_type("ipv4_t", {{"version", 4},
                           {"ihl", 4},
                           {"diffserv", 8},
                           {"totalLen", 16},
                           {"identification", 16},
                           {"flags", 3},
                           {"fragOffset", 13},
                           {"ttl", 8},
                           {"protocol", 8},
                           {"hdrChecksum", 16},
                           {"srcAddr", 32},
                           {"dstAddr", 32}});
  b.header_type("tcp_t", {{"srcPort", 16},
                          {"dstPort", 16},
                          {"seqNo", 32},
                          {"ackNo", 32},
                          {"dataOffset", 4},
                          {"res", 4},
                          {"flags", 8},
                          {"window", 16},
                          {"checksum", 16},
                          {"urgentPtr", 16}});
  b.header_type("udp_t", {{"srcPort", 16},
                          {"dstPort", 16},
                          {"length_", 16},
                          {"checksum", 16}});
  b.header("ethernet_t", "ethernet");
  b.header("ipv4_t", "ipv4");
  b.header("tcp_t", "tcp");
  b.header("udp_t", "udp");
}

// Rewriting any IPv4 field means the deparser must refresh hdrChecksum —
// and the persona's emulation only handles the standard list/offset.
void ipv4_checksum(ProgramBuilder& b) {
  b.field_list("ipv4_checksum_list",
               {{"ipv4", "version"},
                {"ipv4", "ihl"},
                {"ipv4", "diffserv"},
                {"ipv4", "totalLen"},
                {"ipv4", "identification"},
                {"ipv4", "flags"},
                {"ipv4", "fragOffset"},
                {"ipv4", "ttl"},
                {"ipv4", "protocol"},
                {"ipv4", "srcAddr"},
                {"ipv4", "dstAddr"}});
  b.checksum({"ipv4", "hdrChecksum"}, "ipv4_checksum_list");
}

}  // namespace

// --- programs ---------------------------------------------------------------

Program stateful_nat() {
  ProgramBuilder b("nat");
  common_headers(b);

  // A NAT only fronts IPv4; TCP carries the translated ports.
  b.parser("start")
      .extract("ethernet")
      .select_field("ethernet", "etherType")
      .when(net::kEtherTypeIpv4, "parse_ipv4")
      .otherwise(kParserDrop);
  b.parser("parse_ipv4")
      .extract("ipv4")
      .select_field("ipv4", "protocol")
      .when(net::kIpProtoTcp, "parse_tcp")
      .otherwise(kParserAccept);
  b.parser("parse_tcp").extract("tcp").to_ingress();

  b.action("nop").no_op();
  b.action("_drop").drop();
  b.action("forward", {{"port", kPortWidth}})
      .modify_field({kStandardMetadata, kFieldEgressSpec}, Param(0));
  b.action("snat_rewrite", {{"src_ip", 32}, {"src_port", 16}})
      .modify_field({"ipv4", "srcAddr"}, Param(0))
      .modify_field({"tcp", "srcPort"}, Param(1));
  b.action("dnat_rewrite", {{"dst_ip", 32}, {"dst_port", 16}})
      .modify_field({"ipv4", "dstAddr"}, Param(0))
      .modify_field({"tcp", "dstPort"}, Param(1));

  // Outbound bindings key on the inside source; the validity bit keeps
  // non-TCP traffic on the miss path in both backends.
  b.table("snat")
      .key_valid("tcp")
      .key_exact({"ipv4", "srcAddr"})
      .key_exact({"tcp", "srcPort"})
      .action_ref("snat_rewrite")
      .action_ref("nop")
      .default_action("nop");
  // Inbound: the public (ip, port) of an allocated binding maps back.
  b.table("dnat")
      .key_valid("tcp")
      .key_exact({"ipv4", "dstAddr"})
      .key_exact({"tcp", "dstPort"})
      .action_ref("dnat_rewrite")
      .action_ref("nop")
      .default_action("nop");
  // Routing happens after dnat so inbound packets route to the inside host.
  b.table("nat_fwd")
      .key_exact({"ipv4", "dstAddr"})
      .action_ref("forward")
      .action_ref("_drop")
      .default_action("_drop");

  auto ing = b.ingress();
  ing.apply("snat");
  ing.then_apply("dnat");
  ing.then_apply("nat_fwd");

  ipv4_checksum(b);
  return b.build();
}

Program l4_balancer() {
  ProgramBuilder b("lb");
  common_headers(b);

  b.parser("start")
      .extract("ethernet")
      .select_field("ethernet", "etherType")
      .when(net::kEtherTypeIpv4, "parse_ipv4")
      .otherwise(kParserDrop);
  b.parser("parse_ipv4")
      .extract("ipv4")
      .select_field("ipv4", "protocol")
      .when(net::kIpProtoTcp, "parse_tcp")
      .otherwise(kParserAccept);
  b.parser("parse_tcp").extract("tcp").to_ingress();

  b.action("nop").no_op();
  b.action("_drop").drop();
  b.action("forward", {{"port", kPortWidth}})
      .modify_field({kStandardMetadata, kFieldEgressSpec}, Param(0));
  b.action("to_backend", {{"backend_ip", 32}, {"backend_mac", 48}})
      .modify_field({"ipv4", "dstAddr"}, Param(0))
      .modify_field({"ethernet", "dstAddr"}, Param(1));

  // Established connections are pinned to their backend regardless of the
  // current VIP schedule; a conn hit rewrites dst so vip then misses.
  b.table("conn")
      .key_valid("tcp")
      .key_exact({"ipv4", "srcAddr"})
      .key_exact({"tcp", "srcPort"})
      .action_ref("to_backend")
      .action_ref("nop")
      .default_action("nop");
  b.table("vip")
      .key_valid("tcp")
      .key_exact({"ipv4", "dstAddr"})
      .key_exact({"tcp", "dstPort"})
      .action_ref("to_backend")
      .action_ref("nop")
      .default_action("nop");
  b.table("lb_fwd")
      .key_exact({"ipv4", "dstAddr"})
      .action_ref("forward")
      .action_ref("_drop")
      .default_action("_drop");

  auto ing = b.ingress();
  ing.apply("conn");
  ing.then_apply("vip");
  ing.then_apply("lb_fwd");

  ipv4_checksum(b);
  return b.build();
}

Program acl_firewall() {
  ProgramBuilder b("acl");
  common_headers(b);

  // An ACL box forwards at L2, so non-IPv4 frames pass to the dmac table.
  b.parser("start")
      .extract("ethernet")
      .select_field("ethernet", "etherType")
      .when(net::kEtherTypeIpv4, "parse_ipv4")
      .otherwise(kParserAccept);
  b.parser("parse_ipv4")
      .extract("ipv4")
      .select_field("ipv4", "protocol")
      .when(net::kIpProtoTcp, "parse_tcp")
      .when(net::kIpProtoUdp, "parse_udp")
      .otherwise(kParserAccept);
  b.parser("parse_tcp").extract("tcp").to_ingress();
  b.parser("parse_udp").extract("udp").to_ingress();

  b.action("nop").no_op();
  b.action("_drop").drop();
  b.action("deny").drop();
  b.action("forward", {{"port", kPortWidth}})
      .modify_field({kStandardMetadata, kFieldEgressSpec}, Param(0));

  b.table("acl_fwd")
      .key_exact({"ethernet", "dstAddr"})
      .action_ref("forward")
      .action_ref("_drop")
      .default_action("_drop");
  b.table("acl_ip")
      .key_ternary({"ipv4", "srcAddr"})
      .key_ternary({"ipv4", "dstAddr"})
      .key_ternary({"ipv4", "protocol"})
      .action_ref("deny")
      .action_ref("nop")
      .default_action("nop");
  b.table("acl_l4")
      .key_valid("tcp")
      .key_ternary({"tcp", "dstPort"})
      .key_valid("udp")
      .key_ternary({"udp", "dstPort"})
      .action_ref("deny")
      .action_ref("nop")
      .default_action("nop");

  // deny runs after forward so its egress_spec rewrite (the P4-14 drop
  // encoding) wins.
  auto ing = b.ingress();
  const std::size_t n_fwd = ing.apply("acl_fwd");
  const std::size_t n_if = ing.branch(Expr::valid("ipv4"));
  const std::size_t n_ip = ing.apply("acl_ip");
  const std::size_t n_l4 = ing.apply("acl_l4");
  ing.on_default(n_fwd, n_if);
  ing.on_true(n_if, n_ip);
  ing.on_false(n_if, p4::kEndOfControl);
  ing.on_default(n_ip, n_l4);
  return b.build();
}

Program rate_limiter() {
  ProgramBuilder b("limiter");
  common_headers(b);

  b.parser("start")
      .extract("ethernet")
      .select_field("ethernet", "etherType")
      .when(net::kEtherTypeIpv4, "parse_ipv4")
      .otherwise(kParserAccept);
  b.parser("parse_ipv4").extract("ipv4").to_ingress();

  b.action("nop").no_op();
  b.action("_drop").drop();
  b.action("forward", {{"port", kPortWidth}})
      .modify_field({kStandardMetadata, kFieldEgressSpec}, Param(0));
  b.action("police_drop").drop();
  // Over-burst but under-limit traffic is re-marked, not dropped.
  b.action("police_mark", {{"dscp", 8}})
      .modify_field({"ipv4", "diffserv"}, Param(0));

  b.table("lim_fwd")
      .key_exact({"ethernet", "dstAddr"})
      .action_ref("forward")
      .action_ref("_drop")
      .default_action("_drop");
  // Per-source verdict; the token-bucket arithmetic lives in the fleet
  // controller, which flips entries between the three actions.
  b.table("limit")
      .key_ternary({"ipv4", "srcAddr"})
      .action_ref("police_drop")
      .action_ref("police_mark")
      .action_ref("nop")
      .default_action("nop");

  auto ing = b.ingress();
  const std::size_t n_fwd = ing.apply("lim_fwd");
  const std::size_t n_if = ing.branch(Expr::valid("ipv4"));
  const std::size_t n_lim = ing.apply("limit");
  ing.on_default(n_fwd, n_if);
  ing.on_true(n_if, n_lim);
  ing.on_false(n_if, p4::kEndOfControl);

  ipv4_checksum(b);
  return b.build();
}

Program telemetry_tagger() {
  ProgramBuilder b("tagger");
  common_headers(b);

  b.parser("start")
      .extract("ethernet")
      .select_field("ethernet", "etherType")
      .when(net::kEtherTypeIpv4, "parse_ipv4")
      .otherwise(kParserAccept);
  b.parser("parse_ipv4").extract("ipv4").to_ingress();

  b.action("nop").no_op();
  b.action("_drop").drop();
  b.action("forward", {{"port", kPortWidth}})
      .modify_field({kStandardMetadata, kFieldEgressSpec}, Param(0));
  // Flow id rides in ipv4.identification (no extra header: the persona
  // would need add_header, which is outside its envelope).
  b.action("tag_flow", {{"flow_id", 16}})
      .modify_field({"ipv4", "identification"}, Param(0));
  // Hop mark: diffserv counts traversed taggers, TTL decrements as at a
  // real hop (add 0xff mod 2^8).
  b.action("mark_hop")
      .add_to_field({"ipv4", "diffserv"}, Const(8, 1))
      .add_to_field({"ipv4", "ttl"}, Const(8, 0xff));

  b.table("tag_fwd")
      .key_exact({"ethernet", "dstAddr"})
      .action_ref("forward")
      .action_ref("_drop")
      .default_action("_drop");
  b.table("int_tag")
      .key_exact({"ipv4", "dstAddr"})
      .action_ref("tag_flow")
      .action_ref("nop")
      .default_action("nop");
  b.table("int_hop")
      .key_valid("ipv4")
      .action_ref("mark_hop")
      .action_ref("nop")
      .default_action("nop");

  auto ing = b.ingress();
  const std::size_t n_fwd = ing.apply("tag_fwd");
  const std::size_t n_if = ing.branch(Expr::valid("ipv4"));
  const std::size_t n_tag = ing.apply("int_tag");
  const std::size_t n_hop = ing.apply("int_hop");
  ing.on_default(n_fwd, n_if);
  ing.on_true(n_if, n_tag);
  ing.on_false(n_if, p4::kEndOfControl);
  ing.on_default(n_tag, n_hop);

  ipv4_checksum(b);
  return b.build();
}

// --- catalog ----------------------------------------------------------------

const std::vector<NfKind>& nf_catalog() {
  static const std::vector<NfKind> cat{NfKind::kNat, NfKind::kBalancer,
                                       NfKind::kAcl, NfKind::kLimiter,
                                       NfKind::kTagger};
  return cat;
}

std::string nf_name(NfKind k) {
  switch (k) {
    case NfKind::kNat: return "nat";
    case NfKind::kBalancer: return "lb";
    case NfKind::kAcl: return "acl";
    case NfKind::kLimiter: return "limiter";
    case NfKind::kTagger: return "tagger";
  }
  return "?";
}

p4::Program nf_program(NfKind k) {
  switch (k) {
    case NfKind::kNat: return stateful_nat();
    case NfKind::kBalancer: return l4_balancer();
    case NfKind::kAcl: return acl_firewall();
    case NfKind::kLimiter: return rate_limiter();
    case NfKind::kTagger: return telemetry_tagger();
  }
  throw util::ConfigError("scenarios: bad NfKind");
}

NfKind nf_by_name(const std::string& name) {
  for (NfKind k : nf_catalog())
    if (nf_name(k) == name) return k;
  std::vector<std::string> names;
  for (NfKind k : nf_catalog()) names.push_back(nf_name(k));
  throw util::ConfigError("unknown network function '" + name + "'" +
                          util::did_you_mean(name, names));
}

// --- rule constructors ------------------------------------------------------

Rule nat_snat(const std::string& inside_ip, std::uint16_t inside_port,
              const std::string& nat_ip, std::uint16_t nat_port) {
  return Rule{"snat",
              "snat_rewrite",
              {"1", inside_ip, std::to_string(inside_port)},
              {nat_ip, std::to_string(nat_port)},
              -1};
}

Rule nat_dnat(const std::string& nat_ip, std::uint16_t nat_port,
              const std::string& inside_ip, std::uint16_t inside_port) {
  return Rule{"dnat",
              "dnat_rewrite",
              {"1", nat_ip, std::to_string(nat_port)},
              {inside_ip, std::to_string(inside_port)},
              -1};
}

Rule nat_route(const std::string& dst_ip, std::uint16_t port) {
  return Rule{"nat_fwd", "forward", {dst_ip}, {std::to_string(port)}, -1};
}

Rule lb_conn(const std::string& src_ip, std::uint16_t src_port,
             const std::string& backend_ip, const std::string& backend_mac) {
  return Rule{"conn",
              "to_backend",
              {"1", src_ip, std::to_string(src_port)},
              {backend_ip, backend_mac},
              -1};
}

Rule lb_vip(const std::string& vip, std::uint16_t vip_port,
            const std::string& backend_ip, const std::string& backend_mac) {
  return Rule{"vip",
              "to_backend",
              {"1", vip, std::to_string(vip_port)},
              {backend_ip, backend_mac},
              -1};
}

Rule lb_route(const std::string& dst_ip, std::uint16_t port) {
  return Rule{"lb_fwd", "forward", {dst_ip}, {std::to_string(port)}, -1};
}

Rule acl_forward(const std::string& dst_mac, std::uint16_t port) {
  return Rule{"acl_fwd", "forward", {dst_mac}, {std::to_string(port)}, -1};
}

Rule acl_deny_src(const std::string& src_ip, const std::string& src_mask,
                  std::int32_t priority) {
  return Rule{"acl_ip",
              "deny",
              {src_ip + "&&&" + src_mask, "0&&&0", "0&&&0"},
              {},
              priority};
}

Rule acl_deny_tcp_dport(std::uint16_t dport, std::int32_t priority) {
  return Rule{"acl_l4",
              "deny",
              {"1", std::to_string(dport) + "&&&0xffff", "0", "0&&&0"},
              {},
              priority};
}

Rule limiter_forward(const std::string& dst_mac, std::uint16_t port) {
  return Rule{"lim_fwd", "forward", {dst_mac}, {std::to_string(port)}, -1};
}

Rule limiter_permit(const std::string& src_ip, std::int32_t priority) {
  return Rule{
      "limit", "nop", {src_ip + "&&&255.255.255.255"}, {}, priority};
}

Rule limiter_mark(const std::string& src_ip, std::uint8_t dscp,
                  std::int32_t priority) {
  return Rule{"limit",
              "police_mark",
              {src_ip + "&&&255.255.255.255"},
              {std::to_string(dscp)},
              priority};
}

Rule limiter_drop(const std::string& src_ip, std::int32_t priority) {
  return Rule{
      "limit", "police_drop", {src_ip + "&&&255.255.255.255"}, {}, priority};
}

Rule tagger_forward(const std::string& dst_mac, std::uint16_t port) {
  return Rule{"tag_fwd", "forward", {dst_mac}, {std::to_string(port)}, -1};
}

Rule tagger_tag(const std::string& dst_ip, std::uint16_t flow_id) {
  return Rule{"int_tag", "tag_flow", {dst_ip}, {std::to_string(flow_id)}, -1};
}

Rule tagger_hop() { return Rule{"int_hop", "mark_hop", {"1"}, {}, -1}; }

// --- canonical tenant flow ---------------------------------------------------

TenantPlan make_tenant_plan(std::uint32_t tenant) {
  TenantPlan t;
  t.id = tenant;
  const std::uint32_t hi = (tenant >> 8) & 0xFF, lo = tenant & 0xFF;
  auto mac = [&](std::uint8_t tail) {
    char buf[18];
    std::snprintf(buf, sizeof buf, "02:%02x:%02x:%02x:00:%02x",
                  (tenant >> 16) & 0xFF, hi, lo, tail);
    return std::string(buf);
  };
  auto ip = [&](std::uint8_t net, std::uint8_t tail) {
    return std::to_string(net) + "." + std::to_string(hi) + "." +
           std::to_string(lo) + "." + std::to_string(tail);
  };
  t.client_mac = mac(0x01);
  t.server_mac = mac(0x02);
  t.backend_mac = mac(0x03);
  t.client_ip = ip(10, 1);
  t.vip = ip(10, 2);
  t.backend_ip = ip(10, 3);
  t.nat_ip = ip(172, 4);
  t.flow_src_port = static_cast<std::uint16_t>(40000 + (tenant % 20000));
  t.vip_port = 80;
  t.nat_port = static_cast<std::uint16_t>(20000 + (tenant % 10000));
  return t;
}

FlowView initial_flow_view(const TenantPlan& t) {
  FlowView v;
  v.dst_mac = t.server_mac;
  v.src_mac = t.client_mac;
  v.src_ip = t.client_ip;
  v.dst_ip = t.vip;
  v.src_port = t.flow_src_port;
  v.dst_port = t.vip_port;
  return v;
}

std::vector<Rule> nf_flow_rules(NfKind k, const TenantPlan& t, FlowView& view,
                                std::uint16_t egress_port) {
  std::vector<Rule> rules;
  switch (k) {
    case NfKind::kNat:
      rules.push_back(nat_snat(view.src_ip, view.src_port, t.nat_ip,
                               t.nat_port));
      rules.push_back(nat_dnat(t.nat_ip, t.nat_port, view.src_ip,
                               view.src_port));
      view.src_ip = t.nat_ip;
      view.src_port = t.nat_port;
      rules.push_back(nat_route(view.dst_ip, egress_port));
      break;
    case NfKind::kBalancer:
      rules.push_back(lb_conn(view.src_ip, view.src_port, t.backend_ip,
                              t.backend_mac));
      rules.push_back(lb_vip(view.dst_ip, view.dst_port, t.backend_ip,
                             t.backend_mac));
      view.dst_ip = t.backend_ip;
      view.dst_mac = t.backend_mac;
      rules.push_back(lb_route(view.dst_ip, egress_port));
      break;
    case NfKind::kAcl:
      rules.push_back(acl_forward(view.dst_mac, egress_port));
      // Denies a real deployment would carry; neither matches the flow.
      rules.push_back(acl_deny_src("192.168.0.0", "255.255.0.0", 10));
      rules.push_back(acl_deny_tcp_dport(23, 11));
      break;
    case NfKind::kLimiter:
      rules.push_back(limiter_forward(view.dst_mac, egress_port));
      rules.push_back(limiter_permit(view.src_ip, 10));
      break;
    case NfKind::kTagger:
      rules.push_back(tagger_forward(view.dst_mac, egress_port));
      rules.push_back(
          tagger_tag(view.dst_ip, static_cast<std::uint16_t>(t.id & 0xFFFF)));
      rules.push_back(tagger_hop());
      break;
  }
  return rules;
}

net::Packet tenant_flow_packet(const TenantPlan& t, std::size_t payload) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(t.client_mac);
  eth.dst = net::mac_from_string(t.server_mac);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string(t.client_ip);
  ip.dst = net::ipv4_from_string(t.vip);
  net::TcpHeader tcp;
  tcp.src_port = t.flow_src_port;
  tcp.dst_port = t.vip_port;
  return net::make_ipv4_tcp(eth, ip, tcp, payload);
}

}  // namespace hyper4::scenarios
