// The multi-tenant scenario fleet (ROADMAP item 3): hundreds of tenants,
// each owning a chain of production NFs (nf.h) composed over virtual links,
// all hosted by ONE persona switch and driven live — traffic through the
// concurrent engine while the control plane churns tables, hot-swaps a
// tenant's NF transactionally, and snapshots/restores tenant slices.
//
// Invariant the fleet asserts the virtualization layer against: every
// tenant's canonical flow is delivered on its egress port on every wave,
// regardless of what live operations ran in between — churn entries never
// match the flow, hot-swaps recompute the chain's flow rules inside the
// same transaction (one engine epoch), and restores are transactional too.
//
// The fleet runs over a plain hp4::Controller or, with
// FleetOptions::durable_dir set, a state::DurableController — every
// management op then flows through the WAL, and hot-swap/restore use real
// transactions (journal commit + single-epoch engine propagation), which is
// what the soak tests crash and recover.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "hp4/controller.h"
#include "scenarios/nf.h"
#include "state/store.h"

namespace hyper4::scenarios {

struct FleetOptions {
  std::size_t tenants = 8;
  // NFs per tenant chain, 1..4 (4 distinct kinds leaves a spare kind for
  // hot-swap; the catalog has 5).
  std::size_t chain_depth = 2;
  std::size_t engine_workers = 4;
  // Pin engine workers to cores (EngineOptions::pin_workers) — wall-clock
  // scaling runs on machines with cores to spare; harmless elsewhere.
  bool pin_workers = false;
  // Route packets through the VM bytecode tier on every engine worker.
  bool vm_path = false;
  std::uint64_t seed = 1;
  // Non-empty: host the fleet on a DurableController rooted here.
  std::string durable_dir;
  state::StoreOptions store;
  hp4::PersonaConfig persona;
  // Entries a tenant's churn window retains before deleting the oldest.
  std::size_t churn_window = 64;
};

// Per-wave traffic accounting.
struct WaveResult {
  std::uint64_t injected = 0;
  std::uint64_t drained = 0;
  // Canonical-flow packets seen on each tenant's egress port.
  std::vector<std::uint64_t> delivered;
  std::uint64_t drops = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t recirculations = 0;
  // True when every tenant's canonical flow was fully delivered.
  bool all_delivered = true;
};

class ScenarioFleet {
 public:
  explicit ScenarioFleet(FleetOptions opts);
  ~ScenarioFleet();

  ScenarioFleet(const ScenarioFleet&) = delete;
  ScenarioFleet& operator=(const ScenarioFleet&) = delete;

  struct Tenant {
    TenantPlan plan;
    std::vector<NfKind> chain;       // composition order, front first
    std::vector<hp4::VdevId> vdevs;  // same order
    std::uint16_t in_port = 0, out_port = 0;
    net::Packet flow_packet;  // canonical client→VIP TCP segment
    std::uint64_t swaps = 0;
    std::uint32_t next_flow = 1;  // churn allocation counter
  };

  const FleetOptions& options() const { return opts_; }
  std::size_t tenants() const { return tenants_.size(); }
  const Tenant& tenant(std::size_t i) const;

  hp4::Controller& controller() { return *ctl_; }
  // nullptr when the fleet is not durable.
  state::DurableController* store() { return store_.get(); }
  engine::TrafficEngine& engine() { return *eng_; }

  // --- traffic -------------------------------------------------------------
  // Enqueue `packets_per_tenant` copies of every tenant's canonical flow
  // packet; returns the number injected. Safe to interleave with the live
  // operations below — that is the point.
  std::uint64_t inject_wave(std::size_t packets_per_tenant);
  // Block until the engine is drained and account deliveries per tenant.
  WaveResult drain_wave();

  // --- live operations ------------------------------------------------------
  // `ops` rounds of realistic control churn on tenant `i`: allocate a NAT
  // binding / pin an LB connection / install an ACL deny / flip a limiter
  // verdict / tag a flow, deleting the oldest entries past the churn
  // window. None of the entries matches the canonical flow. Returns the
  // number of table operations issued.
  std::size_t churn_tenant(std::size_t i, std::size_t ops);

  // Replace one NF of tenant `i`'s chain with a catalog kind not currently
  // in the chain: load the new program, rewire the chain, recompute every
  // chain position's flow rules, unload the old vdev — all in ONE
  // transaction (single journal record when durable, single engine epoch).
  // Returns the new vdev id.
  hp4::VdevId hot_swap(std::size_t i);

  // Value snapshot of tenant `i`'s slice: chain kinds plus every installed
  // rule, in order.
  struct SnapRule {
    hp4::VirtualRule rule;
    bool flow = false;  // canonical-flow rule (vs churn entry)
  };
  struct SliceSnapshot {
    std::size_t tenant = 0;
    std::vector<NfKind> chain;
    std::vector<std::vector<SnapRule>> rules;  // per chain position
  };
  SliceSnapshot snapshot_tenant(std::size_t i) const;
  // Transactionally restore the slice: swap back any position whose kind
  // changed since the snapshot, then reset every position's rules to the
  // snapshot image. Other tenants' state is untouched (the S4 regression).
  void restore_tenant(std::size_t i, const SliceSnapshot& snap);

  // Per-vdev installed-rule count (bookkeeping view, for tests).
  std::size_t installed_rules(std::size_t i, std::size_t pos) const;

  // One-line fleet summary (tenants, vdevs, entries, epochs).
  std::string report() const;

 private:
  struct Installed {
    std::uint64_t vhandle = 0;
    hp4::VirtualRule rule;
    bool flow = false;  // canonical-flow rule (vs churn entry)
  };
  struct TenantState {
    Tenant pub;
    std::vector<std::vector<Installed>> installed;  // per chain position
  };

  // Op router: through the durable store when present, else the controller.
  hp4::VdevId op_load(const std::string& name, const p4::Program& prog);
  void op_unload(hp4::VdevId id);
  void op_chain(const std::vector<hp4::VdevId>& devices,
                const std::vector<std::uint16_t>& ports);
  std::uint64_t op_add_rule(hp4::VdevId id, const hp4::VirtualRule& rule);
  void op_delete_rule(hp4::VdevId id, std::uint64_t vhandle);
  void txn_begin();
  void txn_commit();

  void setup_tenant(std::size_t i);
  // Recompute and (re)install the canonical-flow rules for every position
  // of tenant `i`'s chain, deleting stale flow rules first. Caller wraps in
  // a txn when atomicity matters.
  void install_flow_rules(TenantState& t);
  void delete_rules(TenantState& t, std::size_t pos, bool flow_only);
  std::string vdev_basename(std::size_t tenant, std::size_t pos,
                            NfKind k) const;

  FleetOptions opts_;
  std::unique_ptr<state::DurableController> store_;
  std::unique_ptr<hp4::Controller> owned_ctl_;  // when not durable
  hp4::Controller* ctl_ = nullptr;
  std::unique_ptr<engine::TrafficEngine> eng_;
  std::vector<TenantState> tenants_;
  std::uint64_t name_salt_ = 0;  // uniquifies reloaded vdev names
  std::uint64_t wave_injected_ = 0;           // since last drain
  std::size_t wave_injected_per_tenant_ = 0;  // last inject_wave argument
};

// Convert an apps/scenarios Rule to the DPMU's VirtualRule.
hp4::VirtualRule to_virtual_rule(const Rule& r);

}  // namespace hyper4::scenarios
