// The hyper4d wire protocol: length-prefixed frames over a unix-domain
// stream socket (DESIGN.md "Embeddable service surface").
//
// Framing (both directions): a 4-byte little-endian payload length,
// followed by that many payload bytes. Frames larger than kMaxFrame are a
// protocol error and close the connection.
//
// Request payload: one command line — "cmd arg1 arg2 ..." — optionally
// followed by '\n' and a free-form body (P4 source for load/hot-swap,
// "port hexbytes" lines for inject, a hex image for restore).
//
// Response payload: status line "ok[ head fields]" or "err <code> <message>"
// (code is the negative H4_ERR_* value of the failing ABI call), optionally
// followed by '\n' and a body (metrics JSON, drained packets, reports).
//
// This header is a C++ convenience for the daemon and its test harnesses;
// it is NOT part of the stable C ABI and is not installed.
#pragma once

#include <cstdint>
#include <string>

namespace hyper4::abi {

inline constexpr std::size_t kMaxFrame = 64u << 20;  // 64 MiB

// Blocking frame I/O on a connected stream socket. write_frame returns
// false on a closed/failed peer; read_frame returns false on clean EOF and
// throws util::Error on a malformed length or a short read mid-frame.
bool write_frame(int fd, const std::string& payload);
bool read_frame(int fd, std::string& payload);

// Split a request/response payload into its first line and the body after
// the first '\n' (empty when none).
void split_payload(const std::string& payload, std::string& head,
                   std::string& body);

// Hex codec for packet bytes on the wire (lowercase, two digits per byte).
std::string to_hex(const std::uint8_t* data, std::size_t len);
std::string from_hex(const std::string& hex);  // throws util::Error

// A blocking client for the daemon. Connects on construction (retrying
// `retries` times, `retry_ms` apart, so a just-spawned daemon has time to
// bind). Closes the socket on destruction.
class DaemonClient {
 public:
  DaemonClient(const std::string& socket_path, int retries = 100,
               int retry_ms = 50);
  ~DaemonClient();

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  struct Response {
    bool ok = false;
    int code = 0;       // H4_ERR_* on err responses
    std::string head;   // status line past "ok "/the error message
    std::string body;
  };

  // Send "line[\n body]", await the response frame. Throws util::Error on
  // a transport failure (daemon died mid-request).
  Response request(const std::string& line, const std::string& body = "");

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace hyper4::abi
