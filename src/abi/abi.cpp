// Implementation of the stable C ABI (include/hyper4/hyper4.h).
//
// This is a thin shim: every h4_* call validates its handle against a
// process-wide live-instance registry (so stale/double-destroyed handles
// fail with H4_ERR_HANDLE instead of corrupting memory), translates C
// arguments into the C++ subsystem calls (hp4::Controller /
// state::DurableController / engine::TrafficEngine / vm fast path), and
// maps the util::Error hierarchy onto the negative error codes. No
// internal type crosses the header boundary.
//
// Allocation discipline: h4_inject_batch reuses a persistent staging
// vector whose net::Packet buffers absorb caller bytes via assign()
// (capacity-reusing), so at steady state the ABI inject path performs
// exactly the allocations of the native inject_batch path — zero
// (tests/abi_overhead_test.cpp gates this).
#include "hyper4/hyper4.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "hp4/controller.h"
#include "hp4/p4_emit.h"
#include "p4/frontend.h"
#include "state/checkpoint.h"
#include "state/digest.h"
#include "state/store.h"
#include "util/error.h"
#include "vm/vm.h"

namespace {

namespace hp4 = hyper4::hp4;
namespace engine = hyper4::engine;
namespace state = hyper4::state;
namespace p4 = hyper4::p4;
namespace util = hyper4::util;

// Per-vdev configuration made through this ABI — what a hot swap carries
// over to the replacement device (attached ports and ingress bindings;
// rules and chains are the caller's to re-establish).
struct VdevInfo {
  std::string base_name;  // caller-given name, without hot-swap salt
  std::vector<std::uint16_t> ports;
  std::set<std::int32_t> bound;  // -1 = all-ports binding
};

}  // namespace

struct h4_instance {
  // Exactly one of plain/durable is set.
  std::unique_ptr<hp4::Controller> plain;
  std::unique_ptr<state::DurableController> durable;
  std::unique_ptr<engine::TrafficEngine> eng;
  hp4::PersonaConfig cfg;
  bool collect_results = true;

  std::map<h4_vdev, VdevInfo> vdevs;
  // Target P4 source per vdev (plain mode; durable tracks its own — this
  // is what snapshots persist so restore can recompile).
  std::map<hp4::VdevId, std::string> sources;
  std::uint64_t name_salt = 0;

  std::string last_error;

  // inject staging: reused across calls, buffers keep their capacity.
  std::vector<engine::InjectItem> stage;
  // Drained-but-not-taken outputs (collect_results only).
  std::vector<std::pair<std::uint16_t, std::vector<std::uint8_t>>> pending;
  std::size_t pending_bytes = 0;

  hp4::Controller& ctl() { return durable ? durable->controller() : *plain; }
  const std::map<hp4::VdevId, std::string>& source_map() const {
    return durable ? durable->vdev_sources() : sources;
  }
};

namespace {

std::mutex g_mu;
std::set<h4_instance*>& live() {
  static std::set<h4_instance*> s;
  return s;
}

bool is_live(h4_instance* inst) {
  std::lock_guard<std::mutex> lk(g_mu);
  return inst != nullptr && live().count(inst) > 0;
}

int fail(h4_instance* inst, int code, const std::string& msg) {
  if (inst != nullptr) inst->last_error = msg;
  return code;
}

// Map a thrown util::Error (or anything else) onto an ABI error code.
int fail_exception(h4_instance* inst) {
  try {
    throw;
  } catch (const util::ParseError& e) {
    return fail(inst, H4_ERR_PARSE, e.what());
  } catch (const util::IsolationError& e) {
    return fail(inst, H4_ERR_ISOLATION, e.what());
  } catch (const util::CommandError& e) {
    return fail(inst, H4_ERR_COMMAND, e.what());
  } catch (const util::ConfigError& e) {
    return fail(inst, H4_ERR_CONFIG, e.what());
  } catch (const util::Error& e) {
    return fail(inst, H4_ERR_STATE, e.what());
  } catch (const std::exception& e) {
    return fail(inst, H4_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(inst, H4_ERR_INTERNAL, "unknown error");
  }
}

// Caller-owned string buffer protocol: *required includes the NUL.
int copy_out_str(h4_instance* inst, const std::string& s, char* buf,
                 size_t cap, size_t* required) {
  if (required == nullptr || (buf == nullptr && cap > 0))
    return fail(inst, H4_ERR_ARG, "null buffer/required pointer");
  *required = s.size() + 1;
  if (cap < s.size() + 1)
    return fail(inst, H4_ERR_NOSPACE, "buffer too small");
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  return H4_OK;
}

// Binary variant: *required is the exact byte count, no NUL.
int copy_out_bytes(h4_instance* inst, const std::string& s, void* buf,
                   size_t cap, size_t* required) {
  if (required == nullptr || (buf == nullptr && cap > 0))
    return fail(inst, H4_ERR_ARG, "null buffer/required pointer");
  *required = s.size();
  if (cap < s.size()) return fail(inst, H4_ERR_NOSPACE, "buffer too small");
  std::memcpy(buf, s.data(), s.size());
  return H4_OK;
}

int check_vdev(h4_instance* inst, h4_vdev vdev) {
  if (vdev == 0 || inst->vdevs.count(vdev) == 0)
    return fail(inst, H4_ERR_HANDLE,
                "unknown or stale vdev id " + std::to_string(vdev));
  return H4_OK;
}

// Load `source` as `name` through whichever controller flavor is active;
// records bookkeeping. Throws util::Error on failure.
h4_vdev do_load(h4_instance* inst, const std::string& name,
                const std::string& source, const std::string& base_name) {
  h4_vdev id = 0;
  if (inst->durable) {
    id = inst->durable->load_source(name, source);
  } else {
    const p4::Program prog = p4::parse_p4(source, name);
    id = inst->plain->load(name, prog);
    // Persist the re-emitted source (what a durable store would journal),
    // so a restore recompiles the identical text.
    inst->sources[id] = hp4::emit_p4(prog);
  }
  inst->vdevs[id] = VdevInfo{base_name, {}, {}};
  return id;
}

void do_unload(h4_instance* inst, h4_vdev vdev) {
  if (inst->durable) {
    inst->durable->unload(vdev);
  } else {
    inst->plain->unload(vdev);
    inst->sources.erase(vdev);
  }
  inst->vdevs.erase(vdev);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

extern "C" {

int h4_options_init(h4_options* opts) {
  if (opts == nullptr) return H4_ERR_ARG;
  *opts = h4_options{};
  opts->workers = 1;
  opts->collect_results = 1;
  return H4_OK;
}

int h4_version(int32_t* major, int32_t* minor, int32_t* patch) {
  if (major != nullptr) *major = H4_VERSION_MAJOR;
  if (minor != nullptr) *minor = H4_VERSION_MINOR;
  if (patch != nullptr) *patch = H4_VERSION_PATCH;
  return H4_OK;
}

const char* h4_err_str(int32_t err) {
  switch (err) {
    case H4_OK:
      return "H4_OK: success";
    case H4_ERR_ARG:
      return "H4_ERR_ARG: null pointer or out-of-range argument";
    case H4_ERR_HANDLE:
      return "H4_ERR_HANDLE: null, stale or foreign handle";
    case H4_ERR_PARSE:
      return "H4_ERR_PARSE: P4-14 source failed to parse or compile";
    case H4_ERR_CONFIG:
      return "H4_ERR_CONFIG: operation invalid for this configuration";
    case H4_ERR_COMMAND:
      return "H4_ERR_COMMAND: runtime table/rule operation failed";
    case H4_ERR_ISOLATION:
      return "H4_ERR_ISOLATION: rejected by the DPMU (authorization/quota)";
    case H4_ERR_NOSPACE:
      return "H4_ERR_NOSPACE: caller buffer too small (see *required)";
    case H4_ERR_STATE:
      return "H4_ERR_STATE: durable store, journal or image failure";
    case H4_ERR_INTERNAL:
      return "H4_ERR_INTERNAL: unexpected internal failure";
    default:
      return "unknown hyper4 error code";
  }
}

int h4_open(const h4_options* opts, h4_instance** out) {
  if (opts == nullptr || out == nullptr) return H4_ERR_ARG;
  *out = nullptr;
  auto inst = std::make_unique<h4_instance>();
  try {
    inst->cfg = hp4::PersonaConfig{};
    if (opts->persona_stages != 0) inst->cfg.num_stages = opts->persona_stages;
    if (opts->durable_dir != nullptr && opts->durable_dir[0] != '\0') {
      inst->durable = std::make_unique<state::DurableController>(
          opts->durable_dir, inst->cfg);
    } else {
      inst->plain = std::make_unique<hp4::Controller>(inst->cfg);
    }
    engine::EngineOptions eo;
    eo.workers = opts->workers == 0 ? 1 : opts->workers;
    if (opts->queue_capacity != 0) eo.queue_capacity = opts->queue_capacity;
    if (opts->batch_size != 0) eo.batch_size = opts->batch_size;
    eo.collect_results = opts->collect_results != 0;
    eo.pin_workers = opts->pin_workers != 0;
    eo.use_mutex_queue = opts->use_mutex_queue != 0;
    inst->collect_results = eo.collect_results;
    inst->eng = std::make_unique<engine::TrafficEngine>(
        inst->ctl().dataplane().program(), eo);
    inst->ctl().attach_engine(inst->eng.get());
    if (opts->vm_fast_path != 0)
      inst->eng->set_packet_path(hyper4::vm::engine_fast_path(inst->cfg));
    // A recovered durable store already carries vdevs: rebuild the
    // bookkeeping from the DPMU (bindings are not re-tracked; hot-swaps of
    // recovered vdevs re-bind explicitly).
    for (hp4::VdevId id : inst->ctl().dpmu().vdev_ids()) {
      VdevInfo info;
      info.base_name = inst->ctl().dpmu().vdev_name(id);
      if (auto pos = info.base_name.find('#'); pos != std::string::npos)
        info.base_name.resize(pos);
      for (const auto& [phys, vport] : inst->ctl().dpmu().ports(id).phys_to_vport)
        info.ports.push_back(phys);
      inst->vdevs[id] = std::move(info);
    }
  } catch (...) {
    return fail_exception(nullptr);
  }
  {
    std::lock_guard<std::mutex> lk(g_mu);
    live().insert(inst.get());
  }
  *out = inst.release();
  return H4_OK;
}

int h4_close(h4_instance* inst) {
  {
    std::lock_guard<std::mutex> lk(g_mu);
    if (inst == nullptr || live().erase(inst) == 0) return H4_ERR_HANDLE;
  }
  try {
    inst->ctl().attach_engine(nullptr);
  } catch (...) {
    // fall through to delete — never leak on teardown
  }
  delete inst;
  return H4_OK;
}

int h4_last_error(h4_instance* inst, char* buf, size_t cap,
                  size_t* required) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  return copy_out_str(nullptr, inst->last_error, buf, cap, required);
}

int h4_compile(h4_instance* inst, const char* p4_source, char* buf,
               size_t cap, size_t* required) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  if (p4_source == nullptr)
    return fail(inst, H4_ERR_ARG, "null p4_source");
  try {
    const p4::Program prog = p4::parse_p4(p4_source, "h4_compile");
    const hp4::Hp4Artifact art = inst->ctl().compile(prog);
    std::ostringstream os;
    os << "{\"name\":\"" << json_escape(art.program_name)
       << "\",\"tables\":" << art.tables.size()
       << ",\"commands\":" << art.static_commands.size() << "}";
    return copy_out_str(inst, os.str(), buf, cap, required);
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_vdev_load(h4_instance* inst, const char* name, const char* p4_source,
                 h4_vdev* out) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  if (name == nullptr || name[0] == '\0' || p4_source == nullptr ||
      out == nullptr)
    return fail(inst, H4_ERR_ARG, "null name/p4_source/out");
  for (const auto& [id, info] : inst->vdevs)
    if (info.base_name == name)
      return fail(inst, H4_ERR_CONFIG,
                  "vdev name already loaded: " + std::string(name));
  try {
    *out = do_load(inst, name, p4_source, name);
    return H4_OK;
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_vdev_unload(h4_instance* inst, h4_vdev vdev) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  if (int rc = check_vdev(inst, vdev); rc != H4_OK) return rc;
  try {
    do_unload(inst, vdev);
    return H4_OK;
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_vdev_attach_ports(h4_instance* inst, h4_vdev vdev,
                         const uint16_t* ports, size_t nports) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  if (int rc = check_vdev(inst, vdev); rc != H4_OK) return rc;
  if (nports == 0 || ports == nullptr)
    return fail(inst, H4_ERR_ARG, "empty port list");
  try {
    const std::vector<std::uint16_t> pv(ports, ports + nports);
    if (inst->durable) {
      inst->durable->attach_ports(vdev, pv);
    } else {
      inst->plain->attach_ports(vdev, pv);
    }
    VdevInfo& info = inst->vdevs.at(vdev);
    for (std::uint16_t p : pv)
      if (std::find(info.ports.begin(), info.ports.end(), p) ==
          info.ports.end())
        info.ports.push_back(p);
    return H4_OK;
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_vdev_bind(h4_instance* inst, h4_vdev vdev, int32_t port) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  if (int rc = check_vdev(inst, vdev); rc != H4_OK) return rc;
  if (port < -1 || port > 0xffff)
    return fail(inst, H4_ERR_ARG, "port out of range");
  try {
    const std::optional<std::uint16_t> p =
        port < 0 ? std::nullopt
                 : std::optional<std::uint16_t>(
                       static_cast<std::uint16_t>(port));
    if (inst->durable) {
      inst->durable->bind(vdev, p);
    } else {
      inst->plain->bind(vdev, p);
    }
    // A port has one binding: moving it to this vdev removes it from any
    // other vdev's bookkeeping.
    for (auto& [id, info] : inst->vdevs) info.bound.erase(port);
    inst->vdevs.at(vdev).bound.insert(port);
    return H4_OK;
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_chain(h4_instance* inst, const h4_vdev* devs, size_t ndevs,
             const uint16_t* ports, size_t nports) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  if (devs == nullptr || ndevs == 0 || ports == nullptr || nports == 0)
    return fail(inst, H4_ERR_ARG, "empty device/port list");
  for (size_t i = 0; i < ndevs; ++i)
    if (int rc = check_vdev(inst, devs[i]); rc != H4_OK) return rc;
  try {
    const std::vector<hp4::VdevId> dv(devs, devs + ndevs);
    const std::vector<std::uint16_t> pv(ports, ports + nports);
    if (inst->durable) {
      inst->durable->chain(dv, pv);
    } else {
      inst->plain->chain(dv, pv);
    }
    return H4_OK;
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_rule_add(h4_instance* inst, h4_vdev vdev, const char* table,
                const char* action, const char* const* keys, size_t nkeys,
                const char* const* args, size_t nargs, int32_t priority,
                uint64_t* handle_out) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  if (int rc = check_vdev(inst, vdev); rc != H4_OK) return rc;
  if (table == nullptr || action == nullptr || handle_out == nullptr ||
      (nkeys > 0 && keys == nullptr) || (nargs > 0 && args == nullptr))
    return fail(inst, H4_ERR_ARG, "null table/action/keys/args/handle_out");
  try {
    hp4::VirtualRule rule;
    rule.table = table;
    rule.action = action;
    for (size_t i = 0; i < nkeys; ++i) {
      if (keys[i] == nullptr)
        return fail(inst, H4_ERR_ARG, "null key string");
      rule.keys.emplace_back(keys[i]);
    }
    for (size_t i = 0; i < nargs; ++i) {
      if (args[i] == nullptr)
        return fail(inst, H4_ERR_ARG, "null arg string");
      rule.args.emplace_back(args[i]);
    }
    rule.priority = priority;
    *handle_out = inst->durable ? inst->durable->add_rule(vdev, rule)
                                : inst->plain->add_rule(vdev, rule);
    return H4_OK;
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_rule_delete(h4_instance* inst, h4_vdev vdev, uint64_t handle) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  if (int rc = check_vdev(inst, vdev); rc != H4_OK) return rc;
  try {
    if (inst->durable) {
      inst->durable->delete_rule(vdev, handle);
    } else {
      inst->plain->delete_rule(vdev, handle);
    }
    return H4_OK;
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_vdev_hot_swap(h4_instance* inst, h4_vdev vdev, const char* p4_source,
                     h4_vdev* out) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  if (int rc = check_vdev(inst, vdev); rc != H4_OK) return rc;
  if (p4_source == nullptr || out == nullptr)
    return fail(inst, H4_ERR_ARG, "null p4_source/out");
  const VdevInfo info = inst->vdevs.at(vdev);  // copy: survives the swap
  const std::string new_name =
      info.base_name + "#" + std::to_string(++inst->name_salt);
  const bool durable = inst->durable != nullptr;
  if (durable) {
    inst->durable->txn_begin();
  } else {
    inst->plain->suspend_engine_refresh();
  }
  h4_vdev nid = 0;
  try {
    nid = do_load(inst, new_name, p4_source, info.base_name);
    if (!info.ports.empty()) {
      if (durable) {
        inst->durable->attach_ports(nid, info.ports);
      } else {
        inst->plain->attach_ports(nid, info.ports);
      }
      inst->vdevs.at(nid).ports = info.ports;
    }
    for (std::int32_t port : info.bound) {
      const std::optional<std::uint16_t> p =
          port < 0 ? std::nullopt
                   : std::optional<std::uint16_t>(
                         static_cast<std::uint16_t>(port));
      if (durable) {
        inst->durable->bind(nid, p);
      } else {
        inst->plain->bind(nid, p);
      }
    }
    inst->vdevs.at(nid).bound = info.bound;
    do_unload(inst, vdev);
    if (durable) {
      inst->durable->txn_commit();
    } else {
      inst->plain->resume_engine_refresh();
    }
    *out = nid;
    return H4_OK;
  } catch (...) {
    // Roll back: the durable txn restores the pre-swap image; the plain
    // path may have partially applied — unload the half-loaded device.
    if (durable) {
      try {
        inst->durable->txn_abort();
      } catch (...) {
      }
      // txn_abort restored controller state; drop bookkeeping of anything
      // loaded inside the transaction and resurrect the old device's.
      if (nid != 0) inst->vdevs.erase(nid);
      if (inst->ctl().dpmu().has_vdev(vdev)) inst->vdevs[vdev] = info;
    } else {
      if (nid != 0 && inst->ctl().dpmu().has_vdev(nid)) {
        try {
          do_unload(inst, nid);
        } catch (...) {
          inst->vdevs.erase(nid);
        }
      }
      inst->plain->resume_engine_refresh();
    }
    return fail_exception(inst);
  }
}

int h4_snapshot(h4_instance* inst, void* buf, size_t cap, size_t* required) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  try {
    const std::uint64_t lsn = inst->durable ? inst->durable->last_lsn() : 0;
    const std::string body =
        state::serialize_state(inst->ctl(), inst->source_map(), lsn);
    return copy_out_bytes(inst, body, buf, cap, required);
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_restore(h4_instance* inst, const void* buf, size_t len) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  if (buf == nullptr || len == 0)
    return fail(inst, H4_ERR_ARG, "null/empty image");
  if (inst->durable)
    return fail(inst, H4_ERR_CONFIG,
                "h4_restore requires an in-memory instance; a durable store "
                "recovers from its checkpoint + journal");
  try {
    const std::string body(static_cast<const char*>(buf), len);
    const state::CheckpointImage img = state::apply_state(body, *inst->plain);
    inst->sources = img.vdev_sources;
    // Rebuild vdev bookkeeping from the restored DPMU; ABI-made bindings
    // are not re-tracked (hot-swaps after a restore re-bind explicitly).
    inst->vdevs.clear();
    for (hp4::VdevId id : inst->ctl().dpmu().vdev_ids()) {
      VdevInfo info;
      info.base_name = inst->ctl().dpmu().vdev_name(id);
      if (auto pos = info.base_name.find('#'); pos != std::string::npos)
        info.base_name.resize(pos);
      for (const auto& [phys, vport] :
           inst->ctl().dpmu().ports(id).phys_to_vport)
        info.ports.push_back(phys);
      inst->vdevs[id] = std::move(info);
    }
    return H4_OK;
  } catch (const util::Error& e) {
    // Any image failure — format, version, embedded source — is a state
    // error here; H4_ERR_PARSE is reserved for caller-supplied P4 source.
    return fail(inst, H4_ERR_STATE, e.what());
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_state_digest(h4_instance* inst, uint64_t* out) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  if (out == nullptr) return fail(inst, H4_ERR_ARG, "null out");
  try {
    *out = state::state_digest(inst->ctl());
    return H4_OK;
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_checkpoint(h4_instance* inst, uint64_t* lsn_out) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  if (lsn_out == nullptr) return fail(inst, H4_ERR_ARG, "null lsn_out");
  if (!inst->durable)
    return fail(inst, H4_ERR_CONFIG,
                "h4_checkpoint requires a durable instance");
  try {
    *lsn_out = inst->durable->checkpoint();
    return H4_OK;
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_recovery_report(h4_instance* inst, char* buf, size_t cap,
                       size_t* required) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  if (!inst->durable)
    return fail(inst, H4_ERR_CONFIG,
                "h4_recovery_report requires a durable instance");
  try {
    std::string rep = inst->durable->recovery().str();
    rep += "state digest: " + state::digest_hex(inst->durable->digest()) +
           "\n";
    return copy_out_str(inst, rep, buf, cap, required);
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_inject_batch(h4_instance* inst, const h4_packet* pkts, size_t n) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  if (n == 0) return H4_OK;
  if (pkts == nullptr) return fail(inst, H4_ERR_ARG, "null packet array");
  try {
    if (inst->stage.size() < n) inst->stage.resize(n);  // warm-up growth
    for (size_t i = 0; i < n; ++i) {
      if (pkts[i].data == nullptr && pkts[i].len > 0)
        return fail(inst, H4_ERR_ARG, "null packet data");
      inst->stage[i].port = pkts[i].port;
      inst->stage[i].packet.assign(
          std::span<const std::uint8_t>(pkts[i].data, pkts[i].len));
    }
    inst->eng->inject_batch(
        std::span<const engine::InjectItem>(inst->stage.data(), n));
    return H4_OK;
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_drain(h4_instance* inst, h4_drain_stats* stats) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  try {
    engine::MergedResult merged = inst->eng->drain();
    if (stats != nullptr) {
      *stats = h4_drain_stats{};
      stats->packets = merged.packets;
      stats->outputs = merged.totals.outputs.size();
      stats->drops = merged.totals.drops;
      stats->parse_errors = merged.totals.parse_errors;
      stats->resubmits = merged.totals.resubmits;
      stats->recirculations = merged.totals.recirculations;
      stats->epoch = inst->eng->epoch();
    }
    if (inst->collect_results) {
      for (const auto& out : merged.totals.outputs) {
        const auto span = out.packet.bytes();
        inst->pending.emplace_back(
            out.port, std::vector<std::uint8_t>(span.begin(), span.end()));
        inst->pending_bytes += span.size();
      }
    }
    return H4_OK;
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_drain_outputs(h4_instance* inst, h4_output* outs, size_t outs_cap,
                     uint8_t* bytes, size_t bytes_cap, size_t* nout,
                     size_t* nbytes) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  if (nout == nullptr || nbytes == nullptr)
    return fail(inst, H4_ERR_ARG, "null nout/nbytes");
  if (!inst->collect_results)
    return fail(inst, H4_ERR_CONFIG,
                "instance opened with collect_results = 0");
  *nout = inst->pending.size();
  *nbytes = inst->pending_bytes;
  if (outs_cap < inst->pending.size() || bytes_cap < inst->pending_bytes)
    return fail(inst, H4_ERR_NOSPACE, "output buffers too small");
  if ((outs == nullptr && inst->pending.size() > 0) ||
      (bytes == nullptr && inst->pending_bytes > 0))
    return fail(inst, H4_ERR_ARG, "null output buffers");
  std::size_t off = 0;
  for (std::size_t i = 0; i < inst->pending.size(); ++i) {
    const auto& [port, data] = inst->pending[i];
    outs[i].port = port;
    outs[i].offset = static_cast<uint32_t>(off);
    outs[i].len = static_cast<uint32_t>(data.size());
    if (!data.empty()) std::memcpy(bytes + off, data.data(), data.size());
    off += data.size();
  }
  inst->pending.clear();
  inst->pending_bytes = 0;
  return H4_OK;
}

int h4_metrics_json(h4_instance* inst, char* buf, size_t cap,
                    size_t* required) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  try {
    return copy_out_str(inst, inst->eng->metrics().to_json(), buf, cap,
                        required);
  } catch (...) {
    return fail_exception(inst);
  }
}

int h4_diagnostics_json(h4_instance* inst, char* buf, size_t cap,
                        size_t* required) {
  if (!is_live(inst)) return H4_ERR_HANDLE;
  try {
    std::ostringstream os;
    os << "{\"workers\":" << inst->eng->workers()
       << ",\"epoch\":" << inst->eng->epoch() << ",\"packet_path\":{";
    bool first = true;
    for (const auto& [k, v] : inst->eng->packet_path_diagnostics()) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(k) << "\":" << v;
    }
    os << "}}";
    return copy_out_str(inst, os.str(), buf, cap, required);
  } catch (...) {
    return fail_exception(inst);
  }
}

}  // extern "C"
