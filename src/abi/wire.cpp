#include "abi/wire.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/error.h"

namespace hyper4::abi {

namespace {

bool write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// 1 = ok, 0 = clean EOF before any byte, -1 = error/short read.
int read_all(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return got == 0 ? 0 : -1;
    got += static_cast<std::size_t>(n);
  }
  return 1;
}

}  // namespace

bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrame)
    throw util::ConfigError("wire frame exceeds 64 MiB");
  std::uint8_t hdr[4];
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  hdr[0] = static_cast<std::uint8_t>(n);
  hdr[1] = static_cast<std::uint8_t>(n >> 8);
  hdr[2] = static_cast<std::uint8_t>(n >> 16);
  hdr[3] = static_cast<std::uint8_t>(n >> 24);
  return write_all(fd, hdr, 4) &&
         (payload.empty() || write_all(fd, payload.data(), payload.size()));
}

bool read_frame(int fd, std::string& payload) {
  std::uint8_t hdr[4];
  const int rc = read_all(fd, hdr, 4);
  if (rc == 0) return false;  // clean EOF between frames
  if (rc < 0) throw util::Error("wire: short read on frame header");
  const std::uint32_t n = static_cast<std::uint32_t>(hdr[0]) |
                          (static_cast<std::uint32_t>(hdr[1]) << 8) |
                          (static_cast<std::uint32_t>(hdr[2]) << 16) |
                          (static_cast<std::uint32_t>(hdr[3]) << 24);
  if (n > kMaxFrame) throw util::Error("wire: frame exceeds 64 MiB");
  payload.resize(n);
  if (n > 0 && read_all(fd, payload.data(), n) != 1)
    throw util::Error("wire: short read on frame payload");
  return true;
}

void split_payload(const std::string& payload, std::string& head,
                   std::string& body) {
  const auto nl = payload.find('\n');
  if (nl == std::string::npos) {
    head = payload;
    body.clear();
  } else {
    head = payload.substr(0, nl);
    body = payload.substr(nl + 1);
  }
}

std::string to_hex(const std::uint8_t* data, std::size_t len) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
  }
  return out;
}

std::string from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) throw util::Error("odd-length hex string");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw util::Error(std::string("bad hex digit '") + c + "'");
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2)
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) |
                                    nibble(hex[i + 1])));
  return out;
}

DaemonClient::DaemonClient(const std::string& socket_path, int retries,
                           int retry_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    throw util::ConfigError("socket path too long: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  for (int attempt = 0;; ++attempt) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw util::Error("socket(): " + std::string(strerror(errno)));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0)
      return;
    ::close(fd_);
    fd_ = -1;
    if (attempt >= retries)
      throw util::Error("cannot connect to " + socket_path + ": " +
                        strerror(errno));
    std::this_thread::sleep_for(std::chrono::milliseconds(retry_ms));
  }
}

DaemonClient::~DaemonClient() {
  if (fd_ >= 0) ::close(fd_);
}

DaemonClient::Response DaemonClient::request(const std::string& line,
                                             const std::string& body) {
  std::string payload = line;
  if (!body.empty()) {
    payload.push_back('\n');
    payload += body;
  }
  if (!write_frame(fd_, payload))
    throw util::Error("daemon connection lost on send");
  std::string resp;
  if (!read_frame(fd_, resp))
    throw util::Error("daemon connection closed before response");
  Response r;
  std::string head;
  split_payload(resp, head, r.body);
  if (head.rfind("ok", 0) == 0 && (head.size() == 2 || head[2] == ' ')) {
    r.ok = true;
    r.head = head.size() > 3 ? head.substr(3) : "";
  } else if (head.rfind("err ", 0) == 0) {
    r.ok = false;
    const auto sp = head.find(' ', 4);
    r.code = std::stoi(head.substr(4, sp - 4));
    r.head = sp == std::string::npos ? "" : head.substr(sp + 1);
  } else {
    throw util::Error("malformed daemon response: " + head);
  }
  return r;
}

}  // namespace hyper4::abi
