// The durable control plane: a hp4::Controller whose every management
// operation is write-ahead journaled, checkpointable, and recoverable
// after a crash at any byte (see DESIGN.md "Durability & transactions").
//
// Operation protocol (WAL): each op is encoded to a self-contained binary
// body carrying the ids the DPMU is *expected* to assign (peeked before
// apply), appended to the journal, and only then applied. The controller
// is a deterministic state machine, so replaying the journal over the
// checkpoint image reproduces the exact pre-crash state — including ops
// that failed live, which deterministically fail again during replay (the
// DPMU rolls back partial installs, so a failed op is a no-op both times).
//
// Transactions: between txn_begin() and txn_commit(), ops apply
// immediately (so later ops in the batch see earlier ones) but are
// journaled as ONE kTxn record at commit, and engine propagation is
// suspended — replicas observe the whole batch as a single epoch bump.
// Any op failure (or txn_abort()) restores the in-memory snapshot staged
// at txn_begin. A crash before the commit record lands recovers to the
// pre-transaction state: all-or-nothing falls out of record atomicity.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hp4/controller.h"
#include "state/journal.h"

namespace hyper4::state {

struct StoreOptions {
  std::size_t segment_bytes = 256 * 1024;  // journal rotation threshold
  bool fsync = false;        // real fsync() at fsync points
  std::size_t digest_every = 1;  // embed a pre-apply digest every N op
                                 // records (0 = never); recovery verifies
  std::size_t fsync_every = 16;  // fsync-point marker every N ops (0 = never)
};

// What crash recovery found and did. `str()` renders the operator summary
// the hyper4_state CLI prints.
struct RecoveryReport {
  bool checkpoint_loaded = false;
  std::string checkpoint_file;        // empty when none
  std::uint64_t checkpoint_lsn = 0;
  std::size_t replayed = 0;           // op/txn records applied
  std::size_t replay_failures = 0;    // records that failed live too
  std::size_t skipped_duplicates = 0;
  std::uint64_t dropped_bytes = 0;    // untrusted journal suffix
  std::size_t dropped_segments = 0;
  std::size_t digests_checked = 0;
  bool digest_ok = true;              // false stops replay at the mismatch
  std::vector<std::string> warnings;
  std::string str() const;
};

// Outcome of applying one replicated leader record on a follower.
enum class ReplicaApply : std::uint8_t {
  kApplied = 0,    // journaled locally and dispatched
  kDuplicate = 1,  // LSN already present (retransmit); skipped, not re-applied
  kGap = 2,        // LSN beyond the follower's tail: records are missing —
                   // the caller must request a resend, never apply past a hole
};

// A controller plus its durability machinery, rooted at a directory that
// holds journal segments and checkpoint images. Constructing one either
// initializes a fresh store or recovers the existing one (checkpoint +
// journal tail); recovery() reports which happened.
class DurableController {
 public:
  DurableController(std::string dir, hp4::PersonaConfig cfg = {},
                    StoreOptions opts = {});
  ~DurableController();

  DurableController(const DurableController&) = delete;
  DurableController& operator=(const DurableController&) = delete;

  hp4::Controller& controller() { return *controller_; }
  const hp4::Controller& controller() const { return *controller_; }
  const RecoveryReport& recovery() const { return recovery_; }
  const std::string& dir() const { return dir_; }
  std::uint64_t last_lsn() const { return journal_->last_lsn(); }
  std::uint64_t digest() const;

  // --- journaled operations (mirror hp4::Controller's surface) -----------
  hp4::VdevId load(const std::string& name, const p4::Program& target,
                   const std::string& owner = "admin",
                   std::size_t quota = 1024);
  // Load from P4 source text. This is the canonical path: load() emits the
  // program back to source first, so the live store and a replaying store
  // compile the identical text.
  hp4::VdevId load_source(const std::string& name, const std::string& source,
                          const std::string& owner = "admin",
                          std::size_t quota = 1024);
  void unload(hp4::VdevId id);
  void attach_ports(hp4::VdevId id, const std::vector<std::uint16_t>& ports);
  void chain(const std::vector<hp4::VdevId>& devices,
             const std::vector<std::uint16_t>& ports);
  void bind(hp4::VdevId id, std::optional<std::uint16_t> port = std::nullopt);
  std::uint64_t add_rule(hp4::VdevId id, const hp4::VirtualRule& rule,
                         const std::string& requester = "admin");
  void delete_rule(hp4::VdevId id, std::uint64_t vhandle,
                   const std::string& requester = "admin");
  void authorize(hp4::VdevId id, const std::string& requester);
  void register_write(const std::string& reg, std::size_t index,
                      const util::BitVec& v);
  void define_config(
      const std::string& name,
      std::vector<std::pair<std::optional<std::uint16_t>, hp4::VdevId>>
          bindings);
  void activate_config(const std::string& name);

  // --- replication (src/fabric) -------------------------------------------
  // Apply one leader journal record on this store acting as a follower:
  // the record is persisted verbatim into the local journal (so follower
  // recovery replays the exact leader history — checkpoint + journal tail,
  // the single-node path) and then dispatched. kOp records tolerate
  // deterministic re-failure exactly like replay; kTxn bodies apply
  // all-or-nothing under one engine epoch; kFsyncPoint is journaled only.
  // When the record embeds a pre-apply digest it is verified against this
  // store's state first — a mismatch means the follower diverged and
  // throws ConfigError before anything is journaled.
  ReplicaApply apply_replicated(const Record& rec);

  // --- transactions -------------------------------------------------------
  void txn_begin();
  // Journal the batch as one record and sync the engine once. Returns the
  // commit LSN.
  std::uint64_t txn_commit();
  void txn_abort();
  bool in_txn() const { return in_txn_; }

  // --- checkpoint ---------------------------------------------------------
  // Serialize full state to checkpoint-<lsn>.hp4c (written atomically via
  // tmp+rename), truncate the journal up to that LSN, and prune all but
  // the two newest images. Returns the covered LSN. Rejected inside a
  // transaction (ConfigError).
  std::uint64_t checkpoint();

  // Force an fsync point now.
  void sync();

  // The target P4 source of every loaded vdev (what checkpoints persist).
  const std::map<hp4::VdevId, std::string>& vdev_sources() const {
    return sources_;
  }

  // Checkpoint images in `dir`, newest (highest LSN) first.
  static std::vector<std::string> checkpoint_files(const std::string& dir);

 private:
  // Decode one op body and apply it to the controller; verifies the
  // expected-id fields (ConfigError "replay determinism violation" on
  // mismatch). Returns the assigned id for load/add_rule, else 0.
  std::uint64_t dispatch(const std::string& body);
  // Journal-then-apply for one encoded op (or buffer it when in a txn).
  std::uint64_t run_op(const std::string& body);
  void recover(const hp4::PersonaConfig& cfg);
  void replay(const Record& rec);

  std::string dir_;
  StoreOptions opts_;
  std::unique_ptr<hp4::Controller> controller_;
  std::unique_ptr<Journal> journal_;
  std::map<hp4::VdevId, std::string> sources_;
  RecoveryReport recovery_;

  std::size_t ops_since_digest_ = 0;
  std::size_t ops_since_fsync_ = 0;

  bool in_txn_ = false;
  std::string txn_snapshot_;            // serialize_state image at begin
  std::uint64_t txn_digest_ = 0;        // pre-txn digest (commit record)
  std::vector<std::string> txn_ops_;    // encoded bodies, apply order
};

}  // namespace hyper4::state
