// The write-ahead journal (see DESIGN.md "Durability & transactions").
//
// A journal is a directory of segment files `journal-<first-lsn>.hp4j`,
// each a 16-byte header followed by length-prefixed, CRC-guarded records:
//
//   segment header:  "HP4J" u8 version  u8[3] pad  u64 first_lsn
//   record:          u32 payload_len  u32 crc32(payload)  payload
//   payload:         u64 lsn  u8 type  u8 has_digest  u64 digest  body
//
// Appends go to the newest segment; when it exceeds `segment_bytes` the
// next append opens a fresh segment (rotation). Every append flushes to
// the OS; `mark_fsync_point()` additionally appends a kFsyncPoint record
// and fsync()s the file, so everything up to (and including) the marker is
// known durable.
//
// scan() is the recovery reader: it walks segments in LSN order, verifies
// every frame, and stops at the first invalid one — a torn length/payload
// (crash mid-append) or a CRC mismatch (corruption). Everything after the
// first invalid frame is untrusted and reported as dropped, even if later
// bytes happen to frame correctly: a journal is a prefix-trusted medium.
// Records whose LSN is not strictly increasing (e.g. a duplicated segment
// file) are skipped and counted, never re-applied.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace hyper4::state {

enum class RecordType : std::uint8_t {
  kOp = 1,         // one journaled control-plane operation
  kTxn = 2,        // a committed transaction: body is the op batch
  kFsyncPoint = 3, // durability marker (empty body)
};

struct Record {
  std::uint64_t lsn = 0;
  RecordType type = RecordType::kOp;
  // Pre-apply state digest: the digest of the store's state *before* this
  // record's operation is applied (0 / false when digests are disabled).
  // Recovery verifies it against the state it has rebuilt so far.
  bool has_digest = false;
  std::uint64_t digest = 0;
  std::string body;
};

struct JournalOptions {
  std::size_t segment_bytes = 256 * 1024;  // rotate past this size
  bool fsync = false;  // real fsync() at fsync points (tests leave it off)
};

// Result of a recovery scan. `records` is the trusted prefix.
struct ScanResult {
  std::vector<Record> records;
  std::uint64_t last_lsn = 0;       // highest trusted LSN (0 when none)
  std::uint64_t dropped_bytes = 0;  // untrusted bytes after the first
                                    // invalid frame (all segments)
  std::size_t dropped_segments = 0; // whole segments after a corrupt one
  std::size_t skipped_duplicates = 0;  // non-increasing-LSN records skipped
  std::vector<std::string> warnings;   // human-readable drop descriptions
};

class Journal {
 public:
  // Opens `dir` (created if missing) for appending. Scans existing
  // segments to find the tail and TRUNCATES any torn/corrupt suffix in
  // place, so the on-disk journal always ends at the last valid record.
  // `next_lsn` seeds LSN assignment when the journal is empty (a store
  // recovering from a checkpoint passes checkpoint_lsn + 1).
  Journal(std::string dir, JournalOptions opts, std::uint64_t next_lsn = 1);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Append one record; assigns and returns its LSN. The frame is written
  // and flushed (fflush) before return — write-ahead means the caller
  // applies the operation only after this returns.
  std::uint64_t append(RecordType type, const std::string& body,
                       bool has_digest = false, std::uint64_t digest = 0);

  // Append a kFsyncPoint marker and fsync the segment (when opts.fsync).
  std::uint64_t mark_fsync_point();

  // Append a record that already carries its LSN — replication: a follower
  // persists the leader's records verbatim so its own journal stays a
  // byte-equivalent replay log. The LSN must be exactly next_lsn();
  // followers detect duplicates and gaps *before* calling this (see
  // DurableController::apply_replicated).
  void append_record(const Record& rec);

  std::uint64_t next_lsn() const { return next_lsn_; }
  std::uint64_t last_lsn() const { return next_lsn_ - 1; }
  const std::string& dir() const { return dir_; }

  // Delete whole segments all of whose records have LSN <= `lsn`
  // (checkpoint truncation). The active tail segment is never deleted;
  // instead the journal rotates first so the boundary is clean.
  void truncate_up_to(std::uint64_t lsn);

  // Recovery read of `dir` (see class comment). Records with LSN <=
  // `min_lsn` (already covered by a checkpoint) are dropped silently.
  // Static: recovery scans before a Journal is opened for append.
  static ScanResult scan(const std::string& dir, std::uint64_t min_lsn = 0);

  // Segment files in LSN order (absolute paths) — for journal-dump and the
  // crash fuzzer's kill-offset selection.
  static std::vector<std::string> segment_files(const std::string& dir);

  // Streaming reader over the trusted record prefix of a journal directory,
  // yielding records with LSN > from_lsn in order — the replication-channel
  // primitive: a leader ships tail_from(follower_acked_lsn) without
  // materializing the whole journal the way scan() does. Same trust rules
  // as scan(): the stream ends at the first torn/corrupt frame
  // (truncated() tells a caller the tail was cut short, so a shipping
  // leader can distinguish "caught up" from "journal ends dirty"), and
  // non-increasing LSNs beyond from_lsn are skipped and counted.
  class TailReader {
   public:
    // Yield the next record into `rec`; false at end of the trusted prefix.
    bool next(Record* rec);
    bool truncated() const { return truncated_; }
    std::size_t skipped_duplicates() const { return skipped_duplicates_; }

   private:
    friend class Journal;
    TailReader(const std::string& dir, std::uint64_t from_lsn);
    bool advance_segment();

    std::vector<std::string> segments_;
    std::size_t seg_ = 0;
    std::string bytes_;
    std::size_t pos_ = 0;
    std::uint64_t from_lsn_ = 0;
    std::uint64_t prev_lsn_ = 0;
    std::size_t skipped_duplicates_ = 0;
    bool truncated_ = false;
    bool done_ = false;
  };
  static TailReader tail_from(const std::string& dir, std::uint64_t from_lsn);

 private:
  void open_segment(std::uint64_t first_lsn);
  void close_segment();

  std::string dir_;
  JournalOptions opts_;
  std::uint64_t next_lsn_ = 1;
  std::FILE* f_ = nullptr;
  std::string current_path_;
  std::size_t current_bytes_ = 0;
};

}  // namespace hyper4::state
