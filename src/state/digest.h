// Control-plane state digest.
//
// A 64-bit FNV-1a hash over a canonical serialization of everything the
// control plane determines: the DPMU's management state (vdevs, bindings,
// id counters), the controller's snapshot/config state, every persona
// table's entries (handles, keys, priorities, actions, arguments, default
// actions — but NOT hit counters, which traffic mutates), and register
// cells. Two controllers with equal digests install byte-identical match
// state, so they process any packet identically.
//
// The journal embeds the pre-apply digest in records (every
// StoreOptions::digest_every ops): recovery recomputes the digest as it
// replays and any divergence — a non-deterministic op, a corrupted record
// body that still passed CRC — is caught at the exact LSN it appears.
#pragma once

#include <cstdint>
#include <string>

namespace hyper4::hp4 {
class Controller;
}

namespace hyper4::state {

std::uint64_t state_digest(const hp4::Controller& ctl);

// 16 hex digits, for reports and the hyper4_state CLI.
std::string digest_hex(std::uint64_t d);

}  // namespace hyper4::state
