#include "state/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "hp4/controller.h"
#include "p4/frontend.h"
#include "state/wire.h"
#include "util/error.h"

namespace hyper4::state {

namespace fs = std::filesystem;
using util::ConfigError;

namespace {

constexpr char kMagic[4] = {'H', 'P', '4', 'C'};
constexpr std::uint8_t kVersion = 1;

void write_config(Writer& w, const hp4::PersonaConfig& c) {
  w.u64(c.num_stages);
  w.u64(c.max_primitives);
  w.u64(c.parse_default_bytes);
  w.u64(c.parse_step_bytes);
  w.u64(c.parse_max_bytes);
  w.u64(c.extracted_bits);
  w.u64(c.meta_bits);
  w.u32(static_cast<std::uint32_t>(c.ipv4_csum_offsets.size()));
  for (auto o : c.ipv4_csum_offsets) w.u64(o);
  w.u64(c.writeback_step_bytes);
  w.b(c.ingress_meter);
  w.u64(c.meter_rate_pps);
  w.u64(c.meter_burst);
  w.u64(c.meter_cells);
}

hp4::PersonaConfig read_config(Reader& r) {
  hp4::PersonaConfig c;
  c.num_stages = r.u64();
  c.max_primitives = r.u64();
  c.parse_default_bytes = r.u64();
  c.parse_step_bytes = r.u64();
  c.parse_max_bytes = r.u64();
  c.extracted_bits = r.u64();
  c.meta_bits = r.u64();
  c.ipv4_csum_offsets.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) c.ipv4_csum_offsets.push_back(r.u64());
  c.writeback_step_bytes = r.u64();
  c.ingress_meter = r.b();
  c.meter_rate_pps = r.u64();
  c.meter_burst = r.u64();
  c.meter_cells = r.u64();
  return c;
}

bool config_equal(const hp4::PersonaConfig& a, const hp4::PersonaConfig& b) {
  return a.num_stages == b.num_stages && a.max_primitives == b.max_primitives &&
         a.parse_default_bytes == b.parse_default_bytes &&
         a.parse_step_bytes == b.parse_step_bytes &&
         a.parse_max_bytes == b.parse_max_bytes &&
         a.extracted_bits == b.extracted_bits && a.meta_bits == b.meta_bits &&
         a.ipv4_csum_offsets == b.ipv4_csum_offsets &&
         a.writeback_step_bytes == b.writeback_step_bytes &&
         a.ingress_meter == b.ingress_meter &&
         a.meter_rate_pps == b.meter_rate_pps &&
         a.meter_burst == b.meter_burst && a.meter_cells == b.meter_cells;
}

void write_key_param(Writer& w, const bm::KeyParam& k) {
  w.bitvec(k.value);
  w.b(k.mask.has_value());
  if (k.mask) w.bitvec(*k.mask);
  w.b(k.prefix_len.has_value());
  if (k.prefix_len) w.u64(*k.prefix_len);
  w.b(k.range_hi.has_value());
  if (k.range_hi) w.bitvec(*k.range_hi);
}

bm::KeyParam read_key_param(Reader& r) {
  bm::KeyParam k;
  k.value = r.bitvec();
  if (r.b()) k.mask = r.bitvec();
  if (r.b()) k.prefix_len = r.u64();
  if (r.b()) k.range_hi = r.bitvec();
  return k;
}

void write_dpmu(Writer& w, const hp4::Dpmu::ExportedState& s) {
  w.u32(static_cast<std::uint32_t>(s.vdevs.size()));
  for (const auto& v : s.vdevs) {
    w.u64(v.id);
    w.str(v.name);
    w.str(v.owner);
    w.u32(static_cast<std::uint32_t>(v.authorized.size()));
    for (const auto& a : v.authorized) w.str(a);
    w.u64(v.quota);
    w.u32(static_cast<std::uint32_t>(v.vport_to_phys.size()));
    for (const auto& [vp, ph] : v.vport_to_phys) {
      w.u64(vp);
      w.u16(ph);
    }
    w.u32(static_cast<std::uint32_t>(v.phys_to_vport.size()));
    for (const auto& [ph, vp] : v.phys_to_vport) {
      w.u16(ph);
      w.u64(vp);
    }
    w.u32(static_cast<std::uint32_t>(v.vnet_handles.size()));
    for (const auto& [vp, h] : v.vnet_handles) {
      w.u64(vp);
      w.u64(h);
    }
    w.u32(static_cast<std::uint32_t>(v.mcast_groups.size()));
    for (auto g : v.mcast_groups) w.u16(g);
    w.u32(static_cast<std::uint32_t>(v.entries.size()));
    for (const auto& [vh, list] : v.entries) {
      w.u64(vh);
      w.u32(static_cast<std::uint32_t>(list.size()));
      for (const auto& [table, handle] : list) {
        w.str(table);
        w.u64(handle);
      }
    }
    w.u32(static_cast<std::uint32_t>(v.static_handles.size()));
    for (const auto& [table, handle] : v.static_handles) {
      w.str(table);
      w.u64(handle);
    }
    w.u64(v.next_vhandle);
  }
  w.u32(static_cast<std::uint32_t>(s.bindings.size()));
  for (const auto& b : s.bindings) {
    w.u64(b.id);
    w.u64(b.handle);
    w.b(b.has_port);
    w.u16(b.port);
    w.u64(b.vdev);
  }
  w.u64(s.next_id);
  w.u64(s.next_vport);
  w.u16(s.next_mcast_group);
  w.u64(s.next_match_id);
  w.u64(s.next_binding);
}

hp4::Dpmu::ExportedState read_dpmu(Reader& r) {
  hp4::Dpmu::ExportedState s;
  const std::uint32_t nv = r.u32();
  for (std::uint32_t i = 0; i < nv; ++i) {
    hp4::Dpmu::ExportedVdev v;
    v.id = r.u64();
    v.name = r.str();
    v.owner = r.str();
    const std::uint32_t na = r.u32();
    for (std::uint32_t j = 0; j < na; ++j) v.authorized.push_back(r.str());
    v.quota = r.u64();
    const std::uint32_t nvp = r.u32();
    for (std::uint32_t j = 0; j < nvp; ++j) {
      const std::uint64_t vp = r.u64();
      v.vport_to_phys[vp] = r.u16();
    }
    const std::uint32_t npv = r.u32();
    for (std::uint32_t j = 0; j < npv; ++j) {
      const std::uint16_t ph = r.u16();
      v.phys_to_vport[ph] = r.u64();
    }
    const std::uint32_t nvh = r.u32();
    for (std::uint32_t j = 0; j < nvh; ++j) {
      const std::uint64_t vp = r.u64();
      v.vnet_handles[vp] = r.u64();
    }
    const std::uint32_t nmg = r.u32();
    for (std::uint32_t j = 0; j < nmg; ++j) v.mcast_groups.push_back(r.u16());
    const std::uint32_t ne = r.u32();
    for (std::uint32_t j = 0; j < ne; ++j) {
      const std::uint64_t vh = r.u64();
      const std::uint32_t nl = r.u32();
      std::vector<std::pair<std::string, std::uint64_t>> list;
      for (std::uint32_t k = 0; k < nl; ++k) {
        std::string table = r.str();
        const std::uint64_t handle = r.u64();
        list.emplace_back(std::move(table), handle);
      }
      v.entries[vh] = std::move(list);
    }
    const std::uint32_t ns = r.u32();
    for (std::uint32_t j = 0; j < ns; ++j) {
      std::string table = r.str();
      const std::uint64_t handle = r.u64();
      v.static_handles.emplace_back(std::move(table), handle);
    }
    v.next_vhandle = r.u64();
    s.vdevs.push_back(std::move(v));
  }
  const std::uint32_t nb = r.u32();
  for (std::uint32_t i = 0; i < nb; ++i) {
    hp4::Dpmu::ExportedBinding b;
    b.id = r.u64();
    b.handle = r.u64();
    b.has_port = r.b();
    b.port = r.u16();
    b.vdev = r.u64();
    s.bindings.push_back(b);
  }
  s.next_id = r.u64();
  s.next_vport = r.u64();
  s.next_mcast_group = r.u16();
  s.next_match_id = r.u64();
  s.next_binding = r.u64();
  return s;
}

}  // namespace

std::string serialize_state(const hp4::Controller& ctl,
                            const std::map<hp4::VdevId, std::string>& sources,
                            std::uint64_t lsn) {
  Writer w;
  w.u64(lsn);
  write_config(w, ctl.generator().config());

  w.u32(static_cast<std::uint32_t>(sources.size()));
  for (const auto& [id, src] : sources) {
    w.u64(id);
    w.str(src);
  }

  write_dpmu(w, ctl.dpmu().export_state());

  const hp4::Controller::ExportedState cs = ctl.export_state();
  w.u32(static_cast<std::uint32_t>(cs.live_bindings.size()));
  for (const auto& [key, handle] : cs.live_bindings) {
    w.i32(key);
    w.u64(handle);
  }
  w.u32(static_cast<std::uint32_t>(cs.configs.size()));
  for (const auto& [name, bindings] : cs.configs) {
    w.str(name);
    w.u32(static_cast<std::uint32_t>(bindings.size()));
    for (const auto& [key, vdev] : bindings) {
      w.i32(key);
      w.u64(vdev);
    }
  }
  w.str(cs.active_config);
  w.u64(cs.last_activation_ops);

  // Dataplane runtime state.
  const bm::Switch& sw = ctl.dataplane();
  std::vector<std::string> tables = sw.table_names();
  std::sort(tables.begin(), tables.end());
  w.u32(static_cast<std::uint32_t>(tables.size()));
  for (const auto& name : tables) {
    const bm::RuntimeTable::ExportedState ts = sw.table(name).export_state();
    w.str(name);
    w.u64(ts.next_handle);
    w.b(ts.default_action.has_value());
    if (ts.default_action) w.u64(*ts.default_action);
    w.u32(static_cast<std::uint32_t>(ts.default_args.size()));
    for (const auto& a : ts.default_args) w.bitvec(a);
    w.u64(ts.epoch);
    w.u64(ts.applied);
    w.u64(ts.hits);
    w.u32(static_cast<std::uint32_t>(ts.entries.size()));
    for (const auto& e : ts.entries) {
      w.u64(e.handle);
      w.u32(static_cast<std::uint32_t>(e.key.size()));
      for (const auto& k : e.key) write_key_param(w, k);
      w.i32(e.priority);
      w.u64(e.action);
      w.u32(static_cast<std::uint32_t>(e.action_args.size()));
      for (const auto& a : e.action_args) w.bitvec(a);
      w.u64(e.hits);
      w.u64(e.hit_bytes);
    }
  }

  w.u32(static_cast<std::uint32_t>(sw.register_arrays().size()));
  for (const auto& reg : sw.register_arrays()) {
    w.str(reg.name());
    w.u32(static_cast<std::uint32_t>(reg.size()));
    for (std::size_t i = 0; i < reg.size(); ++i) w.bitvec(reg.read(i));
  }
  w.u32(static_cast<std::uint32_t>(sw.counter_arrays().size()));
  for (const auto& c : sw.counter_arrays()) {
    w.str(c.name());
    w.u32(static_cast<std::uint32_t>(c.size()));
    for (std::size_t i = 0; i < c.size(); ++i) {
      w.u64(c.packets(i));
      w.u64(c.bytes(i));
    }
  }
  w.u32(static_cast<std::uint32_t>(sw.meter_arrays().size()));
  for (const auto& m : sw.meter_arrays()) {
    w.str(m.name());
    const auto buckets = m.export_buckets();
    w.u32(static_cast<std::uint32_t>(buckets.size()));
    for (const auto& b : buckets) {
      w.f64(b.tokens);
      w.f64(b.last);
      w.b(b.primed);
    }
  }

  std::vector<std::pair<std::uint32_t, std::uint16_t>> mirrors(
      sw.mirror_sessions().begin(), sw.mirror_sessions().end());
  std::sort(mirrors.begin(), mirrors.end());
  w.u32(static_cast<std::uint32_t>(mirrors.size()));
  for (const auto& [session, port] : mirrors) {
    w.u32(session);
    w.u16(port);
  }
  std::vector<std::pair<std::uint16_t,
                        std::vector<std::pair<std::uint16_t, std::uint16_t>>>>
      groups(sw.mc_groups().begin(), sw.mc_groups().end());
  std::sort(groups.begin(), groups.end());
  w.u32(static_cast<std::uint32_t>(groups.size()));
  for (const auto& [group, members] : groups) {
    w.u16(group);
    w.u32(static_cast<std::uint32_t>(members.size()));
    for (const auto& [port, rid] : members) {
      w.u16(port);
      w.u16(rid);
    }
  }

  w.f64(sw.now());
  w.u64(sw.rng_state());
  return w.take();
}

CheckpointImage apply_state(const std::string& body, hp4::Controller& ctl) {
  Reader r(body);
  CheckpointImage img;
  img.lsn = r.u64();

  const hp4::PersonaConfig cfg = read_config(r);
  if (!config_equal(cfg, ctl.generator().config()))
    throw ConfigError(
        "checkpoint: image was taken under a different PersonaConfig than "
        "the restoring controller's");

  const std::uint32_t nsrc = r.u32();
  for (std::uint32_t i = 0; i < nsrc; ++i) {
    const hp4::VdevId id = r.u64();
    img.vdev_sources[id] = r.str();
  }

  const hp4::Dpmu::ExportedState dp = read_dpmu(r);

  hp4::Controller::ExportedState cs;
  const std::uint32_t nlb = r.u32();
  for (std::uint32_t i = 0; i < nlb; ++i) {
    const std::int32_t key = r.i32();
    cs.live_bindings.emplace_back(key, r.u64());
  }
  const std::uint32_t ncfg = r.u32();
  for (std::uint32_t i = 0; i < ncfg; ++i) {
    std::string name = r.str();
    const std::uint32_t nb = r.u32();
    std::vector<std::pair<std::int32_t, hp4::VdevId>> bs;
    for (std::uint32_t j = 0; j < nb; ++j) {
      const std::int32_t key = r.i32();
      bs.emplace_back(key, r.u64());
    }
    cs.configs.emplace_back(std::move(name), std::move(bs));
  }
  cs.active_config = r.str();
  cs.last_activation_ops = r.u64();

  // Recompile every vdev's target from its checkpointed source. The
  // compiler is deterministic, so rule translation after restore behaves
  // exactly as before the crash.
  std::map<hp4::VdevId, hp4::Hp4Artifact> artifacts;
  for (const auto& v : dp.vdevs) {
    auto sit = img.vdev_sources.find(v.id);
    if (sit == img.vdev_sources.end())
      throw ConfigError("checkpoint: no target source for vdev " +
                        std::to_string(v.id));
    artifacts.emplace(
        v.id, ctl.compile(p4::parse_p4(sit->second, v.name)));
  }

  ctl.dpmu().import_state(dp, artifacts);
  ctl.import_state(cs);

  bm::Switch& sw = ctl.dataplane();
  const std::uint32_t ntables = r.u32();
  for (std::uint32_t i = 0; i < ntables; ++i) {
    const std::string name = r.str();
    bm::RuntimeTable::ExportedState ts;
    ts.next_handle = r.u64();
    if (r.b()) ts.default_action = r.u64();
    const std::uint32_t nda = r.u32();
    for (std::uint32_t j = 0; j < nda; ++j)
      ts.default_args.push_back(r.bitvec());
    ts.epoch = r.u64();
    ts.applied = r.u64();
    ts.hits = r.u64();
    const std::uint32_t ne = r.u32();
    for (std::uint32_t j = 0; j < ne; ++j) {
      bm::TableEntry e;
      e.handle = r.u64();
      const std::uint32_t nk = r.u32();
      for (std::uint32_t k = 0; k < nk; ++k)
        e.key.push_back(read_key_param(r));
      e.priority = r.i32();
      e.action = r.u64();
      const std::uint32_t na = r.u32();
      for (std::uint32_t k = 0; k < na; ++k)
        e.action_args.push_back(r.bitvec());
      e.hits = r.u64();
      e.hit_bytes = r.u64();
      ts.entries.push_back(std::move(e));
    }
    sw.mutable_table(name).import_state(ts);
  }

  const std::uint32_t nreg = r.u32();
  auto& regs = sw.mutable_register_arrays();
  for (std::uint32_t i = 0; i < nreg; ++i) {
    const std::string name = r.str();
    const std::uint32_t size = r.u32();
    auto it = std::find_if(regs.begin(), regs.end(),
                           [&](const auto& a) { return a.name() == name; });
    if (it == regs.end() || it->size() != size)
      throw ConfigError("checkpoint: register array '" + name +
                        "' does not match the persona");
    for (std::uint32_t j = 0; j < size; ++j) it->write(j, r.bitvec());
  }
  const std::uint32_t ncnt = r.u32();
  auto& counters = sw.mutable_counter_arrays();
  for (std::uint32_t i = 0; i < ncnt; ++i) {
    const std::string name = r.str();
    const std::uint32_t size = r.u32();
    auto it = std::find_if(counters.begin(), counters.end(),
                           [&](const auto& a) { return a.name() == name; });
    if (it == counters.end() || it->size() != size)
      throw ConfigError("checkpoint: counter array '" + name +
                        "' does not match the persona");
    for (std::uint32_t j = 0; j < size; ++j) {
      const std::uint64_t pkts = r.u64();
      it->set(j, pkts, r.u64());
    }
  }
  const std::uint32_t nmet = r.u32();
  auto& meters = sw.mutable_meter_arrays();
  for (std::uint32_t i = 0; i < nmet; ++i) {
    const std::string name = r.str();
    const std::uint32_t size = r.u32();
    auto it = std::find_if(meters.begin(), meters.end(),
                           [&](const auto& a) { return a.name() == name; });
    if (it == meters.end() || it->size() != size)
      throw ConfigError("checkpoint: meter array '" + name +
                        "' does not match the persona");
    std::vector<bm::MeterArray::ExportedBucket> buckets(size);
    for (auto& b : buckets) {
      b.tokens = r.f64();
      b.last = r.f64();
      b.primed = r.b();
    }
    it->import_buckets(buckets);
  }

  const std::uint32_t nmir = r.u32();
  for (std::uint32_t i = 0; i < nmir; ++i) {
    const std::uint32_t session = r.u32();
    sw.mirror_add(session, r.u16());
  }
  const std::uint32_t nmc = r.u32();
  for (std::uint32_t i = 0; i < nmc; ++i) {
    const std::uint16_t group = r.u16();
    const std::uint32_t nmem = r.u32();
    std::vector<std::pair<std::uint16_t, std::uint16_t>> members;
    for (std::uint32_t j = 0; j < nmem; ++j) {
      const std::uint16_t port = r.u16();
      members.emplace_back(port, r.u16());
    }
    sw.mc_group_set(group, std::move(members));
  }

  sw.set_time(r.f64());
  sw.set_rng_state(r.u64());

  // One atomic engine sync: replicas jump from whatever they served to the
  // restored image in a single epoch.
  ctl.flush_engine();
  return img;
}

void write_checkpoint_file(const std::string& path, const std::string& body) {
  Writer w;
  for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u8(kVersion);
  w.u8(0);
  w.u8(0);
  w.u8(0);
  w.u32(crc32(body));
  std::string out = w.take();
  out.append(body);

  // Write-to-temp + rename: a crash mid-checkpoint leaves either the old
  // file set or the new one, never a torn image under the final name.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) throw ConfigError("checkpoint: cannot create " + tmp);
  const std::size_t n = std::fwrite(out.data(), 1, out.size(), f);
  std::fflush(f);
  std::fclose(f);
  if (n != out.size()) throw ConfigError("checkpoint: short write to " + tmp);
  fs::rename(tmp, path);
}

std::string read_checkpoint_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw ConfigError("checkpoint: cannot open " + path);
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  if (bytes.size() < 12 || std::memcmp(bytes.data(), kMagic, 4) != 0)
    throw ConfigError("checkpoint: " + path + " is not a checkpoint image");
  if (static_cast<std::uint8_t>(bytes[4]) != kVersion)
    throw ConfigError("checkpoint: " + path + " has unsupported version " +
                      std::to_string(static_cast<std::uint8_t>(bytes[4])));
  Reader r(std::string_view(bytes).substr(8, 4));
  const std::uint32_t crc = r.u32();
  const std::string body = bytes.substr(12);
  if (crc32(body) != crc)
    throw ConfigError("checkpoint: " + path + " failed its CRC check");
  return body;
}

}  // namespace hyper4::state
