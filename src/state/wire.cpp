#include "state/wire.h"

#include <array>
#include <bit>
#include <cstring>

#include "util/error.h"

namespace hyper4::state {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto t = make_crc_table();
  return t;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  const auto& t = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = t[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::string& data) {
  return crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

void Writer::u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

void Writer::u16(std::uint16_t v) {
  for (int i = 0; i < 2; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s);
}

void Writer::bitvec(const util::BitVec& v) {
  u32(static_cast<std::uint32_t>(v.width()));
  for (std::uint8_t byte : v.to_bytes()) u8(byte);
}

void Reader::need(std::size_t n) const {
  if (data_.size() - pos_ < n)
    throw util::ParseError("wire: short read at offset " +
                           std::to_string(pos_) + " (need " +
                           std::to_string(n) + ", have " +
                           std::to_string(data_.size() - pos_) + ")");
}

std::uint8_t Reader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t Reader::u16() {
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(u8()) << (8 * i);
  return v;
}

std::uint32_t Reader::u32() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
  return v;
}

std::int32_t Reader::i32() { return static_cast<std::int32_t>(u32()); }

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

util::BitVec Reader::bitvec() {
  const std::uint32_t width = u32();
  const std::size_t nbytes = (width + 7) / 8;
  need(nbytes);
  std::vector<std::uint8_t> bytes(nbytes);
  std::memcpy(bytes.data(), data_.data() + pos_, nbytes);
  pos_ += nbytes;
  return util::BitVec::from_bytes(bytes, width);
}

}  // namespace hyper4::state
