#include "state/store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "hp4/p4_emit.h"
#include "p4/frontend.h"
#include "state/checkpoint.h"
#include "state/digest.h"
#include "state/wire.h"
#include "util/error.h"

namespace hyper4::state {

namespace fs = std::filesystem;
using util::ConfigError;

namespace {

enum class OpCode : std::uint8_t {
  kLoad = 1,
  kUnload = 2,
  kAttachPorts = 3,
  kChain = 4,
  kBind = 5,
  kAddRule = 6,
  kDeleteRule = 7,
  kAuthorize = 8,
  kRegisterWrite = 9,
  kDefineConfig = 10,
  kActivateConfig = 11,
};

std::string checkpoint_name(std::uint64_t lsn) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "checkpoint-%016llx.hp4c",
                static_cast<unsigned long long>(lsn));
  return buf;
}

void expect_id(const char* what, std::uint64_t expected, std::uint64_t got) {
  if (expected != got)
    throw ConfigError(std::string("replay determinism violation: ") + what +
                      " expected id " + std::to_string(expected) + ", got " +
                      std::to_string(got));
}

}  // namespace

std::string RecoveryReport::str() const {
  std::ostringstream os;
  if (checkpoint_loaded)
    os << "checkpoint: " << checkpoint_file << " (lsn " << checkpoint_lsn
       << ")\n";
  else
    os << "checkpoint: none\n";
  os << "replayed: " << replayed << " record(s), " << replay_failures
     << " deterministic failure(s)\n";
  os << "digests: " << digests_checked << " checked, "
     << (digest_ok ? "all ok" : "MISMATCH (replay stopped)") << "\n";
  if (dropped_bytes || dropped_segments)
    os << "dropped: " << dropped_bytes << " untrusted byte(s), "
       << dropped_segments << " whole segment(s)\n";
  if (skipped_duplicates)
    os << "skipped: " << skipped_duplicates << " duplicate-LSN record(s)\n";
  for (const auto& w : warnings) os << "warning: " << w << "\n";
  return os.str();
}

DurableController::DurableController(std::string dir, hp4::PersonaConfig cfg,
                                     StoreOptions opts)
    : dir_(std::move(dir)), opts_(opts) {
  fs::create_directories(dir_);
  controller_ = std::make_unique<hp4::Controller>(cfg);
  recover(cfg);
}

DurableController::~DurableController() = default;

std::uint64_t DurableController::digest() const {
  return state_digest(*controller_);
}

void DurableController::recover(const hp4::PersonaConfig&) {
  // 1. Newest loadable checkpoint (fall back to the previous image when
  // the newest is torn/corrupt — checkpoints are written tmp+rename, but a
  // disk can still hand back garbage).
  std::uint64_t start_lsn = 0;
  for (const auto& path : checkpoint_files(dir_)) {
    try {
      const std::string body = read_checkpoint_file(path);
      const CheckpointImage img = apply_state(body, *controller_);
      sources_ = img.vdev_sources;
      start_lsn = img.lsn;
      recovery_.checkpoint_loaded = true;
      recovery_.checkpoint_file = path;
      recovery_.checkpoint_lsn = img.lsn;
      break;
    } catch (const util::Error& e) {
      recovery_.warnings.push_back("unusable checkpoint " + path + ": " +
                                   e.what());
    }
  }

  // 2. Scan the journal tail BEFORE opening it for append (the open
  // truncates the untrusted suffix in place; scanning first preserves the
  // drop accounting for the report).
  const ScanResult sr = Journal::scan(dir_, start_lsn);
  recovery_.skipped_duplicates = sr.skipped_duplicates;
  recovery_.dropped_bytes = sr.dropped_bytes;
  recovery_.dropped_segments = sr.dropped_segments;
  for (const auto& w : sr.warnings) recovery_.warnings.push_back(w);

  journal_ = std::make_unique<Journal>(
      dir_, JournalOptions{opts_.segment_bytes, opts_.fsync}, start_lsn + 1);

  // 3. Replay the trusted prefix.
  for (const Record& rec : sr.records) {
    if (!recovery_.digest_ok) break;
    replay(rec);
  }
}

void DurableController::replay(const Record& rec) {
  if (rec.type == RecordType::kFsyncPoint) return;

  if (rec.has_digest) {
    ++recovery_.digests_checked;
    const std::uint64_t have = state_digest(*controller_);
    if (have != rec.digest) {
      recovery_.digest_ok = false;
      recovery_.warnings.push_back(
          "state digest mismatch before lsn " + std::to_string(rec.lsn) +
          ": journal says " + digest_hex(rec.digest) + ", recovered state is " +
          digest_hex(have) + "; replay stopped");
      return;
    }
  }

  if (rec.type == RecordType::kOp) {
    try {
      dispatch(rec.body);
    } catch (const util::Error& e) {
      // The op failed when it was first issued too (the journal is written
      // before the apply); the DPMU rolled it back then and now.
      ++recovery_.replay_failures;
      recovery_.warnings.push_back("lsn " + std::to_string(rec.lsn) +
                                   " re-failed on replay (as it did live): " +
                                   e.what());
    }
    ++recovery_.replayed;
    return;
  }

  if (rec.type == RecordType::kTxn) {
    // All-or-nothing: a committed transaction's ops all succeeded live, so
    // replay failing partway means corruption that beat the CRC — restore
    // the pre-txn image rather than leave a half-applied batch.
    Reader r(rec.body);
    const std::uint32_t n = r.u32();
    const std::string snapshot =
        serialize_state(*controller_, sources_, rec.lsn);
    try {
      for (std::uint32_t i = 0; i < n; ++i) dispatch(r.str());
    } catch (const util::Error& e) {
      sources_ = apply_state(snapshot, *controller_).vdev_sources;
      ++recovery_.replay_failures;
      recovery_.warnings.push_back(
          "txn at lsn " + std::to_string(rec.lsn) +
          " failed mid-replay and was rolled back whole: " + e.what());
    }
    ++recovery_.replayed;
    return;
  }

  recovery_.warnings.push_back("unknown record type at lsn " +
                               std::to_string(rec.lsn) + "; ignored");
}

std::uint64_t DurableController::run_op(const std::string& body) {
  if (in_txn_) {
    std::uint64_t result = 0;
    try {
      result = dispatch(body);
    } catch (...) {
      txn_abort();
      throw;
    }
    txn_ops_.push_back(body);
    return result;
  }

  // Write-ahead: the record is on disk (flushed) before the apply.
  bool with_digest = false;
  std::uint64_t digest = 0;
  if (opts_.digest_every && ++ops_since_digest_ >= opts_.digest_every) {
    with_digest = true;
    digest = state_digest(*controller_);
    ops_since_digest_ = 0;
  }
  journal_->append(RecordType::kOp, body, with_digest, digest);
  const std::uint64_t result = dispatch(body);
  if (opts_.fsync_every && ++ops_since_fsync_ >= opts_.fsync_every) {
    journal_->mark_fsync_point();
    ops_since_fsync_ = 0;
  }
  return result;
}

std::uint64_t DurableController::dispatch(const std::string& body) {
  Reader r(body);
  const OpCode op = static_cast<OpCode>(r.u8());
  switch (op) {
    case OpCode::kLoad: {
      const std::string name = r.str();
      const std::string source = r.str();
      const std::string owner = r.str();
      const std::uint64_t quota = r.u64();
      const std::uint64_t expected = r.u64();
      const p4::Program prog = p4::parse_p4(source, name);
      const hp4::VdevId id = controller_->load(name, prog, owner, quota);
      expect_id("load", expected, id);
      sources_[id] = source;
      return id;
    }
    case OpCode::kUnload: {
      const hp4::VdevId id = r.u64();
      controller_->unload(id);
      sources_.erase(id);
      return 0;
    }
    case OpCode::kAttachPorts: {
      const hp4::VdevId id = r.u64();
      const std::uint32_t n = r.u32();
      std::vector<std::uint16_t> ports;
      for (std::uint32_t i = 0; i < n; ++i) ports.push_back(r.u16());
      controller_->attach_ports(id, ports);
      return 0;
    }
    case OpCode::kChain: {
      const std::uint32_t nd = r.u32();
      std::vector<hp4::VdevId> devices;
      for (std::uint32_t i = 0; i < nd; ++i) devices.push_back(r.u64());
      const std::uint32_t np = r.u32();
      std::vector<std::uint16_t> ports;
      for (std::uint32_t i = 0; i < np; ++i) ports.push_back(r.u16());
      controller_->chain(devices, ports);
      return 0;
    }
    case OpCode::kBind: {
      const hp4::VdevId id = r.u64();
      const bool has_port = r.b();
      const std::uint16_t port = r.u16();
      controller_->bind(id, has_port ? std::optional<std::uint16_t>(port)
                                     : std::nullopt);
      return 0;
    }
    case OpCode::kAddRule: {
      const hp4::VdevId id = r.u64();
      const std::string requester = r.str();
      hp4::VirtualRule rule;
      rule.table = r.str();
      rule.action = r.str();
      const std::uint32_t nk = r.u32();
      for (std::uint32_t i = 0; i < nk; ++i) rule.keys.push_back(r.str());
      const std::uint32_t na = r.u32();
      for (std::uint32_t i = 0; i < na; ++i) rule.args.push_back(r.str());
      rule.priority = r.i32();
      const std::uint64_t expected = r.u64();
      const std::uint64_t vh = controller_->add_rule(id, rule, requester);
      expect_id("add_rule", expected, vh);
      return vh;
    }
    case OpCode::kDeleteRule: {
      const hp4::VdevId id = r.u64();
      const std::uint64_t vh = r.u64();
      controller_->delete_rule(id, vh, r.str());
      return 0;
    }
    case OpCode::kAuthorize: {
      const hp4::VdevId id = r.u64();
      controller_->authorize(id, r.str());
      return 0;
    }
    case OpCode::kRegisterWrite: {
      const std::string reg = r.str();
      const std::uint64_t index = r.u64();
      controller_->register_write(reg, index, r.bitvec());
      return 0;
    }
    case OpCode::kDefineConfig: {
      const std::string name = r.str();
      const std::uint32_t n = r.u32();
      std::vector<std::pair<std::optional<std::uint16_t>, hp4::VdevId>> bs;
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::int32_t key = r.i32();
        const hp4::VdevId vdev = r.u64();
        bs.emplace_back(key < 0 ? std::optional<std::uint16_t>()
                                : std::optional<std::uint16_t>(
                                      static_cast<std::uint16_t>(key)),
                        vdev);
      }
      controller_->define_config(name, std::move(bs));
      return 0;
    }
    case OpCode::kActivateConfig: {
      controller_->activate_config(r.str());
      return 0;
    }
  }
  throw ConfigError("journal: unknown opcode " +
                    std::to_string(static_cast<unsigned>(op)));
}

hp4::VdevId DurableController::load(const std::string& name,
                                    const p4::Program& target,
                                    const std::string& owner,
                                    std::size_t quota) {
  // Canonicalize through source: the journal stores P4 text, so the live
  // apply must compile the same text a replay would (emit→parse roundtrip).
  return load_source(name, hp4::emit_p4(target), owner, quota);
}

hp4::VdevId DurableController::load_source(const std::string& name,
                                           const std::string& source,
                                           const std::string& owner,
                                           std::size_t quota) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(OpCode::kLoad));
  w.str(name);
  w.str(source);
  w.str(owner);
  w.u64(quota);
  w.u64(controller_->dpmu().next_vdev_id());
  return run_op(w.take());
}

void DurableController::unload(hp4::VdevId id) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(OpCode::kUnload));
  w.u64(id);
  run_op(w.take());
}

void DurableController::attach_ports(hp4::VdevId id,
                                     const std::vector<std::uint16_t>& ports) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(OpCode::kAttachPorts));
  w.u64(id);
  w.u32(static_cast<std::uint32_t>(ports.size()));
  for (auto p : ports) w.u16(p);
  run_op(w.take());
}

void DurableController::chain(const std::vector<hp4::VdevId>& devices,
                              const std::vector<std::uint16_t>& ports) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(OpCode::kChain));
  w.u32(static_cast<std::uint32_t>(devices.size()));
  for (auto d : devices) w.u64(d);
  w.u32(static_cast<std::uint32_t>(ports.size()));
  for (auto p : ports) w.u16(p);
  run_op(w.take());
}

void DurableController::bind(hp4::VdevId id,
                             std::optional<std::uint16_t> port) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(OpCode::kBind));
  w.u64(id);
  w.b(port.has_value());
  w.u16(port.value_or(0));
  run_op(w.take());
}

std::uint64_t DurableController::add_rule(hp4::VdevId id,
                                          const hp4::VirtualRule& rule,
                                          const std::string& requester) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(OpCode::kAddRule));
  w.u64(id);
  w.str(requester);
  w.str(rule.table);
  w.str(rule.action);
  w.u32(static_cast<std::uint32_t>(rule.keys.size()));
  for (const auto& k : rule.keys) w.str(k);
  w.u32(static_cast<std::uint32_t>(rule.args.size()));
  for (const auto& a : rule.args) w.str(a);
  w.i32(rule.priority);
  w.u64(controller_->dpmu().next_vhandle(id));
  return run_op(w.take());
}

void DurableController::delete_rule(hp4::VdevId id, std::uint64_t vhandle,
                                    const std::string& requester) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(OpCode::kDeleteRule));
  w.u64(id);
  w.u64(vhandle);
  w.str(requester);
  run_op(w.take());
}

void DurableController::authorize(hp4::VdevId id,
                                  const std::string& requester) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(OpCode::kAuthorize));
  w.u64(id);
  w.str(requester);
  run_op(w.take());
}

void DurableController::register_write(const std::string& reg,
                                       std::size_t index,
                                       const util::BitVec& v) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(OpCode::kRegisterWrite));
  w.str(reg);
  w.u64(index);
  w.bitvec(v);
  run_op(w.take());
}

void DurableController::define_config(
    const std::string& name,
    std::vector<std::pair<std::optional<std::uint16_t>, hp4::VdevId>>
        bindings) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(OpCode::kDefineConfig));
  w.str(name);
  w.u32(static_cast<std::uint32_t>(bindings.size()));
  for (const auto& [port, vdev] : bindings) {
    w.i32(port ? static_cast<std::int32_t>(*port) : -1);
    w.u64(vdev);
  }
  run_op(w.take());
}

void DurableController::activate_config(const std::string& name) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(OpCode::kActivateConfig));
  w.str(name);
  run_op(w.take());
}

ReplicaApply DurableController::apply_replicated(const Record& rec) {
  if (in_txn_)
    throw ConfigError("apply_replicated: refusing inside an open transaction");
  const std::uint64_t next = journal_->next_lsn();
  if (rec.lsn < next) return ReplicaApply::kDuplicate;
  if (rec.lsn > next) return ReplicaApply::kGap;

  if (rec.has_digest) {
    const std::uint64_t have = state_digest(*controller_);
    if (have != rec.digest)
      throw ConfigError("replication digest mismatch at lsn " +
                        std::to_string(rec.lsn) + ": leader journaled " +
                        digest_hex(rec.digest) + ", follower state is " +
                        digest_hex(have));
  }

  // Journal first: the local journal is the byte-equivalent replay log a
  // killed follower recovers from before asking the leader for more.
  journal_->append_record(rec);

  if (rec.type == RecordType::kOp) {
    try {
      dispatch(rec.body);
    } catch (const util::Error&) {
      // Deterministic failure: the op failed on the leader too and was
      // rolled back there; both journals keep the record.
    }
  } else if (rec.type == RecordType::kTxn) {
    Reader r(rec.body);
    const std::uint32_t n = r.u32();
    const std::string snapshot =
        serialize_state(*controller_, sources_, rec.lsn);
    controller_->suspend_engine_refresh();
    try {
      for (std::uint32_t i = 0; i < n; ++i) dispatch(r.str());
    } catch (const util::Error&) {
      sources_ = apply_state(snapshot, *controller_).vdev_sources;
    }
    controller_->resume_engine_refresh();  // whole batch = one epoch bump
  }
  // kFsyncPoint: journaled only, nothing to apply.
  return ReplicaApply::kApplied;
}

void DurableController::txn_begin() {
  if (in_txn_) throw ConfigError("txn_begin: transaction already open");
  txn_snapshot_ = serialize_state(*controller_, sources_, journal_->last_lsn());
  txn_digest_ = state_digest(*controller_);
  txn_ops_.clear();
  in_txn_ = true;
  controller_->suspend_engine_refresh();
}

std::uint64_t DurableController::txn_commit() {
  if (!in_txn_) throw ConfigError("txn_commit: no open transaction");
  Writer w;
  w.u32(static_cast<std::uint32_t>(txn_ops_.size()));
  for (const auto& op : txn_ops_) w.str(op);
  // The whole batch is ONE record: either its frame lands intact (the
  // transaction is durable) or recovery never sees any of it.
  const std::uint64_t lsn =
      journal_->append(RecordType::kTxn, w.take(), true, txn_digest_);
  journal_->mark_fsync_point();
  ops_since_fsync_ = 0;
  in_txn_ = false;
  txn_ops_.clear();
  txn_snapshot_.clear();
  controller_->resume_engine_refresh();  // one sync = one epoch bump
  return lsn;
}

void DurableController::txn_abort() {
  if (!in_txn_) throw ConfigError("txn_abort: no open transaction");
  sources_ = apply_state(txn_snapshot_, *controller_).vdev_sources;
  in_txn_ = false;
  txn_ops_.clear();
  txn_snapshot_.clear();
  controller_->resume_engine_refresh();
}

std::uint64_t DurableController::checkpoint() {
  if (in_txn_)
    throw ConfigError("checkpoint: refusing inside an open transaction");
  const std::uint64_t lsn = journal_->last_lsn();
  const std::string body = serialize_state(*controller_, sources_, lsn);
  const std::string path = (fs::path(dir_) / checkpoint_name(lsn)).string();
  write_checkpoint_file(path, body);
  // Keep the newest two images: the new one plus one fallback in case the
  // new file is later found unreadable. The journal is truncated only up
  // to the OLDEST retained image — falling back to it must still find
  // every record since its LSN, or the fallback would silently lose the
  // ops between the two checkpoints.
  const auto files = checkpoint_files(dir_);
  for (std::size_t i = 2; i < files.size(); ++i) fs::remove(files[i]);
  std::uint64_t oldest_retained = lsn;
  for (const auto& f : checkpoint_files(dir_)) {
    unsigned long long l = 0;
    if (std::sscanf(fs::path(f).filename().string().c_str(),
                    "checkpoint-%16llx.hp4c", &l) == 1)
      oldest_retained = std::min<std::uint64_t>(oldest_retained, l);
  }
  journal_->truncate_up_to(oldest_retained);
  return lsn;
}

void DurableController::sync() {
  journal_->mark_fsync_point();
  ops_since_fsync_ = 0;
}

std::vector<std::string> DurableController::checkpoint_files(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  if (fs::exists(dir)) {
    for (const auto& e : fs::directory_iterator(dir)) {
      const std::string name = e.path().filename().string();
      unsigned long long lsn = 0;
      // sscanf ignores trailing characters; require an exact-name match so
      // leftover tmp files never count as images.
      if (std::sscanf(name.c_str(), "checkpoint-%16llx.hp4c", &lsn) == 1 &&
          name == checkpoint_name(lsn))
        found.emplace_back(lsn, e.path().string());
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> out;
  for (auto& [lsn, path] : found) out.push_back(std::move(path));
  return out;
}

}  // namespace hyper4::state
