// Binary wire format for the durable control plane (journal records and
// checkpoint images): a little-endian length-checked writer/reader pair
// plus the CRC-32 (ISO-HDLC polynomial, the zlib one) that guards every
// journal record and checkpoint file.
//
// The format is deliberately dumb: fixed-width integers, length-prefixed
// strings, and BitVecs as (width, big-endian bytes). Dumb formats recover
// well — a reader can always tell "ran out of bytes" apart from "decoded
// garbage", which is what the journal's torn-tail detection needs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/bitvec.h"

namespace hyper4::state {

// CRC-32 over `data` (polynomial 0xEDB88320, init/final xor 0xFFFFFFFF —
// identical to zlib's crc32()), so journal files are checkable with
// standard tools.
std::uint32_t crc32(std::span<const std::uint8_t> data);
std::uint32_t crc32(const std::string& data);

class Writer {
 public:
  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void b(bool v) { u8(v ? 1 : 0); }
  // Bit pattern of an IEEE double (meters' token buckets survive a
  // checkpoint round trip bit-exactly).
  void f64(double v);
  void str(const std::string& s);  // u32 length + raw bytes
  void bitvec(const util::BitVec& v);  // u32 width + big-endian bytes

 private:
  std::string out_;
};

// Reader over a byte string. Every accessor throws util::ParseError when
// the remaining bytes cannot satisfy it — short reads are errors, never
// silent zero-fills.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t pos() const { return pos_; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  bool b() { return u8() != 0; }
  double f64();
  std::string str();
  util::BitVec bitvec();

 private:
  void need(std::size_t n) const;
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace hyper4::state
