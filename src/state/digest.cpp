#include "state/digest.h"

#include <algorithm>

#include "hp4/controller.h"
#include "state/wire.h"

namespace hyper4::state {

namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

void write_key_param(Writer& w, const bm::KeyParam& k) {
  w.bitvec(k.value);
  w.b(k.mask.has_value());
  if (k.mask) w.bitvec(*k.mask);
  w.b(k.prefix_len.has_value());
  if (k.prefix_len) w.u64(*k.prefix_len);
  w.b(k.range_hi.has_value());
  if (k.range_hi) w.bitvec(*k.range_hi);
}

}  // namespace

std::uint64_t state_digest(const hp4::Controller& ctl) {
  Writer w;

  // DPMU management state.
  const hp4::Dpmu::ExportedState dp = ctl.dpmu().export_state();
  w.u32(static_cast<std::uint32_t>(dp.vdevs.size()));
  for (const auto& v : dp.vdevs) {
    w.u64(v.id);
    w.str(v.name);
    w.str(v.owner);
    w.u32(static_cast<std::uint32_t>(v.authorized.size()));
    for (const auto& a : v.authorized) w.str(a);
    w.u64(v.quota);
    w.u32(static_cast<std::uint32_t>(v.vport_to_phys.size()));
    for (const auto& [vp, ph] : v.vport_to_phys) {
      w.u64(vp);
      w.u16(ph);
    }
    w.u32(static_cast<std::uint32_t>(v.vnet_handles.size()));
    for (const auto& [vp, h] : v.vnet_handles) {
      w.u64(vp);
      w.u64(h);
    }
    w.u32(static_cast<std::uint32_t>(v.mcast_groups.size()));
    for (auto g : v.mcast_groups) w.u16(g);
    w.u32(static_cast<std::uint32_t>(v.entries.size()));
    for (const auto& [vh, list] : v.entries) {
      w.u64(vh);
      w.u32(static_cast<std::uint32_t>(list.size()));
      for (const auto& [table, handle] : list) {
        w.str(table);
        w.u64(handle);
      }
    }
    w.u32(static_cast<std::uint32_t>(v.static_handles.size()));
    for (const auto& [table, handle] : v.static_handles) {
      w.str(table);
      w.u64(handle);
    }
    w.u64(v.next_vhandle);
  }
  w.u32(static_cast<std::uint32_t>(dp.bindings.size()));
  for (const auto& b : dp.bindings) {
    w.u64(b.id);
    w.u64(b.handle);
    w.b(b.has_port);
    w.u16(b.port);
    w.u64(b.vdev);
  }
  w.u64(dp.next_id);
  w.u64(dp.next_vport);
  w.u16(dp.next_mcast_group);
  w.u64(dp.next_match_id);
  w.u64(dp.next_binding);

  // Controller management state.
  const hp4::Controller::ExportedState cs = ctl.export_state();
  w.u32(static_cast<std::uint32_t>(cs.live_bindings.size()));
  for (const auto& [key, handle] : cs.live_bindings) {
    w.i32(key);
    w.u64(handle);
  }
  w.u32(static_cast<std::uint32_t>(cs.configs.size()));
  for (const auto& [name, bindings] : cs.configs) {
    w.str(name);
    w.u32(static_cast<std::uint32_t>(bindings.size()));
    for (const auto& [key, vdev] : bindings) {
      w.i32(key);
      w.u64(vdev);
    }
  }
  w.str(cs.active_config);

  // Dataplane match state: every table's entries, keys, actions, defaults.
  // Hit counters are excluded (traffic-mutable); handles and next_handle
  // are included (the DPMU's references depend on them).
  const bm::Switch& sw = ctl.dataplane();
  std::vector<std::string> tables = sw.table_names();
  std::sort(tables.begin(), tables.end());
  for (const auto& name : tables) {
    const bm::RuntimeTable& t = sw.table(name);
    const bm::RuntimeTable::ExportedState ts = t.export_state();
    w.str(name);
    w.u64(ts.next_handle);
    w.b(ts.default_action.has_value());
    if (ts.default_action) w.u64(*ts.default_action);
    w.u32(static_cast<std::uint32_t>(ts.default_args.size()));
    for (const auto& a : ts.default_args) w.bitvec(a);
    w.u32(static_cast<std::uint32_t>(ts.entries.size()));
    for (const auto& e : ts.entries) {
      w.u64(e.handle);
      w.u32(static_cast<std::uint32_t>(e.key.size()));
      for (const auto& k : e.key) write_key_param(w, k);
      w.i32(e.priority);
      w.u64(e.action);
      w.u32(static_cast<std::uint32_t>(e.action_args.size()));
      for (const auto& a : e.action_args) w.bitvec(a);
    }
  }

  // Register cells (control-written persona tuning state).
  for (const auto& r : sw.register_arrays()) {
    w.str(r.name());
    for (std::size_t i = 0; i < r.size(); ++i) w.bitvec(r.read(i));
  }

  return fnv1a(w.bytes());
}

std::string digest_hex(std::uint64_t d) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(d));
  return buf;
}

}  // namespace hyper4::state
