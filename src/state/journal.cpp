#include "state/journal.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "state/wire.h"
#include "util/error.h"

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace hyper4::state {

namespace fs = std::filesystem;
using util::ConfigError;

namespace {

constexpr char kMagic[4] = {'H', 'P', '4', 'J'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kSegmentHeaderBytes = 16;
constexpr std::size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc

std::string segment_name(std::uint64_t first_lsn) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "journal-%016llx.hp4j",
                static_cast<unsigned long long>(first_lsn));
  return buf;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw ConfigError("journal: cannot open " + path);
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string frame(const Record& r) {
  Writer w;
  w.u64(r.lsn);
  w.u8(static_cast<std::uint8_t>(r.type));
  w.u8(r.has_digest ? 1 : 0);
  w.u64(r.digest);
  std::string payload = w.take();
  payload.append(r.body);

  Writer f;
  f.u32(static_cast<std::uint32_t>(payload.size()));
  f.u32(crc32(payload));
  std::string out = f.take();
  out.append(payload);
  return out;
}

// Decode one frame starting at `pos`. Returns false (without touching
// `rec`) when the bytes from `pos` do not contain a full, CRC-clean frame.
bool decode_frame(const std::string& bytes, std::size_t pos, Record* rec,
                  std::size_t* frame_bytes) {
  if (bytes.size() - pos < kFrameHeaderBytes) return false;
  Reader hdr(std::string_view(bytes).substr(pos, kFrameHeaderBytes));
  const std::uint32_t len = hdr.u32();
  const std::uint32_t crc = hdr.u32();
  if (len < 18) return false;  // payload header alone is 18 bytes
  if (bytes.size() - pos - kFrameHeaderBytes < len) return false;  // torn
  const std::string_view payload =
      std::string_view(bytes).substr(pos + kFrameHeaderBytes, len);
  if (crc32(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(payload.data()),
          payload.size())) != crc)
    return false;
  Reader r(payload);
  rec->lsn = r.u64();
  rec->type = static_cast<RecordType>(r.u8());
  rec->has_digest = r.u8() != 0;
  rec->digest = r.u64();
  rec->body = std::string(payload.substr(r.pos()));
  *frame_bytes = kFrameHeaderBytes + len;
  return true;
}

struct SegmentInfo {
  std::string path;
  std::uint64_t first_lsn = 0;
};

std::vector<SegmentInfo> list_segments(const std::string& dir) {
  std::vector<SegmentInfo> out;
  if (!fs::exists(dir)) return out;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    unsigned long long lsn = 0;
    // Exact-name match: sscanf alone would also accept stray suffixes
    // (editor backups, tmp files) that merely start like a segment.
    if (std::sscanf(name.c_str(), "journal-%16llx.hp4j", &lsn) == 1 &&
        name == segment_name(lsn)) {
      out.push_back({e.path().string(), lsn});
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first_lsn < b.first_lsn;
  });
  return out;
}

// Validate a segment header; returns the first_lsn or nullopt on garbage.
bool parse_header(const std::string& bytes, std::uint64_t* first_lsn) {
  if (bytes.size() < kSegmentHeaderBytes) return false;
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) return false;
  if (static_cast<std::uint8_t>(bytes[4]) != kVersion) return false;
  Reader r(std::string_view(bytes).substr(8, 8));
  *first_lsn = r.u64();
  return true;
}

}  // namespace

Journal::Journal(std::string dir, JournalOptions opts, std::uint64_t next_lsn)
    : dir_(std::move(dir)), opts_(opts), next_lsn_(next_lsn) {
  fs::create_directories(dir_);
  // Find the tail: scan and truncate any untrusted suffix in place so the
  // on-disk journal ends exactly at the last valid record.
  const auto segs = list_segments(dir_);
  if (!segs.empty()) {
    const ScanResult sr = scan(dir_, 0);
    if (sr.last_lsn >= next_lsn_) next_lsn_ = sr.last_lsn + 1;
    // Truncate the first segment containing untrusted bytes and delete all
    // segments after it.
    bool corrupt_seen = false;
    for (const auto& seg : segs) {
      if (corrupt_seen) {
        fs::remove(seg.path);
        continue;
      }
      const std::string bytes = read_file(seg.path);
      std::uint64_t first = 0;
      if (!parse_header(bytes, &first)) {
        fs::remove(seg.path);
        corrupt_seen = true;
        continue;
      }
      std::size_t pos = kSegmentHeaderBytes;
      Record rec;
      std::size_t fb = 0;
      while (pos < bytes.size() && decode_frame(bytes, pos, &rec, &fb))
        pos += fb;
      if (pos < bytes.size()) {
        fs::resize_file(seg.path, pos);
        corrupt_seen = true;
      }
    }
    // Re-open the newest surviving segment for append.
    const auto alive = list_segments(dir_);
    if (!alive.empty()) {
      const auto& tail = alive.back();
      f_ = std::fopen(tail.path.c_str(), "ab");
      if (!f_) throw ConfigError("journal: cannot append to " + tail.path);
      current_path_ = tail.path;
      current_bytes_ = fs::file_size(tail.path);
      return;
    }
  }
  open_segment(next_lsn_);
}

Journal::~Journal() { close_segment(); }

void Journal::open_segment(std::uint64_t first_lsn) {
  close_segment();
  current_path_ = (fs::path(dir_) / segment_name(first_lsn)).string();
  f_ = std::fopen(current_path_.c_str(), "wb");
  if (!f_) throw ConfigError("journal: cannot create " + current_path_);
  Writer w;
  for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u8(kVersion);
  w.u8(0);
  w.u8(0);
  w.u8(0);
  w.u64(first_lsn);
  const std::string hdr = w.take();
  std::fwrite(hdr.data(), 1, hdr.size(), f_);
  std::fflush(f_);
  current_bytes_ = hdr.size();
}

void Journal::close_segment() {
  if (f_) {
    std::fflush(f_);
    std::fclose(f_);
    f_ = nullptr;
  }
}

std::uint64_t Journal::append(RecordType type, const std::string& body,
                              bool has_digest, std::uint64_t digest) {
  if (current_bytes_ >= opts_.segment_bytes) open_segment(next_lsn_);
  Record rec;
  rec.lsn = next_lsn_++;
  rec.type = type;
  rec.has_digest = has_digest;
  rec.digest = digest;
  rec.body = body;
  const std::string bytes = frame(rec);
  if (std::fwrite(bytes.data(), 1, bytes.size(), f_) != bytes.size())
    throw ConfigError("journal: short write to " + current_path_ + ": " +
                      std::strerror(errno));
  std::fflush(f_);
  current_bytes_ += bytes.size();
  return rec.lsn;
}

void Journal::append_record(const Record& rec) {
  if (rec.lsn != next_lsn_)
    throw ConfigError("journal: append_record at lsn " +
                      std::to_string(rec.lsn) + " but next lsn is " +
                      std::to_string(next_lsn_));
  if (current_bytes_ >= opts_.segment_bytes) open_segment(next_lsn_);
  const std::string bytes = frame(rec);
  if (std::fwrite(bytes.data(), 1, bytes.size(), f_) != bytes.size())
    throw ConfigError("journal: short write to " + current_path_ + ": " +
                      std::strerror(errno));
  std::fflush(f_);
  current_bytes_ += bytes.size();
  ++next_lsn_;
}

std::uint64_t Journal::mark_fsync_point() {
  const std::uint64_t lsn = append(RecordType::kFsyncPoint, "");
  if (opts_.fsync) {
#ifndef _WIN32
    fsync(fileno(f_));
#endif
  }
  return lsn;
}

void Journal::truncate_up_to(std::uint64_t lsn) {
  // Rotate so the active segment starts after `lsn`; then any older
  // segment whose successor starts at or below lsn+1 is fully covered.
  if (last_lsn() <= lsn) open_segment(next_lsn_);
  const auto segs = list_segments(dir_);
  for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
    if (segs[i + 1].first_lsn <= lsn + 1 && segs[i].path != current_path_)
      fs::remove(segs[i].path);
  }
}

ScanResult Journal::scan(const std::string& dir, std::uint64_t min_lsn) {
  ScanResult out;
  out.last_lsn = min_lsn;
  const auto segs = list_segments(dir);
  bool corrupt_seen = false;
  std::uint64_t prev_lsn = min_lsn;
  for (const auto& seg : segs) {
    const std::string bytes = read_file(seg.path);
    if (corrupt_seen) {
      ++out.dropped_segments;
      out.dropped_bytes += bytes.size();
      out.warnings.push_back("dropped whole segment after corruption: " +
                             seg.path + " (" + std::to_string(bytes.size()) +
                             " bytes)");
      continue;
    }
    std::uint64_t first = 0;
    if (!parse_header(bytes, &first)) {
      corrupt_seen = true;
      ++out.dropped_segments;
      out.dropped_bytes += bytes.size();
      out.warnings.push_back("bad segment header: " + seg.path);
      continue;
    }
    std::size_t pos = kSegmentHeaderBytes;
    while (pos < bytes.size()) {
      Record rec;
      std::size_t fb = 0;
      if (!decode_frame(bytes, pos, &rec, &fb)) {
        corrupt_seen = true;
        out.dropped_bytes += bytes.size() - pos;
        out.warnings.push_back(
            "torn or corrupt record in " + seg.path + " at byte " +
            std::to_string(pos) + "; dropped " +
            std::to_string(bytes.size() - pos) + " trailing bytes");
        break;
      }
      if (rec.lsn <= prev_lsn) {
        // Records at or below min_lsn are checkpoint-covered and expected;
        // anything else with a non-increasing LSN is a genuine duplicate
        // (e.g. a copied segment file) and must not be re-applied.
        if (rec.lsn > min_lsn) {
          ++out.skipped_duplicates;
          out.warnings.push_back("skipped duplicate LSN " +
                                 std::to_string(rec.lsn) + " in " + seg.path);
        }
        pos += fb;
        continue;
      }
      prev_lsn = rec.lsn;
      out.last_lsn = rec.lsn;
      out.records.push_back(std::move(rec));
      pos += fb;
    }
  }
  return out;
}

Journal::TailReader::TailReader(const std::string& dir,
                                std::uint64_t from_lsn)
    : from_lsn_(from_lsn), prev_lsn_(from_lsn) {
  segments_ = segment_files(dir);
}

bool Journal::TailReader::advance_segment() {
  while (seg_ < segments_.size()) {
    const std::string& path = segments_[seg_++];
    bytes_ = read_file(path);
    std::uint64_t first = 0;
    if (!parse_header(bytes_, &first)) {
      // Prefix trust: a garbage header poisons this segment and everything
      // after it, exactly like scan().
      truncated_ = true;
      done_ = true;
      return false;
    }
    pos_ = kSegmentHeaderBytes;
    if (pos_ < bytes_.size()) return true;
  }
  done_ = true;
  return false;
}

bool Journal::TailReader::next(Record* rec) {
  while (!done_) {
    if (pos_ >= bytes_.size()) {
      if (!advance_segment()) return false;
      continue;
    }
    Record r;
    std::size_t fb = 0;
    if (!decode_frame(bytes_, pos_, &r, &fb)) {
      truncated_ = true;
      done_ = true;
      return false;
    }
    pos_ += fb;
    if (r.lsn <= prev_lsn_) {
      // At or below from_lsn is checkpoint/ack-covered and expected; a
      // non-increasing LSN past that is a genuine duplicate.
      if (r.lsn > from_lsn_) ++skipped_duplicates_;
      continue;
    }
    prev_lsn_ = r.lsn;
    *rec = std::move(r);
    return true;
  }
  return false;
}

Journal::TailReader Journal::tail_from(const std::string& dir,
                                       std::uint64_t from_lsn) {
  return TailReader(dir, from_lsn);
}

std::vector<std::string> Journal::segment_files(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& seg : list_segments(dir)) out.push_back(seg.path);
  return out;
}

}  // namespace hyper4::state
