// Checkpoints: full serialization of one controller's durable state to a
// versioned, CRC-guarded binary image (see DESIGN.md "Durability &
// transactions" for the exact layout).
//
// An image holds the persona configuration (verified on restore — a
// checkpoint only restores onto a controller generated from the same
// PersonaConfig), the target P4 source of every loaded virtual device
// (programs are persisted as source and recompiled on restore; the
// compiler is deterministic, so the recompiled artifact translates rules
// exactly as the original did), the DPMU + controller management state,
// and the complete dataplane runtime state: every table's entries with
// their original handles, registers, counters, meter buckets, mirror
// sessions, multicast groups, the logical clock and the RNG state.
//
// serialize_state()/apply_state() work on in-memory byte strings — the
// transaction layer uses them to stage a rollback image without touching
// disk; write/read_checkpoint_file add the file framing (magic + CRC).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "hp4/dpmu.h"

namespace hyper4::hp4 {
class Controller;
}

namespace hyper4::state {

struct CheckpointImage {
  std::uint64_t lsn = 0;  // journal position the image covers
  std::map<hp4::VdevId, std::string> vdev_sources;  // target P4 per vdev
};

// Serialize the controller's full durable state (plus the per-vdev target
// sources, which the controller itself does not retain) into an image
// body covering journal position `lsn`.
std::string serialize_state(const hp4::Controller& ctl,
                            const std::map<hp4::VdevId, std::string>& sources,
                            std::uint64_t lsn);

// Wholesale-replace `ctl`'s state with a serialized image. `ctl` must be
// built from the same PersonaConfig the image records (ConfigError
// otherwise). Safe on a controller that already carries state (the
// transaction rollback path); ends with one forced engine sync so an
// attached traffic engine observes the restored state atomically.
CheckpointImage apply_state(const std::string& body, hp4::Controller& ctl);

// File framing: magic "HP4C", version byte, CRC-32 of the body.
void write_checkpoint_file(const std::string& path, const std::string& body);
// Throws ConfigError on missing file / bad magic / CRC mismatch.
std::string read_checkpoint_file(const std::string& path);

}  // namespace hyper4::state
