// hyper4_check: differential tester for the HyPer4 stack.
//
// Generates random P4-14 programs inside the persona's supported envelope,
// runs each (program, rules, packets) triple through the native switch, the
// HyPer4 persona, the concurrent traffic engine and the persona's compiled
// bytecode tier (src/vm), and diffs the observable behaviour. On divergence the case is shrunk to a locally-minimal repro and
// written out as a standalone .p4 + commands pair that `--replay` (or the
// check_repro regression test) can re-run without the generator.
//
// Exit codes (shared convention across tools/): 0 all iterations
// equivalent, 1 usage error, 2 runtime/harness error, 3 divergence found.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>

#include "check/diff_runner.h"
#include "check/program_gen.h"
#include "check/reducer.h"
#include "check/repro.h"
#include "util/rng.h"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: hyper4_check [options]\n"
               "  --seed N          base seed (default: $HP4_CHECK_SEED or 1)\n"
               "  --iters N         iterations to run (default 100)\n"
               "  --workers N       engine worker threads (default 4)\n"
               "  --mutate M        inject a divergence: drop-rule | "
               "corrupt-byte\n"
               "  --stateful        allow counter/register programs "
               "(persona skips them)\n"
               "  --weights W       match-kind preset: exact | lpm | ternary\n"
               "                    (skews generated table keys to stress one\n"
               "                    compiled index kind; default mixed)\n"
               "  --backends B      comma list of backends to run: any of\n"
               "                    native,persona,engine,vm or 'all'\n"
               "                    (native always runs; vm implies persona;\n"
               "                    default all)\n"
               "  --no-persona      skip the HyPer4 persona backend (and vm)\n"
               "  --no-engine       skip the traffic-engine backend\n"
               "  --no-vm           skip the bytecode-tier backend\n"
               "  --chain N         chained mode: every case is a chain of N\n"
               "                    generated programs composed in ONE "
               "persona\n"
               "                    (native = cascaded switches, engine/vm "
               "over\n"
               "                    the persona; divergences name the vdev)\n"
               "  --repro-dir DIR   where to write minimized repros "
               "(default '.')\n"
               "  --max-seconds S   stop after S seconds even if iterations "
               "remain\n"
               "  --replay P4 CMDS  replay one serialized repro instead of "
               "generating\n"
               "  --replay-chain C  replay one chain repro (.cmds; link .p4 "
               "files\n"
               "                    resolve relative to it)\n"
               "  --explain         trace both backends; on divergence print "
               "a decoded\n"
               "                    first-divergence report in the emulated "
               "program's terms\n"
               "  --trace-chrome F  write an about://tracing JSON of the last "
               "case to F\n"
               "  --profile-json F  write the native per-stage latency "
               "histograms to F\n");
}

void write_file(const std::string& path, const std::string& body,
                const char* what) {
  if (path.empty() || body.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "hyper4_check: cannot write %s to '%s'\n", what,
                 path.c_str());
    return;
  }
  out << body;
  std::printf("  %s written: %s\n", what, path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using hyper4::check::DiffOptions;
  using hyper4::check::DiffReport;
  using hyper4::check::DiffRunner;
  using hyper4::check::GenCase;
  using hyper4::check::GenLimits;
  using hyper4::check::Mutation;
  using hyper4::check::ProgramGen;

  std::uint64_t seed = hyper4::util::env_seed(1);
  std::uint64_t iters = 100;
  std::size_t chain_depth = 0;  // 0 = single-program mode
  double max_seconds = 0.0;
  std::string repro_dir = ".";
  std::string replay_p4;
  std::string replay_cmds;
  std::string replay_chain;
  std::string chrome_path;
  std::string profile_path;
  bool explain = false;
  bool dump = false;
  GenLimits limits;
  DiffOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hyper4_check: %s needs a value\n", a.c_str());
        usage(stderr);
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "--seed") {
      seed = std::strtoull(next(), nullptr, 0);
    } else if (a == "--iters") {
      iters = std::strtoull(next(), nullptr, 0);
    } else if (a == "--workers") {
      opts.engine_workers = std::strtoull(next(), nullptr, 0);
    } else if (a == "--mutate") {
      const std::string m = next();
      if (m == "drop-rule") {
        opts.mutation = Mutation::kDropPersonaRule;
      } else if (m == "corrupt-byte") {
        opts.mutation = Mutation::kCorruptEngineByte;
      } else {
        std::fprintf(stderr, "hyper4_check: unknown mutation '%s'\n",
                     m.c_str());
        usage(stderr);
        return 1;
      }
    } else if (a == "--stateful") {
      limits.allow_stateful = true;
    } else if (a == "--weights") {
      const std::string w = next();
      if (w == "exact") {
        // Nearly everything hashes: starve lpm/ternary so tables compile
        // to the exact-hash index (u64 and raw-byte variants both appear).
        limits.p_lpm_table = 0.02;
        limits.p_ternary_key = 0.02;
        limits.p_meta_ternary_key = 0.02;
        limits.p_valid_table = 0.05;
      } else if (w == "lpm") {
        limits.p_lpm_table = 0.65;
        limits.p_valid_table = 0.05;
        limits.p_meta_table = 0.05;
        limits.p_ternary_key = 0.1;
      } else if (w == "ternary") {
        limits.p_ternary_key = 0.75;
        limits.p_meta_ternary_key = 0.6;
        limits.p_lpm_table = 0.05;
        limits.p_valid_table = 0.05;
      } else {
        std::fprintf(stderr, "hyper4_check: unknown weights '%s'\n",
                     w.c_str());
        usage(stderr);
        return 1;
      }
    } else if (a == "--backends") {
      const std::string b = next();
      if (b != "all") {
        opts.run_engine = false;
        opts.run_persona = false;
        opts.run_vm = false;
        std::size_t pos = 0;
        while (pos <= b.size()) {
          const std::size_t comma = b.find(',', pos);
          const std::string one =
              b.substr(pos, comma == std::string::npos ? b.size() - pos
                                                       : comma - pos);
          if (one == "native") {
            // always the reference; nothing to enable
          } else if (one == "engine") {
            opts.run_engine = true;
          } else if (one == "persona") {
            opts.run_persona = true;
          } else if (one == "vm") {
            opts.run_vm = true;
            opts.run_persona = true;  // vm diffs against the persona
          } else {
            std::fprintf(stderr, "hyper4_check: unknown backend '%s'\n",
                         one.c_str());
            usage(stderr);
            return 1;
          }
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
      }
    } else if (a == "--no-persona") {
      opts.run_persona = false;
      opts.run_vm = false;
    } else if (a == "--no-engine") {
      opts.run_engine = false;
    } else if (a == "--no-vm") {
      opts.run_vm = false;
    } else if (a == "--repro-dir") {
      repro_dir = next();
    } else if (a == "--max-seconds") {
      max_seconds = std::strtod(next(), nullptr);
    } else if (a == "--replay") {
      replay_p4 = next();
      replay_cmds = next();
    } else if (a == "--replay-chain") {
      replay_chain = next();
    } else if (a == "--chain") {
      chain_depth = std::strtoull(next(), nullptr, 0);
      if (chain_depth < 1) {
        std::fprintf(stderr, "hyper4_check: --chain needs a depth >= 1\n");
        usage(stderr);
        return 1;
      }
    } else if (a == "--explain") {
      explain = true;
    } else if (a == "--trace-chrome") {
      chrome_path = next();
    } else if (a == "--profile-json") {
      profile_path = next();
    } else if (a == "--dump") {
      dump = true;
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "hyper4_check: unknown option '%s'\n", a.c_str());
      usage(stderr);
      return 1;
    }
  }

  if (explain || !chrome_path.empty() || !profile_path.empty())
    opts.trace = true;

  const DiffRunner runner(opts);

  if (!replay_p4.empty()) {
    // Friendly fast path: diagnose a missing/misnamed artifact (with
    // did-you-mean over the repro directory) before any parsing runs.
    for (const std::string& f : {replay_p4, replay_cmds}) {
      std::ifstream probe(f, std::ios::binary);
      if (!probe) {
        std::fprintf(stderr, "hyper4_check: cannot replay: %s\n",
                     hyper4::check::replay_file_hint(f).c_str());
        return 2;
      }
    }
    try {
      const GenCase c = hyper4::check::load_repro(replay_p4, replay_cmds);
      const DiffReport rep = runner.run(c);
      std::printf("replay %s: %s\n", replay_p4.c_str(), rep.str().c_str());
      if (explain && !rep.explanation.empty())
        std::printf("%s", rep.explanation.c_str());
      write_file(chrome_path, rep.chrome_trace, "chrome trace");
      write_file(profile_path, rep.profile_json, "profile");
      return rep.equivalent ? 0 : 3;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hyper4_check: replay failed: %s\n  (%s)\n",
                   e.what(),
                   hyper4::check::replay_file_hint(replay_cmds).c_str());
      return 2;
    }
  }

  if (!replay_chain.empty()) {
    {
      std::ifstream probe(replay_chain, std::ios::binary);
      if (!probe) {
        std::fprintf(stderr, "hyper4_check: cannot replay chain: %s\n",
                     hyper4::check::replay_file_hint(replay_chain).c_str());
        return 2;
      }
    }
    try {
      const hyper4::check::ChainCase c =
          hyper4::check::load_chain_repro(replay_chain);
      const DiffReport rep = runner.run_chain(c);
      std::printf("replay-chain %s (%zu links): %s\n", replay_chain.c_str(),
                  c.links.size(), rep.str().c_str());
      return rep.equivalent ? 0 : 3;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hyper4_check: chain replay failed: %s\n  (%s)\n",
                   e.what(),
                   hyper4::check::replay_file_hint(replay_chain).c_str());
      return 2;
    }
  }

  const ProgramGen gen(limits);

  if (chain_depth >= 1) {
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t ran = 0;
    std::uint64_t persona_skipped = 0;
    std::uint64_t vm_fallback_total = 0;
    for (std::uint64_t i = 0; i < iters; ++i) {
      if (max_seconds > 0.0) {
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        if (dt.count() >= max_seconds) break;
      }
      const std::uint64_t case_seed = seed + i;
      hyper4::check::ChainCase c;
      DiffReport rep;
      try {
        c = gen.generate_chain(case_seed, chain_depth);
        rep = runner.run_chain(c);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "chain seed %llu: harness error: %s\n",
                     static_cast<unsigned long long>(case_seed), e.what());
        return 2;
      }
      ++ran;
      if (!rep.persona_ran) ++persona_skipped;
      vm_fallback_total += rep.vm_fallbacks;
      if (rep.equivalent) continue;

      std::printf("chain seed %llu: DIVERGENCE\n  %s\n",
                  static_cast<unsigned long long>(case_seed),
                  rep.str().c_str());
      const hyper4::check::Divergence want = *rep.divergence;
      DiffOptions clean_opts = opts;
      clean_opts.mutation = Mutation::kNone;
      const DiffRunner clean_runner(clean_opts);
      hyper4::check::ReduceStats stats;
      const hyper4::check::ChainCase minimal = hyper4::check::reduce_chain(
          c,
          [&](const hyper4::check::ChainCase& cand) {
            const DiffReport r = runner.run_chain(cand);
            if (r.equivalent || !r.divergence ||
                r.divergence->lhs != want.lhs ||
                r.divergence->rhs != want.rhs ||
                r.divergence->kind != want.kind)
              return false;
            if (opts.mutation != Mutation::kNone &&
                !clean_runner.run_chain(cand).equivalent)
              return false;
            return true;
          },
          &stats);
      const DiffReport min_rep = runner.run_chain(minimal);
      const std::string base =
          repro_dir + "/chain_repro_" + std::to_string(case_seed);
      const std::string cmds = hyper4::check::write_chain_repro(minimal, base);
      std::size_t min_rules = 0;
      for (const auto& l : minimal.links) min_rules += l.rules.size();
      std::printf(
          "  reduced: %zu links, %zu rules, %zu packets "
          "(%zu/%zu shrink attempts accepted)\n"
          "  minimal: %s\n"
          "  repro written: %s (+ link .p4 files)\n",
          minimal.links.size(), min_rules, minimal.packets.size(),
          stats.accepted, stats.attempts, min_rep.str().c_str(),
          cmds.c_str());
      return 3;
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    std::printf(
        "hyper4_check: %llu/%llu chained iterations equivalent "
        "(depth %zu, seed base %llu, %llu persona-skipped, "
        "%llu vm-fallback packets, %.1fs)\n",
        static_cast<unsigned long long>(ran),
        static_cast<unsigned long long>(iters), chain_depth,
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(persona_skipped),
        static_cast<unsigned long long>(vm_fallback_total), dt.count());
    return 0;
  }

  if (dump) {
    const GenCase c = gen.generate(seed);
    hyper4::check::write_repro(c, "dump_" + std::to_string(seed) + ".p4",
                               "dump_" + std::to_string(seed) + ".cmds");
    std::printf("dumped seed %llu\n", static_cast<unsigned long long>(seed));
    return 0;
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t ran = 0;
  std::uint64_t persona_skipped = 0;
  std::uint64_t vm_fallback_total = 0;
  DiffReport last_rep;  // artifact source when every iteration is clean
  for (std::uint64_t i = 0; i < iters; ++i) {
    if (max_seconds > 0.0) {
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      if (dt.count() >= max_seconds) break;
    }
    const std::uint64_t case_seed = seed + i;
    GenCase c;
    DiffReport rep;
    try {
      c = gen.generate(case_seed);
      rep = runner.run(c);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "seed %llu: harness error: %s\n",
                   static_cast<unsigned long long>(case_seed), e.what());
      return 2;
    }
    ++ran;
    if (!rep.persona_ran && opts.run_persona) ++persona_skipped;
    vm_fallback_total += rep.vm_fallbacks;
    if (rep.equivalent) {
      if (opts.trace) last_rep = std::move(rep);
      continue;
    }

    std::printf("seed %llu: DIVERGENCE\n  %s\n",
                static_cast<unsigned long long>(case_seed),
                rep.str().c_str());
    // Pin the reducer to the original divergence signature so shrinking
    // cannot drift onto a different (often shallower) failure. For an
    // injected divergence the repro must additionally be clean without the
    // mutation — that is what the replay regression test asserts.
    const hyper4::check::Divergence want = *rep.divergence;
    DiffOptions clean_opts = opts;
    clean_opts.mutation = Mutation::kNone;
    const DiffRunner clean_runner(clean_opts);
    hyper4::check::ReduceStats stats;
    const GenCase minimal = hyper4::check::reduce(
        c,
        [&](const GenCase& cand) {
          const DiffReport r = runner.run(cand);
          if (r.equivalent || !r.divergence || r.divergence->lhs != want.lhs ||
              r.divergence->rhs != want.rhs || r.divergence->kind != want.kind)
            return false;
          if (opts.mutation != Mutation::kNone &&
              !clean_runner.run(cand).equivalent)
            return false;
          return true;
        },
        &stats);
    const DiffReport min_rep = runner.run(minimal);
    const std::string base =
        repro_dir + "/repro_" + std::to_string(case_seed);
    hyper4::check::write_repro(minimal, base + ".p4", base + ".cmds");
    std::printf(
        "  reduced: %zu tables, %zu rules, %zu packets "
        "(%zu/%zu shrink attempts accepted)\n"
        "  minimal: %s\n"
        "  repro written: %s.p4 %s.cmds\n",
        minimal.program.tables.size(), minimal.rules.size(),
        minimal.packets.size(), stats.accepted, stats.attempts,
        min_rep.str().c_str(), base.c_str(), base.c_str());
    if (explain && !min_rep.explanation.empty())
      std::printf("%s", min_rep.explanation.c_str());
    write_file(chrome_path, min_rep.chrome_trace, "chrome trace");
    write_file(profile_path, min_rep.profile_json, "profile");
    return 3;
  }

  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  std::printf(
      "hyper4_check: %llu/%llu iterations equivalent (seed base %llu, "
      "%llu persona-skipped, %llu vm-fallback packets, %.1fs)\n",
      static_cast<unsigned long long>(ran),
      static_cast<unsigned long long>(iters),
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(persona_skipped),
      static_cast<unsigned long long>(vm_fallback_total), dt.count());
  write_file(chrome_path, last_rep.chrome_trace, "chrome trace");
  write_file(profile_path, last_rep.profile_json, "profile");
  return 0;
}
