// hyper4_fabric: operator CLI for the replicated multi-switch fabric
// (src/fabric).
//
//   hyper4_fabric topology [options]    print a topology preset
//   hyper4_fabric run [options]         drive a fabric: replicate a
//                                       program + rules to every node,
//                                       push packet waves, optionally
//                                       kill/restart a follower, verify
//                                       digest convergence
//   hyper4_fabric node [options]        serve one follower over a unix
//                                       socket (the `run --transport
//                                       socket` child process)
//   hyper4_fabric status [options]      offline-recover a node or leader
//                                       store and print its report
//   hyper4_fabric kill [options]        SIGKILL a follower by pid file
//
// Exit codes (shared convention across tools/): 0 ok, 1 usage error,
// 2 runtime/I-O error, 3 verification failure (digest divergence or a
// follower that failed to catch up).
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "bench/common.h"
#include "fabric/fabric.h"
#include "fabric/topology.h"
#include "hp4/p4_emit.h"
#include "state/digest.h"
#include "state/store.h"
#include "util/error.h"
#include "util/strings.h"

namespace {

namespace fabric = hyper4::fabric;
namespace state = hyper4::state;
namespace apps = hyper4::apps;
namespace bench = hyper4::bench;
namespace net = hyper4::net;

// A MAC routed out the "next node" trunk port on every replica: since all
// nodes share the control state, a relay packet hops the line node by node
// (per-node TM verdict → link) until the last node's unwired trunk drops it.
constexpr const char* kMacRelay = "02:00:00:00:00:aa";

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: hyper4_fabric <command> [options]\n"
      "  topology --preset P --nodes N   print the wiring of a preset\n"
      "                                  (line | tree | fat-tree)\n"
      "  run [options]                   drive a replicated fabric\n"
      "    --preset P --nodes N          topology (default line, 2 nodes)\n"
      "    --waves W --packets K         traffic per wave per node (3, 8)\n"
      "    --workers N                   engine workers per node (0=direct)\n"
      "    --quorum Q                    acks required to commit (0=all)\n"
      "    --transport ring|socket       in-process rings or one process\n"
      "                                  per node over unix sockets\n"
      "    --store DIR                   store root (default fabric_run;\n"
      "                                  wiped first)\n"
      "    --kill-node I --kill-wave W   crash follower I after wave W,\n"
      "                                  restart it one wave later\n"
      "    --tear                        also tear the victim's journal\n"
      "                                  tail (torn-record crash)\n"
      "    --status                      print fabric status JSON at end\n"
      "  node --id N --store DIR --connect PATH [--workers N]\n"
      "                                  serve one follower (child mode)\n"
      "  status --store DIR              offline recovery report + digest\n"
      "  kill --pid-file FILE            SIGKILL the process in FILE\n");
}

const char* need(int argc, char** argv, int& i, const std::string& flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "hyper4_fabric: %s needs a value\n", flag.c_str());
    usage(stderr);
    std::exit(1);
  }
  return argv[++i];
}

int cmd_topology(int argc, char** argv) {
  std::string preset = "line";
  std::size_t nodes = 2;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--preset") preset = need(argc, argv, i, a);
    else if (a == "--nodes") nodes = std::strtoull(need(argc, argv, i, a), nullptr, 0);
    else {
      std::fprintf(stderr, "hyper4_fabric: unknown topology option '%s'\n",
                   a.c_str());
      usage(stderr);
      return 1;
    }
  }
  const auto topo = fabric::FabricTopology::by_name(preset, nodes);
  std::fputs(topo.describe().c_str(), stdout);
  return 0;
}

int cmd_status(int argc, char** argv) {
  std::string dir;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--store") dir = need(argc, argv, i, a);
    else {
      std::fprintf(stderr, "hyper4_fabric: unknown status option '%s'\n",
                   a.c_str());
      usage(stderr);
      return 1;
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "hyper4_fabric: status needs --store DIR\n");
    usage(stderr);
    return 1;
  }
  state::DurableController st(dir);
  std::printf("%s", st.recovery().str().c_str());
  std::printf("last lsn: %llu\nstate digest: %s\n",
              static_cast<unsigned long long>(st.last_lsn()),
              state::digest_hex(st.digest()).c_str());
  return 0;
}

int cmd_kill(int argc, char** argv) {
  std::string file;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--pid-file") file = need(argc, argv, i, a);
    else {
      std::fprintf(stderr, "hyper4_fabric: unknown kill option '%s'\n",
                   a.c_str());
      usage(stderr);
      return 1;
    }
  }
  if (file.empty()) {
    std::fprintf(stderr, "hyper4_fabric: kill needs --pid-file FILE\n");
    usage(stderr);
    return 1;
  }
  std::ifstream in(file);
  pid_t pid = 0;
  if (!(in >> pid) || pid <= 0) {
    std::fprintf(stderr, "hyper4_fabric: no pid in %s\n", file.c_str());
    return 2;
  }
  if (::kill(pid, SIGKILL) != 0) {
    std::fprintf(stderr, "hyper4_fabric: kill(%d): %s\n", pid,
                 std::strerror(errno));
    return 2;
  }
  std::printf("killed %d\n", pid);
  return 0;
}

int cmd_node(int argc, char** argv) {
  std::uint32_t id = 0;
  bool have_id = false;
  std::string store, connect, pid_file;
  std::size_t workers = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--id") {
      id = static_cast<std::uint32_t>(
          std::strtoul(need(argc, argv, i, a), nullptr, 0));
      have_id = true;
    } else if (a == "--store") store = need(argc, argv, i, a);
    else if (a == "--connect") connect = need(argc, argv, i, a);
    else if (a == "--workers") workers = std::strtoull(need(argc, argv, i, a), nullptr, 0);
    else if (a == "--pid-file") pid_file = need(argc, argv, i, a);
    else {
      std::fprintf(stderr, "hyper4_fabric: unknown node option '%s'\n",
                   a.c_str());
      usage(stderr);
      return 1;
    }
  }
  if (!have_id || store.empty() || connect.empty()) {
    std::fprintf(stderr,
                 "hyper4_fabric: node needs --id N --store DIR --connect PATH\n");
    usage(stderr);
    return 1;
  }
  if (!pid_file.empty()) {
    std::ofstream out(pid_file);
    out << ::getpid() << "\n";
  }
  fabric::NodeOptions opts;
  opts.store_dir = store;
  opts.engine_workers = workers;
  const int fd = fabric::connect_unix(connect);
  fabric::serve_node(fd, id, std::move(opts));
  ::close(fd);
  return 0;
}

struct RunConfig {
  std::string preset = "line";
  std::size_t nodes = 2;
  std::size_t waves = 3;
  std::size_t packets = 8;
  std::size_t workers = 0;
  std::size_t quorum = 0;
  std::string transport = "ring";
  std::string store = "fabric_run";
  int kill_node = -1;
  std::size_t kill_wave = 1;
  bool tear = false;
  bool print_status = false;
};

// One spawned `hyper4_fabric node` follower (socket transport).
struct Child {
  pid_t pid = -1;
  int listen_fd = -1;
  std::string sock_path;
  std::string pid_path;
};

pid_t spawn_node(const char* self, std::size_t id, const RunConfig& cfg,
                 const Child& c) {
  const pid_t pid = ::fork();
  if (pid < 0) throw hyper4::util::Error("fork failed");
  if (pid == 0) {
    const std::string ids = std::to_string(id);
    const std::string ws = std::to_string(cfg.workers);
    const std::string store = cfg.store + "/node" + ids;
    ::execl(self, self, "node", "--id", ids.c_str(), "--store", store.c_str(),
            "--connect", c.sock_path.c_str(), "--workers", ws.c_str(),
            static_cast<char*>(nullptr));
    std::perror("execl");
    std::_Exit(2);
  }
  std::ofstream out(c.pid_path);
  out << pid << "\n";
  return pid;
}

bool wait_caught_up(fabric::FabricController& ctl, std::size_t node,
                    std::uint64_t target, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (ctl.node_acked_lsn(node) >= target) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

int cmd_run(const char* self, int argc, char** argv) {
  RunConfig cfg;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--preset") cfg.preset = need(argc, argv, i, a);
    else if (a == "--nodes") cfg.nodes = std::strtoull(need(argc, argv, i, a), nullptr, 0);
    else if (a == "--waves") cfg.waves = std::strtoull(need(argc, argv, i, a), nullptr, 0);
    else if (a == "--packets") cfg.packets = std::strtoull(need(argc, argv, i, a), nullptr, 0);
    else if (a == "--workers") cfg.workers = std::strtoull(need(argc, argv, i, a), nullptr, 0);
    else if (a == "--quorum") cfg.quorum = std::strtoull(need(argc, argv, i, a), nullptr, 0);
    else if (a == "--transport") cfg.transport = need(argc, argv, i, a);
    else if (a == "--store") cfg.store = need(argc, argv, i, a);
    else if (a == "--kill-node") cfg.kill_node = std::atoi(need(argc, argv, i, a));
    else if (a == "--kill-wave") cfg.kill_wave = std::strtoull(need(argc, argv, i, a), nullptr, 0);
    else if (a == "--tear") cfg.tear = true;
    else if (a == "--status") cfg.print_status = true;
    else {
      std::fprintf(stderr, "hyper4_fabric: unknown run option '%s'\n",
                   a.c_str());
      usage(stderr);
      return 1;
    }
  }
  if (cfg.transport != "ring" && cfg.transport != "socket") {
    std::fprintf(stderr, "hyper4_fabric: --transport must be ring or socket\n");
    usage(stderr);
    return 1;
  }
  const bool killing = cfg.kill_node >= 0;
  if (killing && static_cast<std::size_t>(cfg.kill_node) >= cfg.nodes) {
    std::fprintf(stderr, "hyper4_fabric: --kill-node out of range\n");
    usage(stderr);
    return 1;
  }

  std::filesystem::remove_all(cfg.store);
  std::filesystem::create_directories(cfg.store);

  fabric::FabricOptions fo;
  fo.store_dir = cfg.store;
  fo.topology = fabric::FabricTopology::by_name(cfg.preset, cfg.nodes);
  // With a planned kill and no explicit quorum, commit at N-1 so the
  // fabric stays writable while the victim is down.
  fo.quorum = cfg.quorum ? cfg.quorum
                         : (killing && cfg.nodes > 1 ? cfg.nodes - 1 : 0);
  fo.node.engine_workers = cfg.workers;
  const bool socket_mode = cfg.transport == "socket";
  if (socket_mode)
    for (std::size_t i = 0; i < fo.topology.nodes; ++i)
      fo.remote_nodes.push_back(i);

  const std::size_t n_nodes = fo.topology.nodes;
  fabric::FabricController ctl(fo);

  std::vector<Child> children(n_nodes);
  if (socket_mode) {
    for (std::size_t i = 0; i < n_nodes; ++i) {
      Child& c = children[i];
      c.sock_path = cfg.store + "/node" + std::to_string(i) + ".sock";
      c.pid_path = cfg.store + "/node" + std::to_string(i) + ".pid";
      c.listen_fd = fabric::listen_unix(c.sock_path);
      c.pid = spawn_node(self, i, cfg, c);
      ctl.attach_remote(i, fabric::accept_unix(c.listen_fd));
    }
  }

  // Replicated control plane: the l2 program, every port, the demo rules.
  const auto vdev = ctl.load_source(
      "l2_sw", hyper4::hp4::emit_p4(apps::program_by_name("l2_sw")));
  std::vector<std::uint16_t> ports{1, 2};
  {
    std::set<std::uint16_t> trunk;
    for (const auto& w : fo.topology.wires) {
      trunk.insert(w.a_port);
      trunk.insert(w.b_port);
    }
    ports.insert(ports.end(), trunk.begin(), trunk.end());
  }
  ctl.attach_ports(vdev, ports);
  for (const std::uint16_t p : ports) ctl.bind(vdev, p);
  ctl.add_rule(vdev, bench::vr(apps::l2_forward(bench::kMacH1, 1)));
  ctl.add_rule(vdev, bench::vr(apps::l2_forward(bench::kMacH2, 2)));
  if (n_nodes > 1)
    ctl.add_rule(vdev, bench::vr(apps::l2_forward(
                           kMacRelay, fabric::kTrunkBase + 1)));

  // One injection host per node (the first host the topology puts there).
  std::vector<std::string> entry(n_nodes);
  for (const auto& h : fo.topology.hosts)
    if (entry[h.node].empty()) entry[h.node] = h.name;

  net::EthHeader eth;
  eth.src = net::mac_from_string(bench::kMacH1);
  eth.dst = net::mac_from_string(bench::kMacH2);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.0.2");
  net::TcpHeader tcp;
  tcp.src_port = 40000;
  const net::Packet local_pkt = net::make_ipv4_tcp(eth, ip, tcp, 64);
  eth.dst = net::mac_from_string(kMacRelay);
  const net::Packet relay_pkt = net::make_ipv4_tcp(eth, ip, tcp, 64);

  std::size_t injected = 0;
  for (std::size_t w = 0; w < cfg.waves; ++w) {
    for (std::size_t i = 0; i < n_nodes; ++i) {
      if (entry[i].empty() || !ctl.alive(i)) continue;
      for (std::size_t k = 0; k < cfg.packets; ++k) {
        ctl.inject(entry[i], local_pkt);
        ++injected;
      }
    }
    if (n_nodes > 1 && !entry[0].empty() && ctl.alive(0)) {
      ctl.inject(entry[0], relay_pkt);
      ++injected;
    }
    // A control op per wave keeps the journal moving, so a killed node
    // has records to miss and catch up on.
    const auto h = ctl.add_rule(
        vdev, bench::vr(apps::l2_forward("02:00:00:00:07:" +
                                             std::string(w < 10 ? "0" : "") +
                                             std::to_string(w),
                                         2)));
    (void)h;
    ctl.drain();

    if (killing && w == cfg.kill_wave) {
      const std::size_t victim = static_cast<std::size_t>(cfg.kill_node);
      std::printf("killing node %zu after wave %zu\n", victim, w);
      if (socket_mode) {
        ::kill(children[victim].pid, SIGKILL);
        int st = 0;
        ::waitpid(children[victim].pid, &st, 0);
        // Give the controller's reader a moment to observe the EOF.
        for (int t = 0; t < 100 && ctl.alive(victim); ++t)
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
      } else {
        ctl.crash_node(victim, cfg.tear);
      }
    }
    if (killing && w == cfg.kill_wave + 1 && w + 1 < cfg.waves) {
      const std::size_t victim = static_cast<std::size_t>(cfg.kill_node);
      std::printf("restarting node %zu after wave %zu\n", victim, w);
      if (socket_mode) {
        Child& c = children[victim];
        c.pid = spawn_node(self, victim, cfg, c);
        ctl.attach_remote(victim, fabric::accept_unix(c.listen_fd));
      } else {
        ctl.restart_node(victim);
      }
    }
  }

  if (killing && !ctl.alive(static_cast<std::size_t>(cfg.kill_node))) {
    // Killed on the last waves with no restart slot: bring it back now.
    const std::size_t victim = static_cast<std::size_t>(cfg.kill_node);
    if (socket_mode) {
      Child& c = children[victim];
      c.pid = spawn_node(self, victim, cfg, c);
      ctl.attach_remote(victim, fabric::accept_unix(c.listen_fd));
    } else {
      ctl.restart_node(victim);
    }
  }

  // Convergence: every node must ack the leader's tail with its digest.
  const std::uint64_t tail = ctl.leader().last_lsn();
  int rc = 0;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    if (!wait_caught_up(ctl, i, tail, 10000)) {
      std::fprintf(stderr,
                   "hyper4_fabric: node %zu stuck at lsn %llu (leader %llu)\n",
                   i, static_cast<unsigned long long>(ctl.node_acked_lsn(i)),
                   static_cast<unsigned long long>(tail));
      rc = 3;
    }
  }
  ctl.drain();
  const std::uint64_t want = ctl.leader_digest();
  for (std::size_t i = 0; i < n_nodes && rc == 0; ++i) {
    const std::uint64_t got = ctl.node_acked_digest(i);
    if (got != want) {
      std::fprintf(stderr, "hyper4_fabric: node %zu digest %s != leader %s\n",
                   i, state::digest_hex(got).c_str(),
                   state::digest_hex(want).c_str());
      rc = 3;
    }
  }

  const auto deliveries = ctl.take_deliveries();
  std::printf("fabric: %zu node(s), %zu wave(s), %zu injected, %zu delivered, "
              "leader lsn %llu, digest %s%s\n",
              n_nodes, cfg.waves, injected, deliveries.size(),
              static_cast<unsigned long long>(tail),
              state::digest_hex(want).c_str(),
              rc == 0 ? ", all replicas converged" : "");
  if (cfg.print_status) std::printf("%s\n", ctl.status_json().c_str());

  if (socket_mode) {
    for (auto& c : children) {
      if (c.listen_fd >= 0) ::close(c.listen_fd);
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 1;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "--help" || cmd == "-h") {
      usage(stdout);
      return 0;
    }
    if (cmd == "topology") return cmd_topology(argc - 2, argv + 2);
    if (cmd == "run") return cmd_run(argv[0], argc - 2, argv + 2);
    if (cmd == "node") return cmd_node(argc - 2, argv + 2);
    if (cmd == "status") return cmd_status(argc - 2, argv + 2);
    if (cmd == "kill") return cmd_kill(argc - 2, argv + 2);
    std::fprintf(stderr, "hyper4_fabric: unknown command '%s'%s\n",
                 cmd.c_str(),
                 hyper4::util::did_you_mean(
                     cmd, {"topology", "run", "node", "status", "kill"})
                     .c_str());
    usage(stderr);
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hyper4_fabric: %s\n", e.what());
    return 2;
  }
}
