// hyper4_state: operator CLI for the durable control plane (src/state).
//
//   hyper4_state checkpoint DIR         recover DIR, write a checkpoint,
//                                       truncate the journal
//   hyper4_state recover DIR            recover DIR and print the report
//   hyper4_state journal-dump DIR       decode the journal's trusted prefix
//   hyper4_state verify DIR             recover and verify the state digest
//                                       against the journal's embedded ones
//   hyper4_state fuzz [options]         crash-point fuzzing (see --help)
//
// Exit codes (shared convention across tools/): 0 ok, 1 usage error,
// 2 runtime/I-O error, 3 verification or fuzz failure.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "check/crash_fuzz.h"
#include "state/digest.h"
#include "state/journal.h"
#include "state/store.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using hyper4::state::DurableController;
using hyper4::state::Journal;
using hyper4::state::Record;
using hyper4::state::RecordType;
using hyper4::state::ScanResult;

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: hyper4_state <command> [args]\n"
      "  checkpoint DIR     recover the store at DIR, write a fresh\n"
      "                     checkpoint image and truncate the journal\n"
      "  recover DIR        recover the store at DIR, print the recovery\n"
      "                     report and the resulting state digest\n"
      "  journal-dump DIR   decode and print the journal's trusted prefix\n"
      "  verify DIR         recover DIR; exit 3 when any embedded digest\n"
      "                     failed verification during replay\n"
      "  fuzz [options]     crash-point fuzzing of recovery\n"
      "    --seed N         base seed (default: $HP4_CHECK_SEED or 1)\n"
      "    --iters N        iterations (default 20)\n"
      "    --kills N        random kill offsets per iteration (default 3)\n"
      "    --work-dir DIR   scratch directory (default ./crashfuzz)\n"
      "    --workers N      engine worker threads (default 2)\n"
      "    --no-engine      skip the traffic-engine backend\n"
      "    --verbose        one line per iteration\n");
}

const char* record_type_name(RecordType t) {
  switch (t) {
    case RecordType::kOp:
      return "op";
    case RecordType::kTxn:
      return "txn";
    case RecordType::kFsyncPoint:
      return "fsync";
  }
  return "?";
}

int cmd_recover(const std::string& dir, bool verify_only) {
  DurableController st(dir);
  const auto& rep = st.recovery();
  std::printf("%s", rep.str().c_str());
  std::printf("last lsn: %llu\nstate digest: %s\n",
              static_cast<unsigned long long>(st.last_lsn()),
              hyper4::state::digest_hex(st.digest()).c_str());
  if (verify_only)
    return rep.digest_ok ? 0 : 3;
  return 0;
}

int cmd_checkpoint(const std::string& dir) {
  DurableController st(dir);
  const std::uint64_t lsn = st.checkpoint();
  std::printf("checkpoint written at lsn %llu (digest %s)\n",
              static_cast<unsigned long long>(lsn),
              hyper4::state::digest_hex(st.digest()).c_str());
  return 0;
}

int cmd_journal_dump(const std::string& dir) {
  const ScanResult sr = Journal::scan(dir);
  for (const Record& r : sr.records) {
    std::printf("lsn %-8llu %-5s %6zu byte(s)",
                static_cast<unsigned long long>(r.lsn),
                record_type_name(r.type), r.body.size());
    if (r.has_digest)
      std::printf("  pre-digest %s",
                  hyper4::state::digest_hex(r.digest).c_str());
    std::printf("\n");
  }
  std::printf("%zu record(s), last lsn %llu\n", sr.records.size(),
              static_cast<unsigned long long>(sr.last_lsn));
  if (sr.dropped_bytes || sr.dropped_segments)
    std::printf("dropped: %llu untrusted byte(s), %zu whole segment(s)\n",
                static_cast<unsigned long long>(sr.dropped_bytes),
                sr.dropped_segments);
  for (const auto& w : sr.warnings) std::printf("warning: %s\n", w.c_str());
  return 0;
}

int cmd_fuzz(int argc, char** argv) {
  hyper4::check::CrashFuzzOptions opts;
  opts.seed = hyper4::util::env_seed(1);
  opts.work_dir = "crashfuzz";
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hyper4_state: %s needs a value\n", a.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "--seed") {
      opts.seed = std::strtoull(next(), nullptr, 0);
    } else if (a == "--iters") {
      opts.iters = std::strtoull(next(), nullptr, 0);
    } else if (a == "--kills") {
      opts.kills_per_iter = std::strtoull(next(), nullptr, 0);
    } else if (a == "--work-dir") {
      opts.work_dir = next();
    } else if (a == "--workers") {
      opts.engine_workers = std::strtoull(next(), nullptr, 0);
    } else if (a == "--no-engine") {
      opts.run_engine = false;
    } else if (a == "--verbose") {
      opts.verbose = true;
    } else {
      std::fprintf(stderr, "hyper4_state: unknown fuzz option '%s'\n",
                   a.c_str());
      usage(stderr);
      return 1;
    }
  }
  const hyper4::check::CrashFuzzResult res = hyper4::check::crash_fuzz(opts);
  std::printf("%s\n", res.str().c_str());
  return res.ok() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 1;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "--help" || cmd == "-h") {
      usage(stdout);
      return 0;
    }
    if (cmd == "fuzz") return cmd_fuzz(argc - 2, argv + 2);
    if (argc < 3) {
      usage(stderr);
      return 1;
    }
    const std::string dir = argv[2];
    if (cmd == "checkpoint") return cmd_checkpoint(dir);
    if (cmd == "recover") return cmd_recover(dir, false);
    if (cmd == "verify") return cmd_recover(dir, true);
    if (cmd == "journal-dump") return cmd_journal_dump(dir);
    std::fprintf(stderr, "hyper4_state: unknown command '%s'\n", cmd.c_str());
    usage(stderr);
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hyper4_state: %s\n", e.what());
    return 2;
  }
}
