// hyper4_fleet: drive a multi-tenant scenario fleet (src/scenarios) from
// the command line — N tenants x depth-D NF chains on ONE persona, live
// traffic through the concurrent engine while the control plane churns
// entries, transactionally hot-swaps tenant programs and snapshot/restores
// tenant slices.
//
// Exit codes (shared convention across tools/): 0 every wave fully
// delivered, 1 usage error, 2 runtime error, 3 delivery failure.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenarios/fleet.h"
#include "util/error.h"

namespace {

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: hyper4_fleet [options]\n"
      "  --tenants N         tenants to host (default 8)\n"
      "  --depth N           NFs per tenant chain, 1..4 (default 2)\n"
      "  --workers N         engine worker threads (default 4)\n"
      "  --waves N           traffic waves to run (default 10)\n"
      "  --packets N         canonical-flow packets per tenant per wave "
      "(default 4)\n"
      "  --churn N           churn table-ops per tenant per wave "
      "(default 8)\n"
      "  --swap-every N      hot-swap one tenant every N waves "
      "(default 2, 0 = off)\n"
      "  --snapshot-every N  snapshot+mutate+restore one tenant every N "
      "waves\n"
      "                      (default 5, 0 = off)\n"
      "  --vm                route packets through the VM bytecode tier\n"
      "  --durable DIR       host on a durable (WAL) store rooted at DIR\n"
      "  --seed N            tenant/traffic seed (default 1)\n"
      "  --quiet             only print the final summary\n");
}

}  // namespace

int main(int argc, char** argv) {
  using hyper4::scenarios::FleetOptions;
  using hyper4::scenarios::ScenarioFleet;
  using hyper4::scenarios::WaveResult;

  FleetOptions fo;
  std::size_t waves = 10;
  std::size_t packets = 4;
  std::size_t churn = 8;
  std::size_t swap_every = 2;
  std::size_t snapshot_every = 5;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hyper4_fleet: %s needs a value\n", a.c_str());
        usage(stderr);
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "--tenants") {
      fo.tenants = std::strtoull(next(), nullptr, 0);
    } else if (a == "--depth") {
      fo.chain_depth = std::strtoull(next(), nullptr, 0);
    } else if (a == "--workers") {
      fo.engine_workers = std::strtoull(next(), nullptr, 0);
    } else if (a == "--waves") {
      waves = std::strtoull(next(), nullptr, 0);
    } else if (a == "--packets") {
      packets = std::strtoull(next(), nullptr, 0);
    } else if (a == "--churn") {
      churn = std::strtoull(next(), nullptr, 0);
    } else if (a == "--swap-every") {
      swap_every = std::strtoull(next(), nullptr, 0);
    } else if (a == "--snapshot-every") {
      snapshot_every = std::strtoull(next(), nullptr, 0);
    } else if (a == "--vm") {
      fo.vm_path = true;
    } else if (a == "--durable") {
      fo.durable_dir = next();
    } else if (a == "--seed") {
      fo.seed = std::strtoull(next(), nullptr, 0);
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "hyper4_fleet: unknown option '%s'\n", a.c_str());
      usage(stderr);
      return 1;
    }
  }

  try {
    const auto t0 = std::chrono::steady_clock::now();
    ScenarioFleet fleet(fo);
    std::printf("%s\n", fleet.report().c_str());

    std::uint64_t total_injected = 0;
    std::uint64_t total_swaps = 0;
    std::uint64_t total_snapshots = 0;
    std::size_t churn_issued = 0;
    bool ok = true;

    for (std::size_t w = 0; w < waves; ++w) {
      fleet.inject_wave(packets);
      // Live operations land while this wave's packets are in flight.
      if (churn > 0)
        churn_issued += fleet.churn_tenant(w % fleet.tenants(), churn);
      if (swap_every > 0 && (w + 1) % swap_every == 0) {
        fleet.hot_swap((w / swap_every) % fleet.tenants());
        ++total_swaps;
      }
      if (snapshot_every > 0 && (w + 1) % snapshot_every == 0) {
        const std::size_t t = (w / snapshot_every) % fleet.tenants();
        const auto snap = fleet.snapshot_tenant(t);
        fleet.churn_tenant(t, churn);
        fleet.restore_tenant(t, snap);
        ++total_snapshots;
      }
      const WaveResult res = fleet.drain_wave();
      total_injected += res.injected;
      if (!res.all_delivered) ok = false;
      if (!quiet)
        std::printf("wave %zu: injected %llu drained %llu%s\n", w,
                    static_cast<unsigned long long>(res.injected),
                    static_cast<unsigned long long>(res.drained),
                    res.all_delivered ? "" : "  [DELIVERY FAILURE]");
    }

    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    std::printf(
        "hyper4_fleet: %zu waves, %llu packets, %zu churn ops, "
        "%llu hot-swaps, %llu snapshot/restores, epoch %llu, %.2fs — %s\n",
        waves, static_cast<unsigned long long>(total_injected), churn_issued,
        static_cast<unsigned long long>(total_swaps),
        static_cast<unsigned long long>(total_snapshots),
        static_cast<unsigned long long>(fleet.engine().epoch()), dt.count(),
        ok ? "all tenant flows delivered" : "DELIVERY FAILURES");
    if (fo.vm_path) {
      const auto diag = fleet.engine().packet_path_diagnostics();
      std::printf(
          "vm tier: %llu bytecode, %llu fallback, %llu compiles, "
          "%llu recompiles\n",
          static_cast<unsigned long long>(diag.at("packets_bytecode")),
          static_cast<unsigned long long>(diag.at("packets_fallback")),
          static_cast<unsigned long long>(diag.at("compiles")),
          static_cast<unsigned long long>(diag.at("recompiles")));
    }
    return ok ? 0 : 3;
  } catch (const hyper4::util::Error& e) {
    std::fprintf(stderr, "hyper4_fleet: %s\n", e.what());
    return 2;
  }
}
