// hyper4d: the long-running HyPer4 daemon — the virtualization layer as a
// service. Wraps the stable C ABI (include/hyper4/hyper4.h) behind the
// length-prefixed request/response wire protocol (src/abi/wire.h) on a
// unix-domain socket, with the durable store underneath: every management
// operation is write-ahead journaled before it is acknowledged, so a
// SIGKILLed daemon restarted on the same --store recovers digest-clean
// from checkpoint + journal tail (tests/daemon_soak_test.cpp drives this
// black-box).
//
// By design this file speaks ONLY the C ABI — it is the first consumer of
// the embeddable service surface and proves the boundary is real.
//
// Commands (request first line; <<body means the frame body is used):
//   ping                              liveness probe
//   compile <<p4-source               compile-check, returns summary JSON
//   load <name> <<p4-source           load vdev, returns id
//   unload <id>
//   attach <id> <p1,p2,...>
//   bind <id> <port|-1>
//   chain <id1,id2,...> <p1,p2,...>
//   rule-add <id> <table> <action> <nkeys> <k...> <nargs> <a...> <prio>
//   rule-del <id> <handle>
//   hot-swap <id> <<p4-source         returns new id
//   inject <<lines "port hexbytes"    enqueue a batch
//   drain                             returns totals + output packets
//   metrics                           engine metrics JSON
//   diag                              engine/tier diagnostics JSON
//   digest                            16-hex control-plane state digest
//   snapshot                          returns hex state image
//   checkpoint                        write checkpoint, returns lsn
//   recovery                          startup recovery report
//   shutdown                          clean exit (responds, then stops)
//
// Exit codes: 0 clean shutdown, 1 usage error, 2 runtime error.
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "abi/wire.h"
#include "hyper4/hyper4.h"
#include "util/error.h"

namespace {

using hyper4::abi::from_hex;
using hyper4::abi::read_frame;
using hyper4::abi::split_payload;
using hyper4::abi::to_hex;
using hyper4::abi::write_frame;

volatile sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: hyper4d --socket PATH --store DIR [options]\n"
               "  --socket PATH    unix socket to listen on (required)\n"
               "  --store DIR      durable store directory (required);\n"
               "                   recovered on startup if it exists\n"
               "  --workers N      engine worker threads (default 2)\n"
               "  --queue N        per-worker ring capacity\n"
               "  --batch N        max packets per worker batch\n"
               "  --vm             route packets through the VM bytecode "
               "tier\n"
               "  --pin            pin engine workers to cores\n"
               "  --quiet          no startup banner\n");
}

// The ABI's error text for the last failing call, for err responses.
std::string last_error_text(h4_instance* inst) {
  char small[256];
  size_t need = 0;
  int rc = h4_last_error(inst, small, sizeof(small), &need);
  if (rc == H4_OK) return small;
  if (rc == H4_ERR_NOSPACE) {
    std::string big(need, '\0');
    if (h4_last_error(inst, big.data(), big.size(), &need) == H4_OK) {
      big.resize(need > 0 ? need - 1 : 0);  // drop the NUL
      return big;
    }
  }
  return "(no error detail)";
}

std::string err_response(h4_instance* inst, int code) {
  return "err " + std::to_string(code) + " " + last_error_text(inst);
}

// Fetch a string-producing ABI call via the grow-on-NOSPACE dance.
template <typename Fn>
int fetch_string(Fn&& fn, std::string& out) {
  size_t need = 0;
  int rc = fn(nullptr, 0, &need);
  if (rc != H4_OK && rc != H4_ERR_NOSPACE) return rc;
  std::string buf(need, '\0');
  rc = fn(buf.data(), buf.size(), &need);
  if (rc != H4_OK) return rc;
  buf.resize(need > 0 ? need - 1 : 0);
  out = std::move(buf);
  return H4_OK;
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  for (std::string tok; is >> tok;) out.push_back(tok);
  return out;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

// One request → one response payload. Sets *stop on "shutdown".
std::string handle(h4_instance* inst, const std::string& payload,
                   bool* stop) {
  std::string line, body;
  split_payload(payload, line, body);
  const std::vector<std::string> tok = split_ws(line);
  if (tok.empty()) return "err " + std::to_string(H4_ERR_ARG) + " empty command";
  const std::string& cmd = tok[0];
  try {
    if (cmd == "ping") return "ok pong";
    if (cmd == "shutdown") {
      *stop = true;
      return "ok bye";
    }
    if (cmd == "compile") {
      std::string summary;
      const int rc = fetch_string(
          [&](char* b, size_t c, size_t* r) {
            return h4_compile(inst, body.c_str(), b, c, r);
          },
          summary);
      if (rc != H4_OK) return err_response(inst, rc);
      return "ok\n" + summary;
    }
    if (cmd == "load" && tok.size() == 2) {
      h4_vdev id = 0;
      const int rc = h4_vdev_load(inst, tok[1].c_str(), body.c_str(), &id);
      if (rc != H4_OK) return err_response(inst, rc);
      return "ok " + std::to_string(id);
    }
    if (cmd == "unload" && tok.size() == 2) {
      const int rc = h4_vdev_unload(inst, std::stoull(tok[1]));
      if (rc != H4_OK) return err_response(inst, rc);
      return "ok";
    }
    if (cmd == "attach" && tok.size() == 3) {
      std::vector<uint16_t> ports;
      for (const std::string& p : split_csv(tok[2]))
        ports.push_back(static_cast<uint16_t>(std::stoul(p)));
      const int rc = h4_vdev_attach_ports(inst, std::stoull(tok[1]),
                                          ports.data(), ports.size());
      if (rc != H4_OK) return err_response(inst, rc);
      return "ok";
    }
    if (cmd == "bind" && tok.size() == 3) {
      const int rc = h4_vdev_bind(inst, std::stoull(tok[1]),
                                  static_cast<int32_t>(std::stol(tok[2])));
      if (rc != H4_OK) return err_response(inst, rc);
      return "ok";
    }
    if (cmd == "chain" && tok.size() == 3) {
      std::vector<h4_vdev> devs;
      for (const std::string& d : split_csv(tok[1]))
        devs.push_back(std::stoull(d));
      std::vector<uint16_t> ports;
      for (const std::string& p : split_csv(tok[2]))
        ports.push_back(static_cast<uint16_t>(std::stoul(p)));
      const int rc = h4_chain(inst, devs.data(), devs.size(), ports.data(),
                              ports.size());
      if (rc != H4_OK) return err_response(inst, rc);
      return "ok";
    }
    if (cmd == "rule-add" && tok.size() >= 6) {
      // rule-add <id> <table> <action> <nkeys> <k...> <nargs> <a...> <prio>
      std::size_t at = 4;
      const std::size_t nkeys = std::stoull(tok[at++]);
      if (tok.size() < at + nkeys + 1)
        return "err " + std::to_string(H4_ERR_ARG) + " truncated rule-add";
      std::vector<const char*> keys;
      for (std::size_t i = 0; i < nkeys; ++i)
        keys.push_back(tok[at++].c_str());
      const std::size_t nargs = std::stoull(tok[at++]);
      if (tok.size() != at + nargs + 1)
        return "err " + std::to_string(H4_ERR_ARG) + " truncated rule-add";
      std::vector<const char*> args;
      for (std::size_t i = 0; i < nargs; ++i)
        args.push_back(tok[at++].c_str());
      const int32_t prio = static_cast<int32_t>(std::stol(tok[at]));
      uint64_t handle = 0;
      const int rc = h4_rule_add(inst, std::stoull(tok[1]), tok[2].c_str(),
                                 tok[3].c_str(), keys.data(), keys.size(),
                                 args.data(), args.size(), prio, &handle);
      if (rc != H4_OK) return err_response(inst, rc);
      return "ok " + std::to_string(handle);
    }
    if (cmd == "rule-del" && tok.size() == 3) {
      const int rc =
          h4_rule_delete(inst, std::stoull(tok[1]), std::stoull(tok[2]));
      if (rc != H4_OK) return err_response(inst, rc);
      return "ok";
    }
    if (cmd == "hot-swap" && tok.size() == 2) {
      h4_vdev nid = 0;
      const int rc =
          h4_vdev_hot_swap(inst, std::stoull(tok[1]), body.c_str(), &nid);
      if (rc != H4_OK) return err_response(inst, rc);
      return "ok " + std::to_string(nid);
    }
    if (cmd == "inject") {
      std::vector<std::pair<uint16_t, std::string>> raw;
      std::istringstream is(body);
      for (std::string l; std::getline(is, l);) {
        if (l.empty()) continue;
        const auto sp = l.find(' ');
        if (sp == std::string::npos)
          return "err " + std::to_string(H4_ERR_ARG) +
                 " inject line needs 'port hexbytes'";
        raw.emplace_back(static_cast<uint16_t>(std::stoul(l.substr(0, sp))),
                         from_hex(l.substr(sp + 1)));
      }
      std::vector<h4_packet> pkts;
      pkts.reserve(raw.size());
      for (const auto& [port, bytes] : raw)
        pkts.push_back(h4_packet{
            port, reinterpret_cast<const uint8_t*>(bytes.data()),
            bytes.size()});
      const int rc = h4_inject_batch(inst, pkts.data(), pkts.size());
      if (rc != H4_OK) return err_response(inst, rc);
      return "ok " + std::to_string(pkts.size());
    }
    if (cmd == "drain") {
      h4_drain_stats st;
      int rc = h4_drain(inst, &st);
      if (rc != H4_OK) return err_response(inst, rc);
      size_t nout = 0, nbytes = 0;
      rc = h4_drain_outputs(inst, nullptr, 0, nullptr, 0, &nout, &nbytes);
      std::string out_body;
      if (rc == H4_ERR_NOSPACE) {
        std::vector<h4_output> outs(nout);
        std::vector<uint8_t> bytes(nbytes);
        rc = h4_drain_outputs(inst, outs.data(), outs.size(), bytes.data(),
                              bytes.size(), &nout, &nbytes);
        if (rc != H4_OK) return err_response(inst, rc);
        for (size_t i = 0; i < nout; ++i)
          out_body += std::to_string(outs[i].port) + " " +
                      to_hex(bytes.data() + outs[i].offset, outs[i].len) +
                      "\n";
      } else if (rc != H4_OK && rc != H4_ERR_CONFIG) {
        // H4_ERR_CONFIG = collect_results off: totals-only response.
        return err_response(inst, rc);
      }
      std::ostringstream os;
      os << "ok packets=" << st.packets << " outputs=" << st.outputs
         << " drops=" << st.drops << " parse_errors=" << st.parse_errors
         << " resubmits=" << st.resubmits
         << " recirculations=" << st.recirculations << " epoch=" << st.epoch;
      return out_body.empty() ? os.str() : os.str() + "\n" + out_body;
    }
    if (cmd == "metrics" || cmd == "diag" || cmd == "recovery" ||
        cmd == "snapshot") {
      std::string out;
      int rc;
      if (cmd == "metrics") {
        rc = fetch_string(
            [&](char* b, size_t c, size_t* r) {
              return h4_metrics_json(inst, b, c, r);
            },
            out);
      } else if (cmd == "diag") {
        rc = fetch_string(
            [&](char* b, size_t c, size_t* r) {
              return h4_diagnostics_json(inst, b, c, r);
            },
            out);
      } else if (cmd == "recovery") {
        rc = fetch_string(
            [&](char* b, size_t c, size_t* r) {
              return h4_recovery_report(inst, b, c, r);
            },
            out);
      } else {  // snapshot
        size_t need = 0;
        rc = h4_snapshot(inst, nullptr, 0, &need);
        if (rc == H4_OK || rc == H4_ERR_NOSPACE) {
          std::string img(need, '\0');
          rc = h4_snapshot(inst, img.data(), img.size(), &need);
          if (rc == H4_OK)
            out = to_hex(reinterpret_cast<const uint8_t*>(img.data()),
                         img.size());
        }
      }
      if (rc != H4_OK) return err_response(inst, rc);
      return "ok\n" + out;
    }
    if (cmd == "digest") {
      uint64_t d = 0;
      const int rc = h4_state_digest(inst, &d);
      if (rc != H4_OK) return err_response(inst, rc);
      char hex[17];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(d));
      return std::string("ok ") + hex;
    }
    if (cmd == "checkpoint") {
      uint64_t lsn = 0;
      const int rc = h4_checkpoint(inst, &lsn);
      if (rc != H4_OK) return err_response(inst, rc);
      return "ok " + std::to_string(lsn);
    }
  } catch (const std::exception& e) {
    return "err " + std::to_string(H4_ERR_ARG) + " bad request: " + e.what();
  }
  return "err " + std::to_string(H4_ERR_ARG) + " unknown command '" + cmd +
         "'";
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string store_dir;
  h4_options opts;
  h4_options_init(&opts);
  opts.workers = 2;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hyper4d: %s needs a value\n", a.c_str());
        usage(stderr);
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "--socket") {
      socket_path = next();
    } else if (a == "--store") {
      store_dir = next();
    } else if (a == "--workers") {
      opts.workers = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (a == "--queue") {
      opts.queue_capacity =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (a == "--batch") {
      opts.batch_size =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (a == "--vm") {
      opts.vm_fast_path = 1;
    } else if (a == "--pin") {
      opts.pin_workers = 1;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "hyper4d: unknown option '%s'\n", a.c_str());
      usage(stderr);
      return 1;
    }
  }
  if (socket_path.empty() || store_dir.empty()) {
    std::fprintf(stderr, "hyper4d: --socket and --store are required\n");
    usage(stderr);
    return 1;
  }

  opts.durable_dir = store_dir.c_str();
  h4_instance* inst = nullptr;
  int rc = h4_open(&opts, &inst);
  if (rc != H4_OK) {
    std::fprintf(stderr, "hyper4d: cannot open store '%s': %s\n",
                 store_dir.c_str(), h4_err_str(rc));
    return 2;
  }

  // Bind the socket. A stale socket file from a killed daemon is expected
  // — remove it (the store, not the socket, is the source of truth).
  ::unlink(socket_path.c_str());
  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (lfd < 0 || socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "hyper4d: bad socket path '%s'\n",
                 socket_path.c_str());
    h4_close(inst);
    return 2;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(lfd, 8) != 0) {
    std::fprintf(stderr, "hyper4d: cannot listen on '%s': %s\n",
                 socket_path.c_str(), strerror(errno));
    ::close(lfd);
    h4_close(inst);
    return 2;
  }

  signal(SIGINT, on_signal);
  signal(SIGTERM, on_signal);
  signal(SIGPIPE, SIG_IGN);

  if (!quiet) {
    std::string rep;
    fetch_string(
        [&](char* b, size_t c, size_t* r) {
          return h4_recovery_report(inst, b, c, r);
        },
        rep);
    std::fprintf(stderr, "hyper4d: listening on %s (store %s)\n%s",
                 socket_path.c_str(), store_dir.c_str(), rep.c_str());
  }

  bool stop = false;
  while (!stop && !g_stop) {
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "hyper4d: accept: %s\n", strerror(errno));
      break;
    }
    try {
      std::string payload;
      while (!stop && read_frame(cfd, payload)) {
        const std::string resp = handle(inst, payload, &stop);
        if (!write_frame(cfd, resp)) break;
      }
    } catch (const std::exception& e) {
      // Protocol error on this connection only; keep serving.
      std::fprintf(stderr, "hyper4d: connection error: %s\n", e.what());
    }
    ::close(cfd);
  }

  ::close(lfd);
  ::unlink(socket_path.c_str());
  h4_close(inst);
  if (!quiet) std::fprintf(stderr, "hyper4d: shut down cleanly\n");
  return 0;
}
