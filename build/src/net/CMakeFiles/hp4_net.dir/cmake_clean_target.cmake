file(REMOVE_RECURSE
  "libhp4_net.a"
)
