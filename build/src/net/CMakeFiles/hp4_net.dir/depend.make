# Empty dependencies file for hp4_net.
# This may be replaced when dependencies are built.
