file(REMOVE_RECURSE
  "CMakeFiles/hp4_net.dir/checksum.cpp.o"
  "CMakeFiles/hp4_net.dir/checksum.cpp.o.d"
  "CMakeFiles/hp4_net.dir/headers.cpp.o"
  "CMakeFiles/hp4_net.dir/headers.cpp.o.d"
  "CMakeFiles/hp4_net.dir/packet.cpp.o"
  "CMakeFiles/hp4_net.dir/packet.cpp.o.d"
  "libhp4_net.a"
  "libhp4_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp4_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
