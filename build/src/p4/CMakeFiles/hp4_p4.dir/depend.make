# Empty dependencies file for hp4_p4.
# This may be replaced when dependencies are built.
