file(REMOVE_RECURSE
  "CMakeFiles/hp4_p4.dir/builder.cpp.o"
  "CMakeFiles/hp4_p4.dir/builder.cpp.o.d"
  "CMakeFiles/hp4_p4.dir/frontend.cpp.o"
  "CMakeFiles/hp4_p4.dir/frontend.cpp.o.d"
  "CMakeFiles/hp4_p4.dir/ir.cpp.o"
  "CMakeFiles/hp4_p4.dir/ir.cpp.o.d"
  "libhp4_p4.a"
  "libhp4_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp4_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
