
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p4/builder.cpp" "src/p4/CMakeFiles/hp4_p4.dir/builder.cpp.o" "gcc" "src/p4/CMakeFiles/hp4_p4.dir/builder.cpp.o.d"
  "/root/repo/src/p4/frontend.cpp" "src/p4/CMakeFiles/hp4_p4.dir/frontend.cpp.o" "gcc" "src/p4/CMakeFiles/hp4_p4.dir/frontend.cpp.o.d"
  "/root/repo/src/p4/ir.cpp" "src/p4/CMakeFiles/hp4_p4.dir/ir.cpp.o" "gcc" "src/p4/CMakeFiles/hp4_p4.dir/ir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hp4_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
