file(REMOVE_RECURSE
  "libhp4_p4.a"
)
