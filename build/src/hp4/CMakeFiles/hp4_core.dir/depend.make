# Empty dependencies file for hp4_core.
# This may be replaced when dependencies are built.
