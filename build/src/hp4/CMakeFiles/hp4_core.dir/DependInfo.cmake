
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hp4/analysis.cpp" "src/hp4/CMakeFiles/hp4_core.dir/analysis.cpp.o" "gcc" "src/hp4/CMakeFiles/hp4_core.dir/analysis.cpp.o.d"
  "/root/repo/src/hp4/compiler.cpp" "src/hp4/CMakeFiles/hp4_core.dir/compiler.cpp.o" "gcc" "src/hp4/CMakeFiles/hp4_core.dir/compiler.cpp.o.d"
  "/root/repo/src/hp4/controller.cpp" "src/hp4/CMakeFiles/hp4_core.dir/controller.cpp.o" "gcc" "src/hp4/CMakeFiles/hp4_core.dir/controller.cpp.o.d"
  "/root/repo/src/hp4/dpmu.cpp" "src/hp4/CMakeFiles/hp4_core.dir/dpmu.cpp.o" "gcc" "src/hp4/CMakeFiles/hp4_core.dir/dpmu.cpp.o.d"
  "/root/repo/src/hp4/p4_emit.cpp" "src/hp4/CMakeFiles/hp4_core.dir/p4_emit.cpp.o" "gcc" "src/hp4/CMakeFiles/hp4_core.dir/p4_emit.cpp.o.d"
  "/root/repo/src/hp4/persona.cpp" "src/hp4/CMakeFiles/hp4_core.dir/persona.cpp.o" "gcc" "src/hp4/CMakeFiles/hp4_core.dir/persona.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bm/CMakeFiles/hp4_bm.dir/DependInfo.cmake"
  "/root/repo/build/src/p4/CMakeFiles/hp4_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hp4_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hp4_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
