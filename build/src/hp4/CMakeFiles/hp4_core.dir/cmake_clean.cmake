file(REMOVE_RECURSE
  "CMakeFiles/hp4_core.dir/analysis.cpp.o"
  "CMakeFiles/hp4_core.dir/analysis.cpp.o.d"
  "CMakeFiles/hp4_core.dir/compiler.cpp.o"
  "CMakeFiles/hp4_core.dir/compiler.cpp.o.d"
  "CMakeFiles/hp4_core.dir/controller.cpp.o"
  "CMakeFiles/hp4_core.dir/controller.cpp.o.d"
  "CMakeFiles/hp4_core.dir/dpmu.cpp.o"
  "CMakeFiles/hp4_core.dir/dpmu.cpp.o.d"
  "CMakeFiles/hp4_core.dir/p4_emit.cpp.o"
  "CMakeFiles/hp4_core.dir/p4_emit.cpp.o.d"
  "CMakeFiles/hp4_core.dir/persona.cpp.o"
  "CMakeFiles/hp4_core.dir/persona.cpp.o.d"
  "libhp4_core.a"
  "libhp4_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp4_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
