file(REMOVE_RECURSE
  "libhp4_core.a"
)
