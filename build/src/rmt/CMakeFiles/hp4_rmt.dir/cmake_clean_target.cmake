file(REMOVE_RECURSE
  "libhp4_rmt.a"
)
