file(REMOVE_RECURSE
  "CMakeFiles/hp4_rmt.dir/rmt.cpp.o"
  "CMakeFiles/hp4_rmt.dir/rmt.cpp.o.d"
  "libhp4_rmt.a"
  "libhp4_rmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp4_rmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
