# Empty dependencies file for hp4_rmt.
# This may be replaced when dependencies are built.
