file(REMOVE_RECURSE
  "CMakeFiles/hp4_bm.dir/cli.cpp.o"
  "CMakeFiles/hp4_bm.dir/cli.cpp.o.d"
  "CMakeFiles/hp4_bm.dir/layout.cpp.o"
  "CMakeFiles/hp4_bm.dir/layout.cpp.o.d"
  "CMakeFiles/hp4_bm.dir/runtime_table.cpp.o"
  "CMakeFiles/hp4_bm.dir/runtime_table.cpp.o.d"
  "CMakeFiles/hp4_bm.dir/stateful.cpp.o"
  "CMakeFiles/hp4_bm.dir/stateful.cpp.o.d"
  "CMakeFiles/hp4_bm.dir/switch.cpp.o"
  "CMakeFiles/hp4_bm.dir/switch.cpp.o.d"
  "libhp4_bm.a"
  "libhp4_bm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp4_bm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
