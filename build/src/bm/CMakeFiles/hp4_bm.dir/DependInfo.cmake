
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bm/cli.cpp" "src/bm/CMakeFiles/hp4_bm.dir/cli.cpp.o" "gcc" "src/bm/CMakeFiles/hp4_bm.dir/cli.cpp.o.d"
  "/root/repo/src/bm/layout.cpp" "src/bm/CMakeFiles/hp4_bm.dir/layout.cpp.o" "gcc" "src/bm/CMakeFiles/hp4_bm.dir/layout.cpp.o.d"
  "/root/repo/src/bm/runtime_table.cpp" "src/bm/CMakeFiles/hp4_bm.dir/runtime_table.cpp.o" "gcc" "src/bm/CMakeFiles/hp4_bm.dir/runtime_table.cpp.o.d"
  "/root/repo/src/bm/stateful.cpp" "src/bm/CMakeFiles/hp4_bm.dir/stateful.cpp.o" "gcc" "src/bm/CMakeFiles/hp4_bm.dir/stateful.cpp.o.d"
  "/root/repo/src/bm/switch.cpp" "src/bm/CMakeFiles/hp4_bm.dir/switch.cpp.o" "gcc" "src/bm/CMakeFiles/hp4_bm.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p4/CMakeFiles/hp4_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hp4_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hp4_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
