file(REMOVE_RECURSE
  "libhp4_bm.a"
)
