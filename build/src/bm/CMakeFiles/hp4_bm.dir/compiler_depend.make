# Empty compiler generated dependencies file for hp4_bm.
# This may be replaced when dependencies are built.
