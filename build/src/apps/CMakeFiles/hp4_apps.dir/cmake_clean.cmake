file(REMOVE_RECURSE
  "CMakeFiles/hp4_apps.dir/arp_proxy.cpp.o"
  "CMakeFiles/hp4_apps.dir/arp_proxy.cpp.o.d"
  "CMakeFiles/hp4_apps.dir/firewall.cpp.o"
  "CMakeFiles/hp4_apps.dir/firewall.cpp.o.d"
  "CMakeFiles/hp4_apps.dir/l2_switch.cpp.o"
  "CMakeFiles/hp4_apps.dir/l2_switch.cpp.o.d"
  "CMakeFiles/hp4_apps.dir/router.cpp.o"
  "CMakeFiles/hp4_apps.dir/router.cpp.o.d"
  "CMakeFiles/hp4_apps.dir/rules.cpp.o"
  "CMakeFiles/hp4_apps.dir/rules.cpp.o.d"
  "libhp4_apps.a"
  "libhp4_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp4_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
