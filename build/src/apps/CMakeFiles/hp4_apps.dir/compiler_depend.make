# Empty compiler generated dependencies file for hp4_apps.
# This may be replaced when dependencies are built.
