file(REMOVE_RECURSE
  "libhp4_apps.a"
)
