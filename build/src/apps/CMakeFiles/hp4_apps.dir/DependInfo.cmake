
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/arp_proxy.cpp" "src/apps/CMakeFiles/hp4_apps.dir/arp_proxy.cpp.o" "gcc" "src/apps/CMakeFiles/hp4_apps.dir/arp_proxy.cpp.o.d"
  "/root/repo/src/apps/firewall.cpp" "src/apps/CMakeFiles/hp4_apps.dir/firewall.cpp.o" "gcc" "src/apps/CMakeFiles/hp4_apps.dir/firewall.cpp.o.d"
  "/root/repo/src/apps/l2_switch.cpp" "src/apps/CMakeFiles/hp4_apps.dir/l2_switch.cpp.o" "gcc" "src/apps/CMakeFiles/hp4_apps.dir/l2_switch.cpp.o.d"
  "/root/repo/src/apps/router.cpp" "src/apps/CMakeFiles/hp4_apps.dir/router.cpp.o" "gcc" "src/apps/CMakeFiles/hp4_apps.dir/router.cpp.o.d"
  "/root/repo/src/apps/rules.cpp" "src/apps/CMakeFiles/hp4_apps.dir/rules.cpp.o" "gcc" "src/apps/CMakeFiles/hp4_apps.dir/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p4/CMakeFiles/hp4_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/bm/CMakeFiles/hp4_bm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hp4_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hp4_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
