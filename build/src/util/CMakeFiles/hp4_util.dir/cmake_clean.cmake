file(REMOVE_RECURSE
  "CMakeFiles/hp4_util.dir/bitvec.cpp.o"
  "CMakeFiles/hp4_util.dir/bitvec.cpp.o.d"
  "CMakeFiles/hp4_util.dir/strings.cpp.o"
  "CMakeFiles/hp4_util.dir/strings.cpp.o.d"
  "libhp4_util.a"
  "libhp4_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp4_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
