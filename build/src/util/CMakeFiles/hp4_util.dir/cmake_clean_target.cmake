file(REMOVE_RECURSE
  "libhp4_util.a"
)
