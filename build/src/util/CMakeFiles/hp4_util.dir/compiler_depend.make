# Empty compiler generated dependencies file for hp4_util.
# This may be replaced when dependencies are built.
