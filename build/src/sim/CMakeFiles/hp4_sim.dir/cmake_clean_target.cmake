file(REMOVE_RECURSE
  "libhp4_sim.a"
)
