file(REMOVE_RECURSE
  "CMakeFiles/hp4_sim.dir/network.cpp.o"
  "CMakeFiles/hp4_sim.dir/network.cpp.o.d"
  "CMakeFiles/hp4_sim.dir/traffic.cpp.o"
  "CMakeFiles/hp4_sim.dir/traffic.cpp.o.d"
  "libhp4_sim.a"
  "libhp4_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp4_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
