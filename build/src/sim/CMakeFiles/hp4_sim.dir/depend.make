# Empty dependencies file for hp4_sim.
# This may be replaced when dependencies are built.
