file(REMOVE_RECURSE
  "CMakeFiles/hp4_eval.dir/scenarios.cpp.o"
  "CMakeFiles/hp4_eval.dir/scenarios.cpp.o.d"
  "libhp4_eval.a"
  "libhp4_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp4_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
