# Empty compiler generated dependencies file for hp4_eval.
# This may be replaced when dependencies are built.
