file(REMOVE_RECURSE
  "libhp4_eval.a"
)
