file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_loc.dir/bench_fig7_loc.cpp.o"
  "CMakeFiles/bench_fig7_loc.dir/bench_fig7_loc.cpp.o.d"
  "bench_fig7_loc"
  "bench_fig7_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
