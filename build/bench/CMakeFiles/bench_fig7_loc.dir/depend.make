# Empty dependencies file for bench_fig7_loc.
# This may be replaced when dependencies are built.
