# Empty dependencies file for bench_table5_perf.
# This may be replaced when dependencies are built.
