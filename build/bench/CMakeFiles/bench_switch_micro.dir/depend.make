# Empty dependencies file for bench_switch_micro.
# This may be replaced when dependencies are built.
