file(REMOVE_RECURSE
  "CMakeFiles/bench_switch_micro.dir/bench_switch_micro.cpp.o"
  "CMakeFiles/bench_switch_micro.dir/bench_switch_micro.cpp.o.d"
  "bench_switch_micro"
  "bench_switch_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switch_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
