# Empty compiler generated dependencies file for bench_partial_virtualization.
# This may be replaced when dependencies are built.
