file(REMOVE_RECURSE
  "CMakeFiles/bench_partial_virtualization.dir/bench_partial_virtualization.cpp.o"
  "CMakeFiles/bench_partial_virtualization.dir/bench_partial_virtualization.cpp.o.d"
  "bench_partial_virtualization"
  "bench_partial_virtualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial_virtualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
