file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_unique.dir/bench_table3_unique.cpp.o"
  "CMakeFiles/bench_table3_unique.dir/bench_table3_unique.cpp.o.d"
  "bench_table3_unique"
  "bench_table3_unique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_unique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
