file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_tables.dir/bench_fig8_tables.cpp.o"
  "CMakeFiles/bench_fig8_tables.dir/bench_fig8_tables.cpp.o.d"
  "bench_fig8_tables"
  "bench_fig8_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
