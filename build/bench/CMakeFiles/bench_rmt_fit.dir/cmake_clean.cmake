file(REMOVE_RECURSE
  "CMakeFiles/bench_rmt_fit.dir/bench_rmt_fit.cpp.o"
  "CMakeFiles/bench_rmt_fit.dir/bench_rmt_fit.cpp.o.d"
  "bench_rmt_fit"
  "bench_rmt_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rmt_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
