# Empty compiler generated dependencies file for bench_rmt_fit.
# This may be replaced when dependencies are built.
