
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_ternary.cpp" "bench/CMakeFiles/bench_table4_ternary.dir/bench_table4_ternary.cpp.o" "gcc" "bench/CMakeFiles/bench_table4_ternary.dir/bench_table4_ternary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hp4_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/hp4/CMakeFiles/hp4_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hp4_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hp4_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rmt/CMakeFiles/hp4_rmt.dir/DependInfo.cmake"
  "/root/repo/build/src/bm/CMakeFiles/hp4_bm.dir/DependInfo.cmake"
  "/root/repo/build/src/p4/CMakeFiles/hp4_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hp4_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hp4_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
