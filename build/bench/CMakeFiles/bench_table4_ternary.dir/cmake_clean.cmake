file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_ternary.dir/bench_table4_ternary.cpp.o"
  "CMakeFiles/bench_table4_ternary.dir/bench_table4_ternary.cpp.o.d"
  "bench_table4_ternary"
  "bench_table4_ternary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_ternary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
