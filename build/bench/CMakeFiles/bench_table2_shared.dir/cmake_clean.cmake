file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_shared.dir/bench_table2_shared.cpp.o"
  "CMakeFiles/bench_table2_shared.dir/bench_table2_shared.cpp.o.d"
  "bench_table2_shared"
  "bench_table2_shared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
