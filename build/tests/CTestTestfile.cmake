# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_bitvec_test[1]_include.cmake")
include("/root/repo/build/tests/util_strings_test[1]_include.cmake")
include("/root/repo/build/tests/net_headers_test[1]_include.cmake")
include("/root/repo/build/tests/p4_ir_test[1]_include.cmake")
include("/root/repo/build/tests/bm_table_test[1]_include.cmake")
include("/root/repo/build/tests/bm_switch_test[1]_include.cmake")
include("/root/repo/build/tests/apps_native_test[1]_include.cmake")
include("/root/repo/build/tests/hp4_persona_test[1]_include.cmake")
include("/root/repo/build/tests/hp4_emulation_test[1]_include.cmake")
include("/root/repo/build/tests/hp4_vnet_test[1]_include.cmake")
include("/root/repo/build/tests/sim_network_test[1]_include.cmake")
include("/root/repo/build/tests/rmt_test[1]_include.cmake")
include("/root/repo/build/tests/p4_frontend_test[1]_include.cmake")
include("/root/repo/build/tests/hp4_compiler_test[1]_include.cmake")
include("/root/repo/build/tests/hp4_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/hp4_resize_test[1]_include.cmake")
include("/root/repo/build/tests/bm_extra_test[1]_include.cmake")
include("/root/repo/build/tests/hp4_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/hp4_tooling_test[1]_include.cmake")
include("/root/repo/build/tests/hp4_ladder_test[1]_include.cmake")
include("/root/repo/build/tests/hp4_config_equiv_test[1]_include.cmake")
