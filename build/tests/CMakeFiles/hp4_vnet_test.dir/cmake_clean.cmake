file(REMOVE_RECURSE
  "CMakeFiles/hp4_vnet_test.dir/hp4_vnet_test.cpp.o"
  "CMakeFiles/hp4_vnet_test.dir/hp4_vnet_test.cpp.o.d"
  "hp4_vnet_test"
  "hp4_vnet_test.pdb"
  "hp4_vnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp4_vnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
