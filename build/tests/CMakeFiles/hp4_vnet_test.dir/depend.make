# Empty dependencies file for hp4_vnet_test.
# This may be replaced when dependencies are built.
