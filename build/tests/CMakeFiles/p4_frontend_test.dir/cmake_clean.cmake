file(REMOVE_RECURSE
  "CMakeFiles/p4_frontend_test.dir/p4_frontend_test.cpp.o"
  "CMakeFiles/p4_frontend_test.dir/p4_frontend_test.cpp.o.d"
  "p4_frontend_test"
  "p4_frontend_test.pdb"
  "p4_frontend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
