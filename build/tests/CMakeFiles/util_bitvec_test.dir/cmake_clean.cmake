file(REMOVE_RECURSE
  "CMakeFiles/util_bitvec_test.dir/util_bitvec_test.cpp.o"
  "CMakeFiles/util_bitvec_test.dir/util_bitvec_test.cpp.o.d"
  "util_bitvec_test"
  "util_bitvec_test.pdb"
  "util_bitvec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_bitvec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
