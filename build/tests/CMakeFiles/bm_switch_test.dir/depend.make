# Empty dependencies file for bm_switch_test.
# This may be replaced when dependencies are built.
