file(REMOVE_RECURSE
  "CMakeFiles/bm_switch_test.dir/bm_switch_test.cpp.o"
  "CMakeFiles/bm_switch_test.dir/bm_switch_test.cpp.o.d"
  "bm_switch_test"
  "bm_switch_test.pdb"
  "bm_switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
