file(REMOVE_RECURSE
  "CMakeFiles/net_headers_test.dir/net_headers_test.cpp.o"
  "CMakeFiles/net_headers_test.dir/net_headers_test.cpp.o.d"
  "net_headers_test"
  "net_headers_test.pdb"
  "net_headers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_headers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
