file(REMOVE_RECURSE
  "CMakeFiles/p4_ir_test.dir/p4_ir_test.cpp.o"
  "CMakeFiles/p4_ir_test.dir/p4_ir_test.cpp.o.d"
  "p4_ir_test"
  "p4_ir_test.pdb"
  "p4_ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
