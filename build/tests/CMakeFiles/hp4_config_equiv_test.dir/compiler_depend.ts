# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hp4_config_equiv_test.
