# Empty compiler generated dependencies file for hp4_config_equiv_test.
# This may be replaced when dependencies are built.
