# Empty dependencies file for hp4_compiler_test.
# This may be replaced when dependencies are built.
