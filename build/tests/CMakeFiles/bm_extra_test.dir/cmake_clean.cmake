file(REMOVE_RECURSE
  "CMakeFiles/bm_extra_test.dir/bm_extra_test.cpp.o"
  "CMakeFiles/bm_extra_test.dir/bm_extra_test.cpp.o.d"
  "bm_extra_test"
  "bm_extra_test.pdb"
  "bm_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
