# Empty compiler generated dependencies file for bm_extra_test.
# This may be replaced when dependencies are built.
