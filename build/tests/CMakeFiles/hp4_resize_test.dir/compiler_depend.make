# Empty compiler generated dependencies file for hp4_resize_test.
# This may be replaced when dependencies are built.
