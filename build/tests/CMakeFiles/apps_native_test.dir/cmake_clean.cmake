file(REMOVE_RECURSE
  "CMakeFiles/apps_native_test.dir/apps_native_test.cpp.o"
  "CMakeFiles/apps_native_test.dir/apps_native_test.cpp.o.d"
  "apps_native_test"
  "apps_native_test.pdb"
  "apps_native_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_native_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
