# Empty compiler generated dependencies file for hp4_fuzz_test.
# This may be replaced when dependencies are built.
