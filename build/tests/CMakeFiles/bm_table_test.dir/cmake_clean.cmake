file(REMOVE_RECURSE
  "CMakeFiles/bm_table_test.dir/bm_table_test.cpp.o"
  "CMakeFiles/bm_table_test.dir/bm_table_test.cpp.o.d"
  "bm_table_test"
  "bm_table_test.pdb"
  "bm_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
