# Empty dependencies file for bm_table_test.
# This may be replaced when dependencies are built.
