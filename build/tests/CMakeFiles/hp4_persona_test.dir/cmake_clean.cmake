file(REMOVE_RECURSE
  "CMakeFiles/hp4_persona_test.dir/hp4_persona_test.cpp.o"
  "CMakeFiles/hp4_persona_test.dir/hp4_persona_test.cpp.o.d"
  "hp4_persona_test"
  "hp4_persona_test.pdb"
  "hp4_persona_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp4_persona_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
