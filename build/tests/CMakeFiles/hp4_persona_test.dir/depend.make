# Empty dependencies file for hp4_persona_test.
# This may be replaced when dependencies are built.
