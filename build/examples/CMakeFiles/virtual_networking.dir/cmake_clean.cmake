file(REMOVE_RECURSE
  "CMakeFiles/virtual_networking.dir/virtual_networking.cpp.o"
  "CMakeFiles/virtual_networking.dir/virtual_networking.cpp.o.d"
  "virtual_networking"
  "virtual_networking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_networking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
