# Empty compiler generated dependencies file for virtual_networking.
# This may be replaced when dependencies are built.
