# Empty compiler generated dependencies file for snapshots_composition.
# This may be replaced when dependencies are built.
