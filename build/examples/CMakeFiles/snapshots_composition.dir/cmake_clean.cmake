file(REMOVE_RECURSE
  "CMakeFiles/snapshots_composition.dir/snapshots_composition.cpp.o"
  "CMakeFiles/snapshots_composition.dir/snapshots_composition.cpp.o.d"
  "snapshots_composition"
  "snapshots_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshots_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
