file(REMOVE_RECURSE
  "CMakeFiles/slicing.dir/slicing.cpp.o"
  "CMakeFiles/slicing.dir/slicing.cpp.o.d"
  "slicing"
  "slicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
