# Empty dependencies file for slicing.
# This may be replaced when dependencies are built.
