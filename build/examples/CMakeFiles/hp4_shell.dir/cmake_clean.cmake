file(REMOVE_RECURSE
  "CMakeFiles/hp4_shell.dir/hp4_shell.cpp.o"
  "CMakeFiles/hp4_shell.dir/hp4_shell.cpp.o.d"
  "hp4_shell"
  "hp4_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp4_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
