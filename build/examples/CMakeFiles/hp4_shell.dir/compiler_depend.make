# Empty compiler generated dependencies file for hp4_shell.
# This may be replaced when dependencies are built.
