# Empty dependencies file for p4_frontend_tour.
# This may be replaced when dependencies are built.
