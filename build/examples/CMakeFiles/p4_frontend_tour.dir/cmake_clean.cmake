file(REMOVE_RECURSE
  "CMakeFiles/p4_frontend_tour.dir/p4_frontend_tour.cpp.o"
  "CMakeFiles/p4_frontend_tour.dir/p4_frontend_tour.cpp.o.d"
  "p4_frontend_tour"
  "p4_frontend_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4_frontend_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
